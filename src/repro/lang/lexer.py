"""Tokenizer for the MiniJava source language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = frozenset({
    "class", "static", "volatile", "synchronized", "native",
    "int", "float", "void", "var",
    "if", "else", "while", "do", "for", "return", "new", "null",
    "try", "catch", "finally", "throw", "break", "continue",
    "true", "false",
})

#: multi-character operators, longest first so maximal munch works
_OPERATORS = (
    "+=", "-=", "*=", "/=", "%=", "++", "--",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
    "&", "|", "^", "(", ")", "{", "}", "[", "]",
    ";", ",", ".", "?", ":",
)


class LexError(Exception):
    """Bad input character or malformed literal."""

    def __init__(self, message: str, line: int, col: int):
        self.line = line
        self.col = col
        super().__init__(f"{message} at line {line}:{col}")


@dataclass(frozen=True)
class Token:
    """One lexeme.

    ``kind`` is ``ident``/``keyword``/``int``/``float``/``string``/``op``/
    ``eof``; ``value`` holds the decoded literal for number/string tokens
    and the raw text otherwise.
    """

    kind: str
    text: str
    value: object
    line: int
    col: int

    def is_op(self, *ops: str) -> bool:
        return self.kind == "op" and self.text in ops

    def is_kw(self, *kws: str) -> bool:
        return self.kind == "keyword" and self.text in kws

    def __repr__(self) -> str:
        return f"Token({self.kind} {self.text!r} @{self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; the result always ends with an ``eof`` token."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        # whitespace
        if ch in " \t\r\n":
            advance(1)
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment",
                               start_line, start_col)
            advance(2)
            continue
        # numbers (integer / float; underscores allowed as in Java 7+)
        if ch.isdigit():
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isdigit() or source[i] == "_"):
                advance(1)
            is_float = False
            if i < n and source[i] == "." and i + 1 < n and \
                    source[i + 1].isdigit():
                is_float = True
                advance(1)
                while i < n and (source[i].isdigit() or source[i] == "_"):
                    advance(1)
            text = source[start:i]
            clean = text.replace("_", "")
            value: object = float(clean) if is_float else int(clean)
            yield Token("float" if is_float else "int", text, value,
                        start_line, start_col)
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            if text in KEYWORDS:
                yield Token("keyword", text, text, start_line, start_col)
            else:
                yield Token("ident", text, text, start_line, start_col)
            continue
        # string literals
        if ch == '"':
            start_line, start_col = line, col
            advance(1)
            chars: list[str] = []
            while i < n and source[i] != '"':
                c = source[i]
                if c == "\n":
                    raise LexError("unterminated string literal",
                                   start_line, start_col)
                if c == "\\":
                    advance(1)
                    if i >= n:
                        break
                    esc = source[i]
                    chars.append(
                        {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                        .get(esc, esc)
                    )
                    advance(1)
                else:
                    chars.append(c)
                    advance(1)
            if i >= n:
                raise LexError("unterminated string literal",
                               start_line, start_col)
            advance(1)  # closing quote
            yield Token("string", "".join(chars), "".join(chars),
                        start_line, start_col)
            continue
        # operators and punctuation
        for op in _OPERATORS:
            if source.startswith(op, i):
                yield Token("op", op, op, line, col)
                advance(len(op))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    yield Token("eof", "", None, line, col)
