"""Recursive-descent parser for MiniJava.

Grammar (informal; ``repro/lang/__init__`` shows an example program)::

    program     := class*
    class       := "class" IDENT "{" (field | method)* "}"
    field       := modifiers type IDENT ";"
    method      := modifiers (type | "void") IDENT "(" params ")" block
    modifiers   := ("static" | "volatile" | "synchronized")*
    type        := "int" | "float" | "var" | IDENT
    block       := "{" stmt* "}"
    stmt        := varDecl | if | while | for | sync | try | return
                 | throw | break | continue | exprStmt | assignment
    expr        := or ( "||" etc. by precedence climbing )

Operator precedence, loosest first::

    ||  &&  (== !=)  (< <= > >=)  (| ^ &)  (<< >>)  (+ -)  (* / %)  unary
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ast
from repro.lang.lexer import Token, tokenize


class ParseError(Exception):
    """Syntax error with source position."""

    def __init__(self, message: str, token: Token):
        self.token = token
        super().__init__(
            f"{message} at line {token.line}:{token.col} "
            f"(near {token.text!r})"
        )


_BINARY_LEVELS: list[tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("|", "^", "&"),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_TYPE_KEYWORDS = ("int", "float", "var")


def parse(source: str) -> ast.Program:
    """Parse source text into a :class:`repro.lang.ast.Program`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------- plumbing
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise ParseError(f"expected {op!r}", self.current)
        return self.advance()

    def expect_kw(self, kw: str) -> Token:
        if not self.current.is_kw(kw):
            raise ParseError(f"expected keyword {kw!r}", self.current)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise ParseError("expected an identifier", self.current)
        return self.advance()

    def accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    # ------------------------------------------------------------- program
    def parse_program(self) -> ast.Program:
        classes = []
        while not self.current.kind == "eof":
            classes.append(self.parse_class())
        if not classes:
            raise ParseError("empty program", self.current)
        return ast.Program(classes)

    def parse_class(self) -> ast.ClassDecl:
        kw = self.expect_kw("class")
        name = self.expect_ident().text
        self.expect_op("{")
        fields: list[ast.FieldDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self.accept_op("}"):
            member = self.parse_member(name)
            if isinstance(member, ast.FieldDecl):
                fields.append(member)
            else:
                methods.append(member)
        return ast.ClassDecl(name, fields, methods, line=kw.line)

    def parse_member(self, class_name: str):
        start = self.current
        is_static = volatile = synchronized = False
        while self.current.is_kw("static", "volatile", "synchronized"):
            kw = self.advance().text
            if kw == "static":
                is_static = True
            elif kw == "volatile":
                volatile = True
            else:
                synchronized = True
        type_name = self.parse_type(allow_void=True)
        name = self.expect_ident().text
        if self.current.is_op("("):
            if volatile:
                raise ParseError("methods cannot be volatile", start)
            return self.parse_method(
                name, type_name, is_static, synchronized, start.line
            )
        if synchronized:
            raise ParseError("fields cannot be synchronized", start)
        if type_name == "void":
            raise ParseError("fields cannot be void", start)
        self.expect_op(";")
        return ast.FieldDecl(
            name, type_name, is_static=is_static, volatile=volatile,
            line=start.line,
        )

    def parse_type(self, *, allow_void: bool = False) -> str:
        tok = self.current
        if tok.is_kw(*_TYPE_KEYWORDS):
            return self.advance().text
        if allow_void and tok.is_kw("void"):
            return self.advance().text
        if tok.kind == "ident":
            return self.advance().text
        raise ParseError("expected a type", tok)

    def parse_method(
        self, name: str, return_type: str, is_static: bool,
        synchronized: bool, line: int,
    ) -> ast.MethodDecl:
        self.expect_op("(")
        params: list[ast.Param] = []
        if not self.current.is_op(")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect_ident()
                params.append(
                    ast.Param(pname.text, ptype, line=pname.line)
                )
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        body = self.parse_block()
        return ast.MethodDecl(
            name, params, return_type, body,
            is_static=is_static, synchronized=synchronized, line=line,
        )

    # ----------------------------------------------------------- statements
    def parse_block(self) -> list[ast.Stmt]:
        self.expect_op("{")
        stmts: list[ast.Stmt] = []
        while not self.accept_op("}"):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self) -> ast.Stmt:
        tok = self.current
        if tok.is_kw("if"):
            return self.parse_if()
        if tok.is_kw("while"):
            return self.parse_while()
        if tok.is_kw("do"):
            return self.parse_do_while()
        if tok.is_kw("for"):
            return self.parse_for()
        if tok.is_kw("synchronized"):
            return self.parse_synchronized()
        if tok.is_kw("try"):
            return self.parse_try()
        if tok.is_kw("return"):
            self.advance()
            value = None
            if not self.current.is_op(";"):
                value = self.parse_expr()
            self.expect_op(";")
            return ast.Return(line=tok.line, value=value)
        if tok.is_kw("throw"):
            self.advance()
            value = self.parse_expr()
            self.expect_op(";")
            return ast.Throw(line=tok.line, value=value)
        if tok.is_kw("break"):
            self.advance()
            self.expect_op(";")
            return ast.Break(line=tok.line)
        if tok.is_kw("continue"):
            self.advance()
            self.expect_op(";")
            return ast.Continue(line=tok.line)
        if self._looks_like_var_decl():
            return self.parse_var_decl()
        return self.parse_assign_or_expr_stmt()

    def _looks_like_var_decl(self) -> bool:
        tok = self.current
        if tok.is_kw(*_TYPE_KEYWORDS):
            return True
        # "Foo x = ..." — identifier followed by identifier
        return tok.kind == "ident" and self.peek().kind == "ident"

    def parse_var_decl(self) -> ast.VarDecl:
        tok = self.current
        type_name = self.parse_type()
        name = self.expect_ident().text
        init: Optional[ast.Expr] = None
        if self.accept_op("="):
            init = self.parse_expr()
        self.expect_op(";")
        return ast.VarDecl(
            line=tok.line, name=name, type_name=type_name, init=init
        )

    _COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/",
                     "%=": "%"}

    def parse_assign_or_expr_stmt(self, *, consume_semi=True) -> ast.Stmt:
        tok = self.current
        expr = self.parse_expr()

        def check_target():
            if not isinstance(
                expr, (ast.Name, ast.FieldAccess, ast.Index)
            ):
                raise ParseError("invalid assignment target", tok)

        def finish(stmt):
            if consume_semi:
                self.expect_op(";")
            return stmt

        if self.accept_op("="):
            value = self.parse_expr()
            check_target()
            return finish(
                ast.Assign(line=tok.line, target=expr, value=value)
            )
        for op_text, bin_op in self._COMPOUND_OPS.items():
            if self.accept_op(op_text):
                value = self.parse_expr()
                check_target()
                # x op= v  desugars to  x = x op (v)
                return finish(ast.Assign(
                    line=tok.line, target=expr,
                    value=ast.Binary(line=tok.line, op=bin_op,
                                     left=expr, right=value),
                ))
        if self.current.is_op("++", "--"):
            op_tok = self.advance()
            check_target()
            delta = ast.IntLit(line=op_tok.line, value=1)
            bin_op = "+" if op_tok.text == "++" else "-"
            return finish(ast.Assign(
                line=tok.line, target=expr,
                value=ast.Binary(line=op_tok.line, op=bin_op,
                                 left=expr, right=delta),
            ))
        if consume_semi:
            self.expect_op(";")
        if not isinstance(expr, ast.Call):
            raise ParseError(
                "expression statement must be a call", tok
            )
        return ast.ExprStmt(line=tok.line, expr=expr)

    def parse_if(self) -> ast.If:
        tok = self.expect_kw("if")
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        then = self.parse_stmt_or_block()
        orelse: list[ast.Stmt] = []
        if self.current.is_kw("else"):
            self.advance()
            orelse = self.parse_stmt_or_block()
        return ast.If(line=tok.line, cond=cond, then=then, orelse=orelse)

    def parse_while(self) -> ast.While:
        tok = self.expect_kw("while")
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        body = self.parse_stmt_or_block()
        return ast.While(line=tok.line, cond=cond, body=body)

    def parse_do_while(self) -> ast.DoWhile:
        tok = self.expect_kw("do")
        body = self.parse_block()
        self.expect_kw("while")
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        self.expect_op(";")
        return ast.DoWhile(line=tok.line, body=body, cond=cond)

    def parse_for(self) -> ast.For:
        tok = self.expect_kw("for")
        self.expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self.current.is_op(";"):
            if self._looks_like_var_decl():
                init = self.parse_var_decl()  # consumes the ';'
            else:
                init = self.parse_assign_or_expr_stmt()  # consumes ';'
        else:
            self.advance()
        cond: Optional[ast.Expr] = None
        if not self.current.is_op(";"):
            cond = self.parse_expr()
        self.expect_op(";")
        step: Optional[ast.Stmt] = None
        if not self.current.is_op(")"):
            step = self.parse_assign_or_expr_stmt(consume_semi=False)
        self.expect_op(")")
        body = self.parse_stmt_or_block()
        return ast.For(line=tok.line, init=init, cond=cond, step=step,
                       body=body)

    def parse_synchronized(self) -> ast.Synchronized:
        tok = self.expect_kw("synchronized")
        self.expect_op("(")
        monitor = self.parse_expr()
        self.expect_op(")")
        body = self.parse_block()
        return ast.Synchronized(line=tok.line, monitor=monitor, body=body)

    def parse_try(self) -> ast.Try:
        tok = self.expect_kw("try")
        body = self.parse_block()
        catches: list[tuple[str, Optional[str], list[ast.Stmt]]] = []
        while self.current.is_kw("catch"):
            self.advance()
            self.expect_op("(")
            exc_type = self.expect_ident().text
            binding: Optional[str] = None
            if self.current.kind == "ident":
                binding = self.advance().text
            self.expect_op(")")
            catches.append((exc_type, binding, self.parse_block()))
        finally_body: Optional[list[ast.Stmt]] = None
        if self.current.is_kw("finally"):
            self.advance()
            finally_body = self.parse_block()
        if not catches and finally_body is None:
            raise ParseError("try without catch or finally", tok)
        return ast.Try(line=tok.line, body=body, catches=catches,
                       finally_body=finally_body)

    def parse_stmt_or_block(self) -> list[ast.Stmt]:
        if self.current.is_op("{"):
            return self.parse_block()
        return [self.parse_stmt()]

    # ----------------------------------------------------------- expressions
    def parse_expr(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self.current.is_op("?"):
            tok = self.advance()
            then = self.parse_expr()
            self.expect_op(":")
            orelse = self.parse_expr()
            return ast.Ternary(line=tok.line, cond=cond, then=then,
                               orelse=orelse)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self.current.is_op(*ops):
            op_tok = self.advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(line=op_tok.line, op=op_tok.text,
                              left=left, right=right)
        return left

    def parse_unary(self) -> ast.Expr:
        tok = self.current
        if tok.is_op("-", "!"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.current
            if tok.is_op("."):
                self.advance()
                member = self.expect_ident().text
                if self.current.is_op("("):
                    args = self.parse_args()
                    expr = ast.Call(line=tok.line, target=expr,
                                    method=member, args=args)
                else:
                    expr = ast.FieldAccess(line=tok.line, obj=expr,
                                           field_name=member)
            elif tok.is_op("["):
                self.advance()
                index = self.parse_expr()
                self.expect_op("]")
                expr = ast.Index(line=tok.line, array=expr, index=index)
            else:
                return expr

    def parse_args(self) -> list[ast.Expr]:
        self.expect_op("(")
        args: list[ast.Expr] = []
        if not self.current.is_op(")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        return args

    def parse_primary(self) -> ast.Expr:
        tok = self.current
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind == "float":
            self.advance()
            return ast.FloatLit(line=tok.line, value=tok.value)
        if tok.kind == "string":
            self.advance()
            return ast.StringLit(line=tok.line, value=tok.value)
        if tok.is_kw("null"):
            self.advance()
            return ast.NullLit(line=tok.line)
        if tok.is_kw("true", "false"):
            self.advance()
            return ast.BoolLit(line=tok.line, value=tok.text == "true")
        if tok.is_kw("new"):
            self.advance()
            if self.current.is_kw("int", "float", "var"):
                self.advance()
                self.expect_op("[")
                length = self.parse_expr()
                self.expect_op("]")
                return ast.NewArray(line=tok.line, length=length)
            class_name = self.expect_ident().text
            if self.current.is_op("["):
                self.advance()
                length = self.parse_expr()
                self.expect_op("]")
                return ast.NewArray(line=tok.line, length=length)
            self.expect_op("(")
            self.expect_op(")")
            return ast.New(line=tok.line, class_name=class_name)
        if tok.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if tok.kind == "ident":
            self.advance()
            if self.current.is_op("("):
                args = self.parse_args()
                return ast.Call(line=tok.line, target=None,
                                method=tok.text, args=args)
            return ast.Name(line=tok.line, name=tok.text)
        raise ParseError("expected an expression", tok)
