"""MiniJava: a small Java-like source language for guest programs.

The paper's experimental programs are ordinary Java compiled by javac and
then rewritten by their BCEL pass.  This package plays javac's role for
our VM: it compiles a Java-flavoured source text into
:class:`~repro.vm.classfile.ClassDef` objects (emitting the same javac
idioms — e.g. the monitor-release catch-all around ``synchronized``
blocks — via :class:`~repro.vm.assembler.Asm`), which the modified VM's
load-time transformer then rewrites exactly as it rewrites hand-assembled
classes.

Supported language (see ``repro/lang/grammar.md`` for the full grammar)::

    class Counter {
        static int value;
        static Counter lock;
        volatile static int flag;

        static void run(int iters) {
            int i = 0;
            while (i < iters) {
                synchronized (Counter.lock) {
                    Counter.value = Counter.value + 1;
                }
                i = i + 1;
            }
        }

        static synchronized int bump() { ... }   // sync methods too
    }

Builtins map to VM intrinsics: ``sleep(n)``, ``pause(n)``, ``yieldNow()``,
``currentTime()``, ``threadId()``, ``rand(n)``, ``print(...)``,
``obj.wait()``, ``obj.wait(timeout)``, ``obj.notify()``,
``obj.notifyAll()``, ``length(arr)``, ``abort(msg)``.

Usage::

    from repro.lang import compile_source

    classes = compile_source(source_text)
    for cls in classes:
        vm.load(cls)
"""

from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.parser import ParseError, parse
from repro.lang.compiler import CompileError, compile_source

__all__ = [
    "LexError",
    "Token",
    "tokenize",
    "ParseError",
    "parse",
    "CompileError",
    "compile_source",
]
