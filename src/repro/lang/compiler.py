"""MiniJava code generation: AST -> :class:`repro.vm.classfile.ClassDef`.

Emits through :class:`repro.vm.assembler.Asm`, so the produced bytecode has
exactly the javac idioms the load-time transformer expects (cached monitor
refs, release-on-exception handlers, finally duplication).  ``synchronized``
*methods* are left flagged, not expanded — wrapping them is the modified
VM's transformer's job, as in the paper.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.lang import ast
from repro.lang.parser import parse
from repro.vm import bytecode as bc
from repro.vm.assembler import Asm, Label
from repro.vm.classfile import ClassDef, FieldDef


class CompileError(Exception):
    """Semantic error with source position."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(
            f"{message}" + (f" (line {line})" if line else "")
        )


def compile_source(source: str) -> list[ClassDef]:
    """Compile MiniJava source text into loadable classes."""
    return compile_program(parse(source))


def compile_program(program: ast.Program) -> list[ClassDef]:
    env = _ProgramEnv(program)
    return [_ClassCompiler(env, decl).compile() for decl in program.classes]


# --------------------------------------------------------------------- env
class _ProgramEnv:
    """Whole-program symbol information for name resolution."""

    def __init__(self, program: ast.Program):
        self.classes: dict[str, ast.ClassDecl] = {}
        for decl in program.classes:
            if decl.name in self.classes:
                raise CompileError(
                    f"duplicate class {decl.name!r}", decl.line
                )
            self.classes[decl.name] = decl
        #: method name -> class names defining it (instance-call lookup)
        self.method_owners: dict[str, list[str]] = {}
        for decl in program.classes:
            for m in decl.methods:
                self.method_owners.setdefault(m.name, []).append(decl.name)

    def is_class(self, name: str) -> bool:
        return name in self.classes

    def field_of(self, class_name: str, field_name: str):
        decl = self.classes.get(class_name)
        if decl is None:
            return None
        for f in decl.fields:
            if f.name == field_name:
                return f
        return None

    def resolve_instance_method(self, method: str, line: int) -> str:
        owners = self.method_owners.get(method, [])
        if not owners:
            raise CompileError(f"no method {method!r} in program", line)
        if len(set(owners)) > 1:
            raise CompileError(
                f"ambiguous instance call {method!r} (defined in "
                f"{sorted(set(owners))}); use ClassName.{method}(...)",
                line,
            )
        return owners[0]


def _field_kind(type_name: str) -> str:
    return type_name if type_name in ("int", "float") else "ref"


#: builtins: name -> (min argc, max argc)
_BUILTINS = {
    "sleep": (1, 1),
    "pause": (1, 1),
    "yieldNow": (0, 0),
    "currentTime": (0, 0),
    "threadId": (0, 0),
    "rand": (1, 1),
    "print": (0, 64),
    "abort": (0, 1),
    "length": (1, 1),
    "nativeCall": (1, 65),
}

#: builtins that leave a value on the stack
_VALUE_BUILTINS = frozenset({"currentTime", "threadId", "rand", "length"})

_MONITOR_BUILTINS = frozenset({"wait", "notify", "notifyAll"})


# ----------------------------------------------------------------- classes
class _ClassCompiler:
    def __init__(self, env: _ProgramEnv, decl: ast.ClassDecl):
        self.env = env
        self.decl = decl

    def compile(self) -> ClassDef:
        fields = [
            FieldDef(
                f.name,
                _field_kind(f.type_name),
                volatile=f.volatile,
                is_static=f.is_static,
            )
            for f in self.decl.fields
        ]
        cls = ClassDef(self.decl.name, fields=fields)
        for m in self.decl.methods:
            cls.add_method(_MethodCompiler(self.env, self.decl, m).compile())
        return cls


class _LoopContext:
    def __init__(self, break_label: Label, continue_label: Label):
        self.break_label = break_label
        self.continue_label = continue_label


class _MethodCompiler:
    def __init__(self, env: _ProgramEnv, cls: ast.ClassDecl,
                 decl: ast.MethodDecl):
        self.env = env
        self.cls = cls
        self.decl = decl
        argc = len(decl.params) + (0 if decl.is_static else 1)
        self.asm = Asm(
            decl.name,
            argc=argc,
            is_static=decl.is_static,
            synchronized=decl.synchronized,
            returns_value=decl.return_type != "void",
        )
        #: lexical scopes: name -> local slot
        self.scopes: list[dict[str, int]] = [{}]
        self.loops: list[_LoopContext] = []
        if not decl.is_static:
            self.scopes[0]["this"] = 0
            offset = 1
        else:
            offset = 0
        for i, p in enumerate(decl.params):
            self._declare(p.name, offset + i, p.line)

    # ---------------------------------------------------------------- scopes
    def _declare(self, name: str, slot: Optional[int], line: int) -> int:
        if name in self.scopes[-1]:
            raise CompileError(f"duplicate variable {name!r}", line)
        if slot is None:
            slot = self.asm.local(name)
        self.scopes[-1][name] = slot
        return slot

    def _lookup(self, name: str) -> Optional[int]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _scoped(self, fn: Callable[[], None]) -> None:
        self.scopes.append({})
        try:
            fn()
        finally:
            self.scopes.pop()

    # ----------------------------------------------------------------- entry
    def compile(self):
        for stmt in self.decl.body:
            self.stmt(stmt)
        # implicit return at the end of a void method
        if self.decl.return_type == "void":
            self.asm.ret()
        else:
            code = self.asm.code
            if not code or code[-1].op not in (bc.RETURN, bc.ATHROW,
                                               bc.GOTO):
                raise CompileError(
                    f"{self.cls.name}.{self.decl.name}: missing return",
                    self.decl.line,
                )
        return self.asm.build()

    # ------------------------------------------------------------ statements
    def stmt(self, node: ast.Stmt) -> None:
        a = self.asm
        if isinstance(node, ast.VarDecl):
            slot = self._declare(node.name, None, node.line)
            if node.init is not None:
                self.expr(node.init)
            else:
                default = 0.0 if node.type_name == "float" else 0
                a.const(default)
            a.store(slot)
        elif isinstance(node, ast.Assign):
            self._assign(node)
        elif isinstance(node, ast.ExprStmt):
            produces = self.expr(node.expr)
            if produces:
                a.pop()
        elif isinstance(node, ast.If):
            self.expr(node.cond)
            else_l = a.label("else")
            end_l = a.label("endif")
            a.ifnot(else_l)
            self._scoped(lambda: self._stmts(node.then))
            if node.orelse:
                a.goto(end_l)
                a.place(else_l)
                self._scoped(lambda: self._stmts(node.orelse))
                a.place(end_l)
            else:
                a.place(else_l)
        elif isinstance(node, ast.While):
            top = a.label("while")
            end = a.label("endwhile")
            a.place(top)
            self.expr(node.cond)
            a.ifnot(end)
            self.loops.append(_LoopContext(end, top))
            try:
                self._scoped(lambda: self._stmts(node.body))
            finally:
                self.loops.pop()
            a.goto(top)
            a.place(end)
        elif isinstance(node, ast.DoWhile):
            top = a.label("do")
            cond_l = a.label("docond")
            end = a.label("enddo")
            a.place(top)
            self.loops.append(_LoopContext(end, cond_l))
            try:
                self._scoped(lambda: self._stmts(node.body))
            finally:
                self.loops.pop()
            a.place(cond_l)
            self.expr(node.cond)
            a.if_(top)
            a.place(end)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.Synchronized):
            self.expr(node.monitor)
            with a.sync():
                self._scoped(lambda: self._stmts(node.body))
        elif isinstance(node, ast.Try):
            self._try(node)
        elif isinstance(node, ast.Return):
            if self.decl.return_type == "void":
                if node.value is not None:
                    raise CompileError(
                        "void method cannot return a value", node.line
                    )
            else:
                if node.value is None:
                    raise CompileError(
                        "missing return value", node.line
                    )
                self.expr(node.value)
            a.ret()
        elif isinstance(node, ast.Throw):
            self.expr(node.value)
            a.athrow()
        elif isinstance(node, ast.Break):
            if not self.loops:
                raise CompileError("break outside a loop", node.line)
            a.goto(self.loops[-1].break_label)
        elif isinstance(node, ast.Continue):
            if not self.loops:
                raise CompileError("continue outside a loop", node.line)
            a.goto(self.loops[-1].continue_label)
        else:  # pragma: no cover - parser produces no other nodes
            raise CompileError(f"unknown statement {node!r}", node.line)

    def _stmts(self, body: list[ast.Stmt]) -> None:
        for s in body:
            self.stmt(s)

    def _for(self, node: ast.For) -> None:
        a = self.asm

        def emit() -> None:
            if node.init is not None:
                self.stmt(node.init)
            top = a.label("for")
            step_l = a.label("forstep")
            end = a.label("endfor")
            a.place(top)
            if node.cond is not None:
                self.expr(node.cond)
                a.ifnot(end)
            self.loops.append(_LoopContext(end, step_l))
            try:
                self._scoped(lambda: self._stmts(node.body))
            finally:
                self.loops.pop()
            a.place(step_l)
            if node.step is not None:
                self.stmt(node.step)
            a.goto(top)
            a.place(end)

        self._scoped(emit)

    def _try(self, node: ast.Try) -> None:
        a = self.asm
        catches = []
        for exc_type, binding, body in node.catches:
            def handler(binding=binding, body=body):
                def emit() -> None:
                    if binding is None:
                        a.pop()
                    else:
                        slot = self._declare(binding, None, node.line)
                        a.store(slot)
                    self._stmts(body)
                self._scoped(emit)
            catches.append((exc_type, handler))
        finally_fn = None
        if node.finally_body is not None:
            def finally_fn():
                self._scoped(lambda: self._stmts(node.finally_body))
        a.try_(
            body=lambda: self._scoped(lambda: self._stmts(node.body)),
            catches=catches,
            finally_=finally_fn,
        )

    def _assign(self, node: ast.Assign) -> None:
        a = self.asm
        target = node.target
        if isinstance(target, ast.Name):
            slot = self._lookup(target.name)
            if slot is not None:
                self.expr(node.value)
                a.store(slot)
                return
            # unqualified own-class field
            field = self.env.field_of(self.cls.name, target.name)
            if field is None:
                raise CompileError(
                    f"unknown variable {target.name!r}", target.line
                )
            if field.is_static:
                self.expr(node.value)
                a.putstatic(self.cls.name, target.name)
            else:
                self._load_this(target.line)
                self.expr(node.value)
                a.putfield(target.name)
            return
        if isinstance(target, ast.FieldAccess):
            if self._is_class_ref(target.obj):
                self.expr(node.value)
                a.putstatic(target.obj.name, target.field_name)
            else:
                self.expr(target.obj)
                self.expr(node.value)
                a.putfield(target.field_name)
            return
        if isinstance(target, ast.Index):
            self.expr(target.array)
            self.expr(target.index)
            self.expr(node.value)
            a.astore()
            return
        raise CompileError("invalid assignment target", node.line)

    # ----------------------------------------------------------- expressions
    def expr(self, node: ast.Expr) -> bool:
        """Emit ``node``; returns True when a value was left on the stack."""
        a = self.asm
        if isinstance(node, ast.IntLit):
            a.const(node.value)
        elif isinstance(node, ast.FloatLit):
            a.const(node.value)
        elif isinstance(node, ast.StringLit):
            a.const(node.value)
        elif isinstance(node, ast.NullLit):
            from repro.vm.values import NULL

            a.const(NULL)
        elif isinstance(node, ast.BoolLit):
            a.const(1 if node.value else 0)
        elif isinstance(node, ast.Name):
            self._name(node)
        elif isinstance(node, ast.FieldAccess):
            if self._is_class_ref(node.obj):
                a.getstatic(node.obj.name, node.field_name)
            else:
                self.expr(node.obj)
                a.getfield(node.field_name)
        elif isinstance(node, ast.Index):
            self.expr(node.array)
            self.expr(node.index)
            a.aload()
        elif isinstance(node, ast.New):
            a.new(node.class_name)
        elif isinstance(node, ast.NewArray):
            self.expr(node.length)
            a.newarray(node.fill)
        elif isinstance(node, ast.Unary):
            self.expr(node.operand)
            a.neg() if node.op == "-" else a.not_()
        elif isinstance(node, ast.Binary):
            return self._binary(node)
        elif isinstance(node, ast.Ternary):
            else_l = a.label("tern_else")
            end_l = a.label("tern_end")
            self.expr(node.cond)
            a.ifnot(else_l)
            self.expr(node.then)
            a.goto(end_l)
            a.place(else_l)
            self.expr(node.orelse)
            a.place(end_l)
        elif isinstance(node, ast.Call):
            return self._call(node)
        else:  # pragma: no cover
            raise CompileError(f"unknown expression {node!r}", node.line)
        return True

    def _name(self, node: ast.Name) -> None:
        slot = self._lookup(node.name)
        if slot is not None:
            self.asm.load(slot)
            return
        field = self.env.field_of(self.cls.name, node.name)
        if field is not None:
            if field.is_static:
                self.asm.getstatic(self.cls.name, node.name)
            else:
                self._load_this(node.line)
                self.asm.getfield(node.name)
            return
        raise CompileError(f"unknown variable {node.name!r}", node.line)

    def _load_this(self, line: int) -> None:
        slot = self._lookup("this")
        if slot is None:
            raise CompileError(
                "instance member used in a static method", line
            )
        self.asm.load(slot)

    def _is_class_ref(self, node: ast.Expr) -> bool:
        return (
            isinstance(node, ast.Name)
            and self._lookup(node.name) is None
            and self.env.field_of(self.cls.name, node.name) is None
            and self.env.is_class(node.name)
        )

    _BINOPS = {
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
        "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
        "==": "eq", "!=": "ne",
        "&": "and_", "|": "or_", "^": "xor", "<<": "shl", ">>": "shr",
    }

    def _binary(self, node: ast.Binary) -> bool:
        a = self.asm
        if node.op in ("&&", "||"):
            # short-circuit, normalized to 0/1
            false_l = a.label("sc_false")
            true_l = a.label("sc_true")
            end = a.label("sc_end")
            self.expr(node.left)
            if node.op == "&&":
                a.ifnot(false_l)
                self.expr(node.right)
                a.ifnot(false_l)
                a.const(1)
                a.goto(end)
                a.place(false_l)
                a.const(0)
                a.place(end)
                a.place(true_l)  # unused but keeps label accounting simple
            else:
                a.if_(true_l)
                self.expr(node.right)
                a.if_(true_l)
                a.const(0)
                a.goto(end)
                a.place(true_l)
                a.const(1)
                a.place(end)
                a.place(false_l)
            return True
        method = self._BINOPS.get(node.op)
        if method is None:  # pragma: no cover - parser filters operators
            raise CompileError(f"unknown operator {node.op!r}", node.line)
        self.expr(node.left)
        self.expr(node.right)
        getattr(a, method)()
        return True

    # ---------------------------------------------------------------- calls
    def _call(self, node: ast.Call) -> bool:
        a = self.asm
        # monitor builtins: expr.wait(), expr.notify(), expr.notifyAll()
        if node.target is not None and node.method in _MONITOR_BUILTINS:
            if self._is_class_ref(node.target):
                raise CompileError(
                    f"{node.method} needs an object, not a class",
                    node.line,
                )
            self.expr(node.target)
            if node.method == "wait":
                if len(node.args) == 1:
                    self.expr(node.args[0])
                    a.timed_wait()
                elif not node.args:
                    a.wait_()
                else:
                    raise CompileError("wait takes 0 or 1 argument",
                                       node.line)
            elif node.method == "notify":
                self._expect_argc(node, 0)
                a.notify()
            else:
                self._expect_argc(node, 0)
                a.notifyall()
            return False
        # static call Class.method(args)
        if node.target is not None and self._is_class_ref(node.target):
            for arg in node.args:
                self.expr(arg)
            a.invoke(node.target.name, node.method, len(node.args))
            return self._call_returns(node.target.name, node.method)
        # instance call expr.method(args): receiver becomes arg 0
        if node.target is not None:
            owner = self.env.resolve_instance_method(node.method, node.line)
            self.expr(node.target)
            for arg in node.args:
                self.expr(arg)
            a.invoke(owner, node.method, 1 + len(node.args))
            return self._call_returns(owner, node.method)
        # bare call: builtin, else same-class static
        if node.method in _BUILTINS:
            return self._builtin(node)
        for arg in node.args:
            self.expr(arg)
        a.invoke(self.cls.name, node.method, len(node.args))
        return self._call_returns(self.cls.name, node.method)

    def _call_returns(self, class_name: str, method: str) -> bool:
        decl = self.env.classes.get(class_name)
        if decl is None:
            raise CompileError(f"unknown class {class_name!r}")
        for m in decl.methods:
            if m.name == method:
                return m.return_type != "void"
        raise CompileError(f"no method {class_name}.{method}")

    def _expect_argc(self, node: ast.Call, count: int) -> None:
        if len(node.args) != count:
            raise CompileError(
                f"{node.method} takes {count} argument(s), got "
                f"{len(node.args)}",
                node.line,
            )

    def _const_int_arg(self, node: ast.Call, index: int) -> int:
        arg = node.args[index]
        if not isinstance(arg, ast.IntLit):
            raise CompileError(
                f"{node.method} needs a constant integer argument",
                node.line,
            )
        return arg.value

    def _builtin(self, node: ast.Call) -> bool:
        a = self.asm
        lo, hi = _BUILTINS[node.method]
        if not (lo <= len(node.args) <= hi):
            raise CompileError(
                f"{node.method} takes {lo}..{hi} arguments", node.line
            )
        name = node.method
        if name == "sleep":
            self.expr(node.args[0])
            a.sleep()
            return False
        if name == "pause":
            a.pause(self._const_int_arg(node, 0))
            return False
        if name == "yieldNow":
            a.yield_()
            return False
        if name == "currentTime":
            a.time()
            return True
        if name == "threadId":
            a.tid()
            return True
        if name == "rand":
            a.rand(self._const_int_arg(node, 0))
            return True
        if name == "print":
            for arg in node.args:
                self.expr(arg)
            a.native("println", len(node.args))
            return False
        if name == "abort":
            for arg in node.args:
                self.expr(arg)
            a.native("abort", len(node.args))
            return False
        if name == "length":
            self.expr(node.args[0])
            a.arraylen()
            return True
        if name == "nativeCall":
            target = node.args[0]
            if not isinstance(target, ast.StringLit):
                raise CompileError(
                    "nativeCall's first argument must be a string literal",
                    node.line,
                )
            for arg in node.args[1:]:
                self.expr(arg)
            a.native(target.value, len(node.args) - 1)
            # generic natives may or may not push; assume value (callers
            # in statement position will pop a pushed value; natives that
            # return None push nothing, so require expression use only
            # for value-returning natives)
            return False
        raise CompileError(f"unknown builtin {name!r}", node.line)
