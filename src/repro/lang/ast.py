"""Abstract syntax tree for MiniJava.

Plain dataclasses; every node carries its source line for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


# ------------------------------------------------------------- declarations
@dataclass
class Program:
    classes: list["ClassDecl"]


@dataclass
class ClassDecl:
    name: str
    fields: list["FieldDecl"]
    methods: list["MethodDecl"]
    line: int = 0


@dataclass
class FieldDecl:
    name: str
    type_name: str          # "int" | "float" | class name (a ref)
    is_static: bool
    volatile: bool
    line: int = 0


@dataclass
class Param:
    name: str
    type_name: str
    line: int = 0


@dataclass
class MethodDecl:
    name: str
    params: list[Param]
    return_type: str        # "void" | "int" | "float" | class name
    body: list["Stmt"]
    is_static: bool
    synchronized: bool
    line: int = 0


# --------------------------------------------------------------- statements
@dataclass
class Stmt:
    line: int = 0


@dataclass
class VarDecl(Stmt):
    name: str = ""
    type_name: str = "var"
    init: Optional["Expr"] = None


@dataclass
class Assign(Stmt):
    target: "Expr" = None   # Name / FieldAccess / StaticAccess / Index
    value: "Expr" = None


@dataclass
class ExprStmt(Stmt):
    expr: "Expr" = None


@dataclass
class If(Stmt):
    cond: "Expr" = None
    then: list[Stmt] = field(default_factory=list)
    orelse: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: "Expr" = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class DoWhile(Stmt):
    body: list[Stmt] = field(default_factory=list)
    cond: "Expr" = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional["Expr"] = None
    step: Optional[Stmt] = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Synchronized(Stmt):
    monitor: "Expr" = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional["Expr"] = None


@dataclass
class Throw(Stmt):
    value: "Expr" = None


@dataclass
class Try(Stmt):
    body: list[Stmt] = field(default_factory=list)
    #: (exception class name, binding variable name or None, handler body)
    catches: list[tuple[str, Optional[str], list[Stmt]]] = field(
        default_factory=list
    )
    finally_body: Optional[list[Stmt]] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -------------------------------------------------------------- expressions
@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class NullLit(Expr):
    pass


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class Name(Expr):
    """A bare identifier: a local variable or a class name (resolved by
    the compiler from context)."""

    name: str = ""


@dataclass
class FieldAccess(Expr):
    """``expr.field`` — instance field read (or static read when ``obj``
    resolves to a class name)."""

    obj: Expr = None
    field_name: str = ""


@dataclass
class Index(Expr):
    array: Expr = None
    index: Expr = None


@dataclass
class Call(Expr):
    """``name(args)`` (builtin or same-class static),
    ``Class.method(args)`` (static), or ``expr.method(args)``
    (instance / monitor builtin)."""

    target: Optional[Expr] = None   # None for bare calls
    method: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class New(Expr):
    class_name: str = ""


@dataclass
class NewArray(Expr):
    length: Expr = None
    fill: int = 0


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Ternary(Expr):
    cond: Expr = None
    then: Expr = None
    orelse: Expr = None
