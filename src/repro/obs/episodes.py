"""Priority-inversion episode detection over the span stream.

The paper's subject is the *priority-inversion episode*: a window in
which a higher-priority thread sits parked on a monitor entry queue
while a lower-priority thread holds the monitor.  The span stream
(:mod:`repro.obs.spans`) already records both sides — ``blocked`` spans
for the park and ``section`` spans for the tenure — so an episode is an
overlap join: for every blocked span of thread *T* on monitor *M*,
every ``section`` span on *M* by a lower-(base-)priority holder that
overlaps it contributes one episode.

Each episode is classified by how it was *resolved*:

``revocation``
    the holder's section ended in a rollback (the paper's scheme: the
    low-priority holder is preempted, undoes its work and releases).
``inheritance``
    a priority donation (``inherit`` instant) landed on the holder
    during the episode and the section then committed — the classical
    priority-inheritance cure.
``degradation``
    the degradation ladder demoted the holder's site during the episode
    (revocable → inheritance → non-revocable); the episode outlived the
    site's revocability.
``natural-release``
    the holder finished on its own: committed (or wait-released) with
    no cure in flight — exactly what an unmodified VM does.
``unresolved``
    the blocked span never closed (deadlocked or truncated run).
``other``
    everything else (leaked/abandoned sections; the blocked thread
    itself revoked or exited).

Cycle attribution is exact: blocked spans close at the very clock value
``VMThread.blocked_cycles`` is credited (see ``SpanBuilder``), so the
sum of closed blocked-span durations per thread equals the metrics
value equals the CycleProfiler's blocked attribution, with zero
residue — the report carries the three-way reconciliation to prove it.

Everything here is a pure function of the capture artifact, so the
``repro.obs.episodes/1`` report is byte-identical across interpreters,
worker counts, cache states and fleet topologies.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from repro.obs.spans import Span

EPISODES_FORMAT = "repro.obs.episodes/1"

#: resolution classes, display order
RESOLUTIONS = (
    "revocation", "degradation", "inheritance", "natural-release",
    "unresolved", "other",
)


def thread_tier(name: str) -> str:
    """SLA tier of a thread name: the first dash segment.

    Matches the server plane's ``f"{tier.name}-"`` naming ("gold-w0"
    -> "gold"); an undashed name is its own tier ("low" -> "low").
    """
    return name.split("-", 1)[0]


def _spans_from_jsonl(spans_jsonl) -> list[Span]:
    """Parse a ``repro.obs/1`` JSONL artifact back into Span objects."""
    text = (
        spans_jsonl.decode("utf-8")
        if isinstance(spans_jsonl, bytes) else spans_jsonl
    )
    spans = []
    for line in text.splitlines():
        if not line:
            continue
        rec = json.loads(line)
        if "format" in rec:
            continue  # header line
        spans.append(Span(
            sid=rec["sid"], kind=rec["kind"], thread=rec["thread"],
            start=rec["start"], end=rec["end"], parent=rec["parent"],
            attrs=rec["attrs"],
        ))
    return spans


def detect_episodes(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """The offline pass: every priority-inversion episode in ``spans``.

    Returns dicts ordered by (start, end, thread, mon), indexed from 1.
    Base (spawn-time) priorities define inversion — inheritance may
    boost a holder's *effective* priority, but that is a cure for the
    episode, not its absence.
    """
    spans = list(spans)
    priorities: dict[str, int] = {}
    sections_by_mon: dict[Any, list[Span]] = {}
    inherits: list[Span] = []
    degrades: list[Span] = []
    blocked: list[Span] = []
    for span in spans:
        if span.kind == "thread":
            priorities[span.thread] = span.attrs.get("priority", 0)
        elif span.kind == "section":
            sections_by_mon.setdefault(
                span.attrs.get("mon"), []
            ).append(span)
        elif span.kind == "inherit":
            inherits.append(span)
        elif span.kind == "degrade":
            degrades.append(span)
        elif span.kind == "blocked":
            blocked.append(span)
    for stack in sections_by_mon.values():
        stack.sort(key=lambda s: (s.start, s.sid))

    episodes: list[dict[str, Any]] = []
    for b in blocked:
        thread = b.thread
        prio = priorities.get(thread, 0)
        mon = b.attrs.get("mon")
        b_open = bool(b.attrs.get("open"))
        for s in sections_by_mon.get(mon, ()):
            if s.thread == thread:
                continue
            start = max(b.start, s.start)
            end = min(b.end, s.end)
            if end <= start:
                continue
            holder_prio = priorities.get(s.thread, 0)
            if holder_prio >= prio:
                continue  # not an inversion: holder outranks or ties
            resolution = _classify(
                b, s, start, end, b_open, inherits, degrades
            )
            episodes.append({
                "thread": thread,
                "priority": prio,
                "tier": thread_tier(thread),
                "holder": s.thread,
                "holder_priority": holder_prio,
                "mon": mon,
                "start": start,
                "end": end,
                "cycles": end - start,
                "resolution": resolution,
                "blocked_outcome": (
                    "open" if b_open else b.attrs.get("outcome")
                ),
                "section_outcome": (
                    "open" if s.attrs.get("open")
                    else s.attrs.get("outcome")
                ),
            })
    episodes.sort(key=lambda e: (
        e["start"], e["end"], e["thread"], str(e["mon"])
    ))
    for index, episode in enumerate(episodes, start=1):
        episode["index"] = index
    return episodes


def _classify(
    b: Span,
    s: Span,
    start: int,
    end: int,
    b_open: bool,
    inherits: list[Span],
    degrades: list[Span],
) -> str:
    """Resolution of the episode of ``b`` against holder section ``s``.

    Precedence: revocation (the holder rolled back) over degradation
    (the ladder demoted the site mid-episode) over inheritance (a
    donation landed and the holder committed) over natural release.
    """
    section_outcome = s.attrs.get("outcome")
    if b_open and end == b.end:
        return "unresolved"  # the park outlived the run
    if section_outcome == "rollback" and s.end == end:
        return "revocation"
    for d in degrades:
        if d.thread == s.thread and start <= d.start <= end:
            return "degradation"
    for i in inherits:
        # The donation lands at contended-acquire time, a few cycles
        # *before* the blocked span opens (the contention path advances
        # the clock between the two traces), so anchor on the section:
        # the holder received priority from this episode's blocked
        # thread while it held the monitor.
        if (
            i.thread == s.thread
            and i.attrs.get("from") == b.thread
            and s.start <= i.start <= end
        ):
            return "inheritance"
    if s.end == end and section_outcome == "commit":
        return "natural-release"
    if (
        not b_open
        and b.end == end
        and b.attrs.get("outcome") == "granted"
        and section_outcome in ("commit", None)
    ):
        # wait-release (section stays open across Object.wait) or a
        # holder that commits later on a re-entry: voluntary release
        return "natural-release"
    return "other"


def _aggregate(
    episodes: list[dict[str, Any]], key: str
) -> dict[str, dict[str, int]]:
    out: dict[str, dict[str, int]] = {}
    for e in episodes:
        bucket = out.setdefault(
            str(e[key]), {"episodes": 0, "cycles": 0}
        )
        bucket["episodes"] += 1
        bucket["cycles"] += e["cycles"]
    return dict(sorted(out.items()))


def reconcile(
    spans: Iterable[Span],
    metrics: dict[str, Any],
    profile: Optional[dict[str, Any]],
) -> dict[str, Any]:
    """Three-way zero-residue check: closed blocked-span cycles per
    thread vs the ``blocked_cycles`` metric vs the CycleProfiler's
    blocked attribution.  ``residue`` is the summed absolute
    disagreement — 0 on every deterministic run (pinned by tests).

    Open blocked spans (deadlocked/truncated parks) are never credited
    to metrics; they are reported separately as ``unresolved_cycles``.
    """
    span_cycles: dict[str, int] = {}
    unresolved = 0
    for span in spans:
        if span.kind != "blocked":
            continue
        if span.attrs.get("open"):
            unresolved += span.end - span.start
        else:
            span_cycles[span.thread] = (
                span_cycles.get(span.thread, 0)
                + (span.end - span.start)
            )
    metric_cycles = {
        name: tm["blocked_cycles"]
        for name, tm in metrics.get("threads", {}).items()
        if tm["blocked_cycles"] or name in span_cycles
    }
    profiler_cycles = (profile or {}).get("blocked")
    threads = sorted(set(span_cycles) | set(metric_cycles))
    residue = 0
    table = {}
    for name in threads:
        spans_v = span_cycles.get(name, 0)
        metric_v = metric_cycles.get(name, 0)
        row = {"spans": spans_v, "metrics": metric_v}
        residue += abs(spans_v - metric_v)
        if profiler_cycles is not None:
            prof_v = profiler_cycles.get(name, 0)
            row["profiler"] = prof_v
            residue += abs(prof_v - metric_v)
        table[name] = row
    return {
        "threads": table,
        "residue": residue,
        "unresolved_cycles": unresolved,
    }


def build_report(artifact: dict[str, Any]) -> dict[str, Any]:
    """The ``repro.obs.episodes/1`` report for one capture artifact."""
    spans = _spans_from_jsonl(artifact["spans_jsonl"])
    episodes = detect_episodes(spans)
    return {
        "format": EPISODES_FORMAT,
        "scenario": artifact.get("scenario"),
        "mode": artifact.get("mode"),
        "seed": artifact.get("seed"),
        "outcome": artifact.get("outcome"),
        "clock": artifact.get("clock"),
        "episodes": episodes,
        "totals": {
            "episodes": len(episodes),
            "inversion_cycles": sum(e["cycles"] for e in episodes),
        },
        "by_site": _aggregate(episodes, "mon"),
        "by_tier": _aggregate(episodes, "tier"),
        "by_resolution": _aggregate(episodes, "resolution"),
        "reconciliation": reconcile(
            spans, artifact.get("metrics", {}), artifact.get("profile")
        ),
    }


def report_bytes(report: dict[str, Any]) -> bytes:
    """Canonical byte-stable encoding (sorted keys, compact, one LF)."""
    return (
        json.dumps(
            report, sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        ) + "\n"
    ).encode("ascii")


def render_report(report: dict[str, Any], *, top: int = 20) -> str:
    """Human-readable episode table (stderr/stdout display form)."""
    lines = [
        f"priority-inversion episodes — {report['scenario']} "
        f"[{report['mode']}] seed={report['seed']} "
        f"outcome={report['outcome']} clock={report['clock']}",
        f"  episodes: {report['totals']['episodes']}   "
        f"inversion cycles: {report['totals']['inversion_cycles']}",
    ]
    if report["episodes"]:
        lines.append(
            "  idx  blocked(prio)     holder(prio)      site"
            "                 cycles      window               resolution"
        )
        for e in report["episodes"][:top]:
            lines.append(
                f"  {e['index']:>3}  "
                + f"{e['thread']}({e['priority']})".ljust(18)
                + f"{e['holder']}({e['holder_priority']})".ljust(18)
                + f"{str(e['mon'])}".ljust(21)
                + f"{e['cycles']:>8}  "
                + f"[{e['start']},{e['end']})".ljust(21)
                + e["resolution"]
            )
        if len(report["episodes"]) > top:
            lines.append(
                f"  ... {len(report['episodes']) - top} more"
            )
    for title, key in (
        ("by resolution", "by_resolution"),
        ("by tier", "by_tier"),
        ("by site", "by_site"),
    ):
        if report[key]:
            lines.append(f"  {title}:")
            for name, agg in report[key].items():
                lines.append(
                    f"    {name}: {agg['episodes']} episode(s), "
                    f"{agg['cycles']} cycles"
                )
    rec = report["reconciliation"]
    lines.append(
        f"  reconciliation residue: {rec['residue']} "
        f"(unresolved parked cycles: {rec['unresolved_cycles']})"
    )
    return "\n".join(lines)


def policy_table(reports: dict[str, dict[str, Any]]) -> str:
    """Per-policy comparison table — the figure the paper never had.

    ``reports`` maps mode name -> episodes report (same scenario/seed).
    Inversion cycles are normalized against the ``unmodified`` row when
    present.
    """
    base = reports.get("unmodified")
    base_cycles = (
        base["totals"]["inversion_cycles"] if base else None
    )
    lines = [
        "policy            episodes   inversion-cycles   vs-unmodified"
        "   resolutions"
    ]
    for mode, report in reports.items():
        cycles = report["totals"]["inversion_cycles"]
        if base_cycles:
            ratio = f"{cycles / base_cycles:.4f}"
        elif mode == "unmodified":
            ratio = "1.0000"
        else:
            ratio = "n/a"
        resolutions = ",".join(
            f"{name}={agg['episodes']}"
            for name, agg in report["by_resolution"].items()
        ) or "-"
        lines.append(
            f"{mode:<16}  {report['totals']['episodes']:>8}   "
            f"{cycles:>16}   {ratio:>13}   {resolutions}"
        )
    return "\n".join(lines)


class EpisodeSink:
    """Online tracer-sink variant: attach to a live VM and read the
    episode report at the end without materializing a capture artifact.

    ``vm.tracer.add_sink(EpisodeSink())`` folds events into spans as
    they happen (the heavy, per-event work); :meth:`finish` runs the
    final overlap join.  The result is identical to the offline pass
    over a stored artifact — both are pure functions of the same event
    stream (pinned by tests).
    """

    def __init__(self) -> None:
        from repro.obs.spans import SpanBuilder

        self._builder = SpanBuilder()

    def __call__(self, event) -> None:
        self._builder(event)

    def finish(self, now: int) -> list[dict[str, Any]]:
        """Close open spans at ``now`` and return the episode list."""
        return detect_episodes(self._builder.finish(now))
