"""Time-travel debugging over the deterministic VM.

The VM is a pure function of (scenario, mode, seed): re-executing any
prefix reproduces it byte-for-byte.  That turns debugging inside-out —
instead of logging forward and guessing backward, :func:`record` runs
the scenario once through the capture pipeline while taking a
content-addressed *checkpoint stream* (a :class:`~repro.vm.snapshot`
snapshot every ``interval`` scheduler slices), and a
:class:`DebugSession` then positions an independent VM at **any**
virtual cycle by restoring the nearest checkpoint at-or-before the
target and deterministically re-executing the gap.  ``step`` / ``until``
move forward; ``back`` restores and re-executes to the previous
quiescent point — time travel without ever running the clock backwards.

The recording reuses the exact ``capture_run`` construction
(:mod:`repro.obs.capture`), so its artifact bundle — spans, profile,
metrics — is byte-identical to a plain capture of the same spec; the
seek-fidelity tests pin that a seek-then-run-to-end reproduces the
straight run's clock, trace, metrics and fingerprint exactly.

Checkpoint streams are stored in the PR 9 content-addressed artifact
store (:class:`repro.bench.parallel.ResultCache`) under a key derived
from the spec, the interval and the source digest, so repeat debug
sessions restore instead of re-recording — and the same entries travel
over the fleet wire protocol like any other cached artifact.

The inspector (:func:`inspect_vm`) reads the restored VM directly:
thread states and priorities, monitor owners with their entry queues
and wait sets, undo-log depths, the spans active at the positioned
cycle, and the blocking chain (who waits on whom, walked to its root).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import (
    DeadlockError,
    StarvationError,
    UncaughtGuestException,
)
from repro.obs.capture import (
    CAPTURE_CYCLE_CAP,
    ObsSpec,
    _CounterSampler,
    _package,
)
from repro.obs.scenarios import get_scenario
from repro.obs.spans import SpanBuilder
from repro.vm.snapshot import VMSnapshot, restore_vm, snapshot_vm
from repro.vm.threads import ThreadState
from repro.vm.vmcore import JVM, VMOptions

#: checkpoint-stream schema version (cache payload format)
CHECKPOINTS_FORMAT = "repro.obs.checkpoints/1"

#: default scheduler slices between checkpoints: small enough that a
#: seek re-executes a bounded gap, large enough that the stream stays
#: O(run length / interval) snapshots
DEFAULT_INTERVAL = 64


@dataclass
class DebugRecording:
    """One recorded run: capture artifact + checkpoint stream.

    Plain picklable state — the whole recording is one artifact-store
    payload.  ``boundaries`` holds the clock value at every quiescent
    point (sorted, deduplicated): the debugger's valid stopping points.
    """

    spec: ObsSpec
    interval: int
    outcome: str
    clock: int
    artifact: dict[str, Any]
    checkpoints: list[VMSnapshot] = field(repr=False, default_factory=list)
    boundaries: list[int] = field(repr=False, default_factory=list)
    #: full decision prefix when the recording replayed a checker
    #: counterexample (None for plain scenario recordings); sessions
    #: re-arm the decision hook from it after every restore
    schedule: Optional[tuple[int, ...]] = None

    def episodes_report(self) -> dict[str, Any]:
        from repro.obs.episodes import build_report

        return build_report(self.artifact)


def _build_vm(spec: ObsSpec) -> tuple[JVM, SpanBuilder, _CounterSampler]:
    """Exactly ``capture_run``'s VM construction — one definition of
    what a capture is, so recordings and captures never drift."""
    scenario = get_scenario(spec.scenario)
    overrides = dict(scenario.options)
    overrides.setdefault("max_cycles", CAPTURE_CYCLE_CAP)
    options = VMOptions(
        mode=spec.mode,
        seed=spec.seed,
        interp=spec.interp,
        trace=True,
        profile=spec.profile,
        **overrides,
    )
    vm = JVM(options)
    builder = SpanBuilder()
    vm.tracer.add_sink(builder)
    sampler = _CounterSampler()
    vm.slice_hooks.append(sampler)
    scenario.install(vm, spec.seed, spec.write_pct)
    return vm, builder, sampler


def record(
    spec: ObsSpec, interval: int = DEFAULT_INTERVAL
) -> DebugRecording:
    """Run ``spec`` to quiescence, checkpointing every ``interval``
    slices; returns the recording (artifact byte-identical to
    :func:`repro.obs.capture.capture_run` of the same spec)."""
    vm, builder, sampler = _build_vm(spec)
    return _record_loop(spec, vm, builder, sampler, interval)


def record_replay(
    payload: dict[str, Any],
    mode: Optional[str] = None,
    interval: int = DEFAULT_INTERVAL,
) -> DebugRecording:
    """Record a ``repro.check`` counterexample replay with checkpoints,
    so the divergence opens in the time-travel debugger.  The recording
    carries the minimized decision prefix; every restore re-arms the
    scheduler's decision hook at the checkpoint's decision index, so
    seeks reproduce the counterexample schedule exactly."""
    from repro.obs.capture import build_replay_vm

    spec, vm, builder, sampler = build_replay_vm(payload, mode)
    return _record_loop(
        spec, vm, builder, sampler, interval,
        schedule=tuple(payload["minimized_schedule"]),
    )


def _record_loop(
    spec: ObsSpec,
    vm: JVM,
    builder: SpanBuilder,
    sampler: _CounterSampler,
    interval: int,
    schedule: Optional[tuple[int, ...]] = None,
) -> DebugRecording:
    if interval < 1:
        raise ValueError("checkpoint interval must be >= 1")
    vm.begin_run()
    checkpoints = [snapshot_vm(vm)]
    boundaries = [vm.clock.now]
    last_snap_slice = vm.scheduler.slices
    outcome = "completed"
    try:
        while vm.scheduler.step():
            now = vm.clock.now
            if not boundaries or boundaries[-1] != now:
                boundaries.append(now)
            slices = vm.scheduler.slices
            if (
                slices - last_snap_slice >= interval
                and vm.current_thread is None
            ):
                checkpoints.append(snapshot_vm(vm))
                last_snap_slice = slices
        vm.finish_run()
    except DeadlockError:
        outcome = "deadlock"
    except StarvationError:
        outcome = "starvation"
    except UncaughtGuestException as exc:
        outcome = f"uncaught:{exc.exc_class}"
    artifact = _package(spec, vm, builder, sampler, outcome)
    return DebugRecording(
        spec=spec,
        interval=interval,
        outcome=outcome,
        clock=vm.clock.now,
        artifact=artifact,
        checkpoints=checkpoints,
        boundaries=boundaries,
        schedule=schedule,
    )


# --------------------------------------------------- artifact-store lane
def recording_key(spec: ObsSpec, interval: int) -> str:
    """Content address of one checkpoint stream (spec + interval +
    source digest: any source change invalidates the stream)."""
    from repro.bench.parallel import cache_key, source_digest

    return cache_key("obs-debug-ckpt", spec, interval, source_digest())


def record_cached(
    spec: ObsSpec, interval: int = DEFAULT_INTERVAL, cache=None
) -> DebugRecording:
    """:func:`record` through the content-addressed artifact store.

    A hit restores the pickled checkpoint stream instead of re-running
    the scenario; corrupt or foreign entries read as misses (the store
    verifies its digest on read) and are transparently re-recorded.
    """
    if cache is None:
        from repro.bench.parallel import _env_cache

        cache = _env_cache()
    if cache is None:
        return record(spec, interval)
    key = recording_key(spec, interval)
    payload = cache.get(key)
    if (
        isinstance(payload, dict)
        and payload.get("format") == CHECKPOINTS_FORMAT
    ):
        return payload["recording"]
    recording = record(spec, interval)
    cache.put(key, {
        "format": CHECKPOINTS_FORMAT,
        "scenario": spec.scenario,
        "mode": spec.mode,
        "seed": spec.seed,
        "interval": interval,
        "checkpoints": len(recording.checkpoints),
        "recording": recording,
    })
    return recording


def execute_debug_record(item: tuple[ObsSpec, int]) -> DebugRecording:
    """Worker-side entry point for :meth:`RunEngine.map` — checkpoint
    streams fan out and travel the fleet wire like any artifact."""
    spec, interval = item
    return record(spec, interval)


def debug_record_key(item: tuple[ObsSpec, int]) -> str:
    spec, interval = item
    return recording_key(spec, interval)


def record_with_engine(
    spec: ObsSpec, interval: int = DEFAULT_INTERVAL, engine=None
) -> DebugRecording:
    """Record through a RunEngine: local pool, or a fleet coordinator —
    the checkpoint stream lands in (and is served from) the shared
    content-addressed store either way."""
    if engine is None:
        from repro.bench.parallel import RunEngine

        engine = RunEngine.from_env()
    return engine.map(
        execute_debug_record, [(spec, interval)], key_fn=debug_record_key
    )[0]


# ------------------------------------------------------------ the session
class DebugSession:
    """An independent VM positioned anywhere on the recorded timeline.

    Every positioning operation is restore-then-re-execute: the session
    never mutates the recording, and two sessions over one recording are
    fully isolated (snapshots are copy-on-restore).
    """

    def __init__(self, recording: DebugRecording) -> None:
        self.recording = recording
        self._clocks = [c.clock_now for c in recording.checkpoints]
        self._restore(0)

    def _restore(self, index: int) -> None:
        self.vm = restore_vm(self.recording.checkpoints[index])
        schedule = self.recording.schedule
        if schedule is not None:
            # Snapshots drop the decision hook (it is host-side state);
            # re-arm it with the remainder of the recorded prefix so
            # re-execution follows the counterexample schedule.
            from repro.check.explorer import ScheduleController

            taken = self.vm.scheduler.decisions
            self.vm.scheduler.decision_hook = ScheduleController(
                schedule[taken:]
            )

    # ------------------------------------------------------------ movement
    @property
    def now(self) -> int:
        return self.vm.clock.now

    def seek(self, cycle: int) -> int:
        """Position at the first quiescent point with clock >= ``cycle``
        (or the end of the run, whichever comes first); returns the
        clock actually reached."""
        base = bisect.bisect_right(self._clocks, cycle) - 1
        if base < 0:
            base = 0
        self._restore(base)
        return self._run_to(cycle)

    def _run_to(self, cycle: int) -> int:
        vm = self.vm
        while vm.clock.now < cycle:
            if not self._step_once():
                break
        return vm.clock.now

    def _step_once(self) -> bool:
        """One scheduler step on the session VM; run-terminating
        conditions (deadlock, starvation, uncaught) end the timeline
        rather than escaping the debugger."""
        try:
            return self.vm.scheduler.step() is not None
        except (DeadlockError, StarvationError, UncaughtGuestException):
            return False

    def step(self, count: int = 1) -> int:
        """Advance ``count`` scheduler slices; returns the new clock."""
        for _ in range(max(0, count)):
            if not self._step_once():
                break
        return self.now

    def until(self, cycle: int) -> int:
        """Move to ``cycle`` in either direction."""
        if cycle < self.now:
            return self.seek(cycle)
        return self._run_to(cycle)

    def back(self, cycles: int = 0) -> int:
        """Step backwards: to the previous quiescent boundary, or by at
        least ``cycles`` virtual cycles when given."""
        target = self.now - cycles if cycles > 0 else self.now - 1
        boundaries = self.recording.boundaries
        i = bisect.bisect_right(boundaries, max(0, target)) - 1
        if i < 0:
            i = 0
        return self.seek(boundaries[i])

    def seek_episode(self, index: int) -> dict[str, Any]:
        """Position at the start of priority-inversion episode
        ``index`` (1-based, as numbered in the episodes report);
        returns the episode record."""
        report = self.recording.episodes_report()
        episodes = report["episodes"]
        if not 1 <= index <= len(episodes):
            raise IndexError(
                f"episode {index} out of range: the recording has "
                f"{len(episodes)} episode(s)"
            )
        episode = episodes[index - 1]
        self.seek(episode["start"])
        return episode

    # ----------------------------------------------------------- inspector
    def state(self) -> dict[str, Any]:
        return inspect_vm(self.vm, self.recording)


# ------------------------------------------------------------- inspection
def _monitor_name(mon) -> str:
    return repr(mon.obj)


def inspect_vm(
    vm: JVM, recording: Optional[DebugRecording] = None
) -> dict[str, Any]:
    """Deterministic structured state of a positioned VM: threads,
    monitors (owner / entry queue / wait set), undo logs, blocking
    chains, and — when the recording is at hand — the spans active at
    this cycle."""
    threads = []
    for t in vm.threads:
        threads.append({
            "name": t.name,
            "tid": t.tid,
            "state": t.state.value,
            "priority": t.priority,
            "effective_priority": t.effective_priority,
            "inherited_priority": t.inherited_priority,
            "blocked_on": (
                _monitor_name(t.blocked_on)
                if t.blocked_on is not None else None
            ),
            "held": sorted(_monitor_name(m) for m in t.held_monitors),
            "sections": len(t.sections),
            "undo_depth": (
                len(t.undo_log) if t.undo_log is not None else 0
            ),
            "blocked_cycles": t.blocked_cycles,
            "revocations": t.revocations,
        })
    monitors: dict[str, dict[str, Any]] = {}
    seen = {}
    for t in vm.threads:
        for mon in list(t.held_monitors) + (
            [t.blocked_on] if t.blocked_on is not None else []
        ):
            seen[id(mon)] = mon
    for mon in seen.values():
        monitors[_monitor_name(mon)] = {
            "owner": mon.owner.name if mon.owner is not None else None,
            "count": mon.count,
            "ceiling": mon.ceiling,
            "entry_queue": [th.name for th, _ in mon.entry_queue],
            "wait_set": [th.name for th, _ in mon.wait_set],
        }
    chains = []
    for t in vm.threads:
        if t.state is not ThreadState.BLOCKED or t.blocked_on is None:
            continue
        chain = [t.name]
        walked = {t.tid}
        cur = t
        cyclic = False
        while cur.blocked_on is not None and cur.blocked_on.owner:
            nxt = cur.blocked_on.owner
            chain.append(_monitor_name(cur.blocked_on))
            chain.append(nxt.name)
            if nxt.tid in walked:
                cyclic = True
                break
            walked.add(nxt.tid)
            cur = nxt
        chains.append({"chain": chain, "cyclic": cyclic})
    state: dict[str, Any] = {
        "clock": vm.clock.now,
        "slices": vm.scheduler.slices,
        "decisions": vm.scheduler.decisions,
        "threads": threads,
        "monitors": dict(sorted(monitors.items())),
        "blocking_chains": sorted(
            chains, key=lambda c: c["chain"]
        ),
    }
    if recording is not None:
        state["active_spans"] = _active_spans(recording, vm.clock.now)
    return state


def _active_spans(
    recording: DebugRecording, cycle: int
) -> list[dict[str, Any]]:
    """Spans from the recorded stream that cover ``cycle``."""
    from repro.obs.episodes import _spans_from_jsonl

    out = []
    for s in _spans_from_jsonl(recording.artifact["spans_jsonl"]):
        if s.start == s.end:
            continue  # instants never "cover" a cycle
        if s.start <= cycle and (s.attrs.get("open") or s.end > cycle):
            out.append({
                "kind": s.kind,
                "thread": s.thread,
                "start": s.start,
                "end": s.end,
                "attrs": dict(sorted(s.attrs.items())),
            })
    out.sort(key=lambda d: (d["start"], d["thread"], d["kind"]))
    return out


def repl(session: DebugSession) -> int:
    """The interactive loop: line commands against a DebugSession.
    Shared by ``python -m repro.obs debug`` and ``python -m repro.check
    --replay ... --debug``."""
    import sys

    print(
        f"recorded {session.recording.spec.scenario} "
        f"mode={session.recording.spec.mode} to cycle "
        f"{session.recording.clock} "
        f"({len(session.recording.checkpoints)} checkpoint(s)); "
        "commands: state, step [n], until CYCLE, back [cycles], "
        "seek CYCLE, episode N, episodes, quit",
        file=sys.stderr,
    )
    while True:
        print(f"(ttd @ {session.now}) ", end="", file=sys.stderr,
              flush=True)
        line = sys.stdin.readline()
        if not line:
            return 0
        words = line.split()
        if not words:
            continue
        cmd, rest = words[0], words[1:]
        try:
            if cmd in ("q", "quit", "exit"):
                return 0
            elif cmd in ("s", "state"):
                print(render_state(session.state()))
            elif cmd == "step":
                session.step(int(rest[0]) if rest else 1)
                print(f"clock {session.now}")
            elif cmd == "until":
                session.until(int(rest[0]))
                print(f"clock {session.now}")
            elif cmd == "back":
                session.back(int(rest[0]) if rest else 0)
                print(f"clock {session.now}")
            elif cmd == "seek":
                session.seek(int(rest[0]))
                print(f"clock {session.now}")
            elif cmd == "episode":
                episode = session.seek_episode(int(rest[0]))
                print(
                    f"at episode {episode['index']} "
                    f"[{episode['start']}, {episode['end']}] "
                    f"resolution {episode['resolution']}; clock "
                    f"{session.now}"
                )
            elif cmd == "episodes":
                report = session.recording.episodes_report()
                for e in report["episodes"]:
                    print(
                        f"  {e['index']}: {e['thread']} blocked "
                        f"[{e['start']}, {e['end']}] on {e['mon']} "
                        f"held by {e['holder']} -> {e['resolution']}"
                    )
                if not report["episodes"]:
                    print("  (no priority-inversion episodes)")
            else:
                print(f"unknown command {cmd!r}", file=sys.stderr)
        except (ValueError, IndexError) as exc:
            print(f"error: {exc}", file=sys.stderr)


def render_state(state: dict[str, Any]) -> str:
    """One-screen deterministic rendering of :func:`inspect_vm`."""
    lines = [
        f"clock {state['clock']}  slices {state['slices']}  "
        f"decisions {state['decisions']}",
        "",
        f"{'thread':<16} {'state':<10} {'prio':>4} {'eff':>4} "
        f"{'undo':>5} {'blocked-cycles':>14}  blocked-on / held",
    ]
    for t in state["threads"]:
        extra = []
        if t["blocked_on"]:
            extra.append(f"on {t['blocked_on']}")
        if t["held"]:
            extra.append("holds " + ",".join(t["held"]))
        lines.append(
            f"{t['name']:<16} {t['state']:<10} {t['priority']:>4} "
            f"{t['effective_priority']:>4} {t['undo_depth']:>5} "
            f"{t['blocked_cycles']:>14}  {' '.join(extra)}"
        )
    if state["monitors"]:
        lines.append("")
        lines.append("monitors:")
        for name, m in state["monitors"].items():
            queue = ",".join(m["entry_queue"]) or "-"
            waits = ",".join(m["wait_set"]) or "-"
            lines.append(
                f"  {name:<24} owner={m['owner'] or '-':<14} "
                f"count={m['count']} queue=[{queue}] wait=[{waits}]"
            )
    for c in state["blocking_chains"]:
        arrow = " -> ".join(c["chain"])
        suffix = "  (cycle!)" if c["cyclic"] else ""
        lines.append(f"blocked: {arrow}{suffix}")
    spans = state.get("active_spans")
    if spans is not None:
        lines.append("")
        lines.append(f"active spans ({len(spans)}):")
        for s in spans:
            end = "open" if s["attrs"].get("open") else s["end"]
            detail = s["attrs"].get("mon") or s["attrs"].get("site") or ""
            lines.append(
                f"  {s['kind']:<10} {s['thread']:<16} "
                f"[{s['start']}, {end}] {detail}"
            )
    return "\n".join(lines)
