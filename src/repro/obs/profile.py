"""The virtual-cycle profiler.

Where do the cycles go?  The paper's overhead story (§4.2) is a cycle
budget — work vs. write barriers vs. undo logging vs. rollback vs.
scheduling — and this module reconstructs that budget for any run, with
an exactness guarantee the virtual clock makes cheap: the profiler
listens to **every** clock advance, so its per-track totals sum to the
final virtual time with no residue, ever.

Three attribution layers, coarse to fine:

``tracks``
    ``track -> {category -> cycles}``.  One track per VM thread plus the
    ``"(vm)"`` pseudo-track.  Categories: ``guest`` (cycles flushed by an
    interpreter while the thread ran), ``rollback`` (revocation restore
    work charged via :meth:`JVM.charge`), ``switch`` (the context-switch
    cost of dispatching onto the track), ``idle`` (all threads asleep)
    and ``vm`` (everything outside an execution slice).  Invariant:
    ``sum(all categories of all tracks) == clock.now``.

``methods`` / ``stacks``
    Per-method cycle/instruction totals and folded call-stack totals,
    fed by the interpreters' flush points.  Both engines flush identical
    amounts at identical program points (the parity contract), so these
    tables are interpreter-independent.  Invariant: per track, the sum
    over methods equals the track's ``guest`` cycles.

``mech``
    ``(track, method, mechanism) -> cycles``: the slice of a method's
    cycles spent in runtime-support machinery — ``barrier`` (fast-path
    in-sync tests + read barriers), ``undo_log`` (slow-path log
    appends), ``monitor`` (enter/exit/contention/wait bookkeeping),
    ``native`` (trampolines) and ``rollback`` (restores; charged outside
    the flush stream, see the table note in ``docs/observability.md``).
    Captured by wrapping the installed :class:`RuntimeSupport` in a
    :class:`ProfilingSupport` proxy; the unmodified VM's hooks all cost
    zero, so its ``mech`` table stays empty.

The profiler is purely observational: it never advances the clock, never
touches the RNG and never emits trace events, so ``profile=True`` cannot
change a run's schedule, trace or fingerprint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.monitors import Monitor
    from repro.vm.threads import Frame, VMThread

#: pseudo-track for cycles not attributable to a guest thread
VM_TRACK = "(vm)"

CAT_GUEST = "guest"
CAT_ROLLBACK = "rollback"
CAT_SWITCH = "switch"
CAT_IDLE = "idle"
CAT_VM = "vm"


class CycleProfiler:
    """Exact per-track cycle attribution via the clock-listener seam."""

    def __init__(self) -> None:
        self.tracks: dict[str, dict[str, int]] = {}
        #: (track, qualified method name) -> [cycles, instructions]
        self.methods: dict[tuple[str, str], list[int]] = {}
        #: (track, "caller;...;callee") -> cycles
        self.stacks: dict[tuple[str, str], int] = {}
        #: (track, qualified method name, mechanism) -> cycles
        self.mech: dict[tuple[str, str, str], int] = {}
        #: track -> cycles spent parked on monitor entry queues.  NOT a
        #: clock partition (blocked time overlaps other threads' running
        #: time); credited by :meth:`JVM.credit_blocked` at the exact
        #: moment ``VMThread.blocked_cycles`` is, so the two always agree.
        self.blocked: dict[str, int] = {}
        self._track = VM_TRACK
        self._cat = CAT_VM

    # ------------------------------------------------------- clock listener
    def __call__(self, cycles: int) -> None:
        """Clock-listener entry point: every advance lands here."""
        if cycles:
            track = self.tracks.get(self._track)
            if track is None:
                track = self.tracks[self._track] = {}
            track[self._cat] = track.get(self._cat, 0) + cycles

    # ------------------------------------------------- scheduler bracketing
    def set_context(self, track: str, category: str) -> None:
        """Called by the scheduler around slices/switches/idle jumps."""
        self._track = track
        self._cat = category

    def push_category(self, category: str) -> str:
        """Temporarily recategorize advances (``JVM.charge(kind=...)``)."""
        prev = self._cat
        self._cat = category
        return prev

    def pop_category(self, prev: str) -> None:
        self._cat = prev

    # --------------------------------------------------- interpreter flush
    def on_flush(
        self, thread: "VMThread", frame: "Frame", cycles: int, insns: int
    ) -> None:
        """One interpreter flush: ``cycles``/``insns`` executed in
        ``frame``'s method since the previous flush.

        ``frame`` may already be popped (the RETURN flush) or may not be
        the top of stack (the INVOKE flush runs after the callee frame is
        pushed); ``frame.depth`` indexes its caller prefix either way.
        """
        track = thread.name
        key = (track, frame.method.qualified_name())
        cell = self.methods.get(key)
        if cell is None:
            self.methods[key] = [cycles, insns]
        else:
            cell[0] += cycles
            cell[1] += insns
        if cycles:
            callers = thread.frames[: frame.depth]
            folded = ";".join(
                [f.method.qualified_name() for f in callers]
                + [frame.method.qualified_name()]
            )
            skey = (track, folded)
            self.stacks[skey] = self.stacks.get(skey, 0) + cycles

    # --------------------------------------------------- mechanism splits
    def note_mechanism(
        self, thread: Optional["VMThread"], mechanism: str, cycles: int
    ) -> None:
        if not cycles:
            return
        track = thread.name if thread is not None else VM_TRACK
        if thread is not None and thread.frames:
            method = thread.frames[-1].method.qualified_name()
        else:
            method = "(no frame)"
        key = (track, method, mechanism)
        self.mech[key] = self.mech.get(key, 0) + cycles

    def note_blocked(self, track: str, cycles: int) -> None:
        """One closed blocked interval on ``track`` (entry-queue park →
        grant/wake).  Fed exclusively through ``JVM.credit_blocked``."""
        if cycles:
            self.blocked[track] = self.blocked.get(track, 0) + cycles

    # ------------------------------------------------------------- queries
    def total_cycles(self) -> int:
        return sum(
            cycles
            for cats in self.tracks.values()
            for cycles in cats.values()
        )

    def track_totals(self) -> dict[str, int]:
        return {
            track: sum(cats.values())
            for track, cats in sorted(self.tracks.items())
        }

    def category_totals(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for cats in self.tracks.values():
            for cat, cycles in cats.items():
                out[cat] = out.get(cat, 0) + cycles
        return dict(sorted(out.items()))

    def snapshot(self) -> dict:
        """Plain picklable summary: sorted tracks, grand total, method
        table.  The form stored in capture artifacts and RunResults."""
        return {
            "tracks": {
                track: dict(sorted(cats.items()))
                for track, cats in sorted(self.tracks.items())
            },
            "total": self.total_cycles(),
            "blocked": dict(sorted(self.blocked.items())),
            "methods": self.method_table(),
        }

    def method_table(self, top: int = 0) -> list[dict]:
        """Per-method rows, heaviest first (deterministic tie-break).

        Each row splits the method's flushed cycles into mechanism
        buckets plus ``work`` (the remainder: pure guest computation).
        ``rollback`` is charged outside the flush stream, so it is
        reported as an extra column, not subtracted from ``work``.
        """
        mech_by_method: dict[tuple[str, str], dict[str, int]] = {}
        for (track, method, mechanism), cycles in self.mech.items():
            split = mech_by_method.setdefault((track, method), {})
            split[mechanism] = split.get(mechanism, 0) + cycles
        rows = []
        for (track, method), (cycles, insns) in self.methods.items():
            split = mech_by_method.get((track, method), {})
            inflush = sum(
                v for k, v in split.items() if k != CAT_ROLLBACK
            )
            rows.append(
                {
                    "thread": track,
                    "method": method,
                    "cycles": cycles,
                    "insns": insns,
                    "work": max(0, cycles - inflush),
                    "barrier": split.get("barrier", 0),
                    "undo_log": split.get("undo_log", 0),
                    "monitor": split.get("monitor", 0),
                    "native": split.get("native", 0),
                    "rollback": split.get(CAT_ROLLBACK, 0),
                }
            )
        rows.sort(key=lambda r: (-r["cycles"], r["thread"], r["method"]))
        return rows[:top] if top else rows


class ProfilingSupport:
    """Delegating :class:`RuntimeSupport` wrapper that observes the extra
    cycle costs the installed support charges, splitting them by
    mechanism.  Pure pass-through otherwise — same costs, same signals,
    same state — so profiled and unprofiled runs are byte-identical.
    """

    def __init__(self, inner, profiler: CycleProfiler) -> None:
        self.inner = inner
        self.profiler = profiler

    def __getattr__(self, name):
        if name == "inner":
            # copy/pickle reconstruct probes attributes on an empty
            # instance before __dict__ is restored; without this guard
            # the delegation recurses forever.
            raise AttributeError(name)
        return getattr(self.inner, name)

    # ------------------------------------------------------------- barriers
    def before_store(self, thread, container, slot, old_value, volatile):
        cost = self.inner.before_store(
            thread, container, slot, old_value, volatile
        )
        if cost:
            fast = self.inner.vm.cost_model.barrier_fast
            if cost > fast:
                self.profiler.note_mechanism(thread, "barrier", fast)
                self.profiler.note_mechanism(
                    thread, "undo_log", cost - fast
                )
            else:
                self.profiler.note_mechanism(thread, "barrier", cost)
        return cost

    def before_store_batch(self, thread, entries):
        # Explicit wrapper (``__getattr__`` delegation would silently skip
        # attribution): same fast/slow split as before_store, applied to
        # the whole run at once so totals match the per-entry path.
        cost = self.inner.before_store_batch(thread, entries)
        if cost:
            fast = self.inner.vm.cost_model.barrier_fast * len(entries)
            if cost > fast:
                self.profiler.note_mechanism(thread, "barrier", fast)
                self.profiler.note_mechanism(
                    thread, "undo_log", cost - fast
                )
            else:
                self.profiler.note_mechanism(thread, "barrier", cost)
        return cost

    def after_load(self, thread, container, slot, volatile):
        cost = self.inner.after_load(thread, container, slot, volatile)
        self.profiler.note_mechanism(thread, "barrier", cost)
        return cost

    # ------------------------------------------------------------- monitors
    def on_monitor_entered(self, thread, monitor, frame, sync_id, recursive):
        cost = self.inner.on_monitor_entered(
            thread, monitor, frame, sync_id, recursive
        )
        self.profiler.note_mechanism(thread, "monitor", cost)
        return cost

    def on_monitor_exited(self, thread, monitor, frame, sync_id):
        cost = self.inner.on_monitor_exited(thread, monitor, frame, sync_id)
        self.profiler.note_mechanism(thread, "monitor", cost)
        return cost

    def on_contended_acquire(self, thread, monitor):
        cost = self.inner.on_contended_acquire(thread, monitor)
        self.profiler.note_mechanism(thread, "monitor", cost)
        return cost

    def on_handoff(self, releaser, monitor, new_owner):
        cost = self.inner.on_handoff(releaser, monitor, new_owner)
        self.profiler.note_mechanism(releaser, "monitor", cost)
        return cost

    def on_wait(self, thread, monitor):
        cost = self.inner.on_wait(thread, monitor)
        self.profiler.note_mechanism(thread, "monitor", cost)
        return cost

    def on_wait_reacquired(self, thread, monitor):
        cost = self.inner.on_wait_reacquired(thread, monitor)
        self.profiler.note_mechanism(thread, "monitor", cost)
        return cost

    # -------------------------------------------------------------- control
    def on_native_call(self, thread, name):
        cost = self.inner.on_native_call(thread, name)
        self.profiler.note_mechanism(thread, "native", cost)
        return cost

    def on_rollback_handler(self, thread, section, is_target):
        cost = self.inner.on_rollback_handler(thread, section, is_target)
        self.profiler.note_mechanism(thread, CAT_ROLLBACK, cost)
        return cost
