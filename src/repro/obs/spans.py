"""Causal spans: folding the raw trace into typed intervals.

A :class:`TraceEvent` stream answers "what happened when"; spans answer
"what was *ongoing*, inside what, caused by whom".  The
:class:`SpanBuilder` is an online tracer sink (attach with
``vm.tracer.add_sink(builder)``) that folds events into:

=================  =====================================================
kind               interval
=================  =====================================================
``thread``         spawn → exit (one root span per VM thread)
``section``        monitorenter → monitorexit / rollback-release;
                   ``outcome`` is ``commit``, ``rollback``, ``abandoned``
                   or ``leaked``
``blocked``        entry-queue park → grant/wakeup (closed at the exact
                   clock value the thread's ``blocked_cycles`` metric is
                   credited, so span durations reconcile with metrics)
``wait``           Object.wait → return / timeout / notify / exit
``revocation``     revocation request → rollback completion; carries the
                   requester, the origin (acquire/periodic/deadlock) and
                   the undo-entry count restored
``revocation_denied``  instant: a posted request was refused (reason)
``inherit``        instant: a priority donation landed on a monitor owner
``degrade``        instant: a section site dropped a ladder rung
``grace`` / ``backoff``  instant: a revocation-free window was granted
``fault``          instant: an injected fault was delivered
``deadlock``       instant: a wait-for cycle was detected
=================  =====================================================

Causality: every span opened on a thread is parented to the innermost
span still open on that thread (section nesting falls out naturally),
and a ``revocation`` span is parented to the *section it preempted* on
the holder thread — so "which revocation killed which section, on whose
behalf" is one parent-pointer walk.  All times are exact virtual cycles.

Determinism: spans are a pure function of the event stream plus the
final clock value, so identical runs — across interpreters, worker
counts and cache states — yield identical span lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.vm.tracing import TraceEvent

#: pseudo-track used for events with no acting thread
VM_TRACK = "(vm)"


@dataclass
class Span:
    """One typed interval (or instant, when ``end == start``)."""

    sid: int
    kind: str
    thread: Optional[str]
    start: int
    end: Optional[int] = None
    parent: Optional[int] = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[int]:
        return None if self.end is None else self.end - self.start

    def as_dict(self) -> dict[str, Any]:
        """Stable field order for the ``repro.obs/1`` JSONL schema."""
        return {
            "sid": self.sid,
            "kind": self.kind,
            "thread": self.thread,
            "start": self.start,
            "end": self.end,
            "parent": self.parent,
            "attrs": self.attrs,
        }


class SpanBuilder:
    """Online span construction; usable directly as a tracer sink."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._next_sid = 0
        self._thread_span: dict[str, Span] = {}
        #: per-thread stack of open section spans
        self._sections: dict[str, list[Span]] = {}
        #: recursive-entry depth per open section span
        self._depth: dict[int, int] = {}
        self._blocked: dict[str, Span] = {}
        self._wait: dict[str, Span] = {}
        #: holder thread -> open revocation span
        self._revocation: dict[str, Span] = {}
        #: holder thread -> undo entries restored (from rollback_begin)
        self._undone: dict[str, int] = {}

    # ------------------------------------------------------------ plumbing
    def _open(
        self,
        kind: str,
        thread: Optional[str],
        start: int,
        attrs: dict[str, Any],
        parent: Optional[Span] = None,
    ) -> Span:
        if parent is None and thread is not None:
            parent = self._innermost(thread)
        span = Span(
            sid=self._next_sid,
            kind=kind,
            thread=thread,
            start=start,
            parent=None if parent is None else parent.sid,
            attrs=attrs,
        )
        self._next_sid += 1
        self.spans.append(span)
        return span

    def _instant(
        self,
        kind: str,
        thread: Optional[str],
        time: int,
        attrs: dict[str, Any],
    ) -> Span:
        span = self._open(kind, thread, time, attrs)
        span.end = time
        return span

    def _innermost(self, thread: str) -> Optional[Span]:
        stack = self._sections.get(thread)
        if stack:
            return stack[-1]
        return self._thread_span.get(thread)

    # ---------------------------------------------------------- sink entry
    def __call__(self, event: TraceEvent) -> None:
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event)

    # ------------------------------------------------------- thread spans
    def _on_spawn(self, e: TraceEvent) -> None:
        self._thread_span[e.thread] = self._open(
            "thread", e.thread, e.time,
            {"priority": e.details.get("priority")},
        )

    def _on_exit(self, e: TraceEvent) -> None:
        t = e.thread
        for table in (self._blocked, self._wait):
            span = table.pop(t, None)
            if span is not None:
                span.end = e.time
                span.attrs["outcome"] = "exit"
        for span in self._sections.pop(t, []):
            span.end = e.time
            span.attrs["outcome"] = "leaked"
            self._depth.pop(span.sid, None)
        span = self._thread_span.get(t)
        if span is not None:
            span.end = e.time

    # ------------------------------------------------------ section spans
    def _on_acquire(self, e: TraceEvent) -> None:
        t = e.thread
        blocked = self._blocked.pop(t, None)
        if blocked is not None:
            blocked.end = e.time
            blocked.attrs["outcome"] = "acquired"
        mon = e.details.get("mon")
        if e.details.get("recursive"):
            stack = self._sections.get(t)
            if stack:
                for span in reversed(stack):
                    if span.attrs.get("mon") == mon:
                        self._depth[span.sid] += 1
                        return
        attrs: dict[str, Any] = {"mon": mon}
        if e.details.get("handoff"):
            attrs["handoff"] = True
        span = self._open("section", t, e.time, attrs)
        self._sections.setdefault(t, []).append(span)
        self._depth[span.sid] = 1

    def _close_section(
        self, thread: str, mon: Any, time: int, outcome: str
    ) -> Optional[Span]:
        stack = self._sections.get(thread)
        if not stack:
            return None
        for i in range(len(stack) - 1, -1, -1):
            span = stack[i]
            if mon is not None and span.attrs.get("mon") != mon:
                continue
            if outcome == "commit":
                self._depth[span.sid] -= 1
                if self._depth[span.sid] > 0:
                    return None  # recursive exit: span stays open
            stack.pop(i)
            self._depth.pop(span.sid, None)
            span.end = time
            span.attrs["outcome"] = outcome
            return span
        return None

    def _on_release(self, e: TraceEvent) -> None:
        self._close_section(
            e.thread, e.details.get("mon"), e.time, "commit"
        )
        self._close_blocked(e.details.get("successor"), e.time, "granted")

    def _on_rollback_release(self, e: TraceEvent) -> None:
        section = self._close_section(
            e.thread, e.details.get("mon"), e.time, "rollback"
        )
        self._close_blocked(e.details.get("successor"), e.time, "granted")
        revocation = self._revocation.get(e.thread)
        if section is not None and revocation is not None:
            # the causal edge: this revocation preempted that section
            revocation.parent = section.sid
            section.attrs["revoked_by"] = revocation.sid

    def _on_handoff_returned(self, e: TraceEvent) -> None:
        self._close_blocked(e.details.get("successor"), e.time, "granted")

    def _on_leaked_monitor(self, e: TraceEvent) -> None:
        self._close_blocked(e.details.get("successor"), e.time, "granted")

    def _on_section_abandoned(self, e: TraceEvent) -> None:
        stack = self._sections.get(e.thread)
        if stack:
            span = stack.pop()
            self._depth.pop(span.sid, None)
            span.end = e.time
            span.attrs["outcome"] = "abandoned"

    # ----------------------------------------------------- blocked / wait
    def _on_block(self, e: TraceEvent) -> None:
        if e.thread not in self._blocked:
            self._blocked[e.thread] = self._open(
                "blocked", e.thread, e.time, {"mon": e.details.get("mon")}
            )

    def _close_blocked(
        self, thread: Optional[str], time: int, outcome: str
    ) -> None:
        """Close ``thread``'s open blocked span (if any) at ``time``.

        The close sites mirror ``JVM.credit_blocked`` call sites exactly
        — grants at release/wait/rollback-release, wakeups, revocation
        wakes — so every closed blocked span's duration equals the cycles
        credited to the thread's ``blocked_cycles`` metric at that very
        clock value (the zero-residue episode reconciliation relies on
        this)."""
        if thread is None:
            return
        span = self._blocked.pop(thread, None)
        if span is not None:
            span.end = time
            span.attrs["outcome"] = outcome

    def _on_wakeup(self, e: TraceEvent) -> None:
        self._close_blocked(e.thread, e.time, "wakeup")

    def _on_wait(self, e: TraceEvent) -> None:
        self._close_blocked(e.details.get("successor"), e.time, "granted")
        self._wait[e.thread] = self._open(
            "wait", e.thread, e.time,
            {"mon": e.details.get("mon"),
             "timeout": e.details.get("timeout")},
        )

    def _close_wait(self, thread: str, time: int, outcome: str) -> None:
        span = self._wait.pop(thread, None)
        if span is not None:
            span.end = time
            span.attrs["outcome"] = outcome

    def _on_wait_return(self, e: TraceEvent) -> None:
        self._close_wait(e.thread, e.time, "returned")

    def _on_wait_timeout(self, e: TraceEvent) -> None:
        self._close_wait(e.thread, e.time, "timeout")

    def _on_notify(self, e: TraceEvent) -> None:
        woken = e.details.get("woken")
        if woken is not None:
            self._close_wait(woken, e.time, "notified")

    # -------------------------------------------------- revocation chains
    def _open_revocation(
        self, holder: str, time: int, attrs: dict[str, Any]
    ) -> None:
        existing = self._revocation.get(holder)
        if existing is not None:
            existing.attrs["requests"] = (
                existing.attrs.get("requests", 1) + 1
            )
            return
        parent = None
        stack = self._sections.get(holder)
        if stack:
            parent = stack[-1]
        self._revocation[holder] = self._open(
            "revocation", holder, time, attrs, parent=parent
        )

    def _on_revocation_request(self, e: TraceEvent) -> None:
        holder = e.details.get("holder")
        if holder is None:
            return
        # A blocked holder is woken by the scheduler at this instant so
        # the rollback can proceed (and its park is credited here).
        self._close_blocked(holder, e.time, "revocation-wake")
        self._open_revocation(
            holder, e.time,
            {"requester": e.thread,
             "origin": e.details.get("origin"),
             "section": e.details.get("section")},
        )

    def _on_deadlock_resolve(self, e: TraceEvent) -> None:
        self._close_blocked(e.thread, e.time, "revocation-wake")
        self._open_revocation(
            e.thread, e.time,
            {"requester": None, "origin": "deadlock",
             "section": e.details.get("section"),
             "cycle": e.details.get("cycle")},
        )

    def _on_revocation_denied(self, e: TraceEvent) -> None:
        holder = e.details.get("holder")
        self._instant(
            "revocation_denied", holder, e.time,
            {"requester": e.thread, "reason": e.details.get("reason")},
        )

    def _on_rollback_begin(self, e: TraceEvent) -> None:
        self._undone[e.thread] = e.details.get("undone", 0)

    def _on_rollback_done(self, e: TraceEvent) -> None:
        self._close_blocked(e.thread, e.time, "revoked")
        span = self._revocation.pop(e.thread, None)
        if span is not None:
            span.end = e.time
            span.attrs["outcome"] = "rolled-back"
            span.attrs["undone"] = self._undone.pop(e.thread, 0)

    # ------------------------------------------------- instant annotations
    def _on_inherit(self, e: TraceEvent) -> None:
        # priority donation: e.thread is the receiving owner
        self._instant(
            "inherit", e.thread, e.time,
            {"from": e.details.get("from_"),
             "priority": e.details.get("priority")},
        )

    def _on_degrade(self, e: TraceEvent) -> None:
        self._instant(
            "degrade", e.thread, e.time,
            {"sync_id": e.details.get("sync_id"),
             "level": e.details.get("level"),
             "reason": e.details.get("reason")},
        )

    def _on_grace_granted(self, e: TraceEvent) -> None:
        self._instant(
            "grace", e.thread, e.time, {"until": e.details.get("until")}
        )

    def _on_site_backoff(self, e: TraceEvent) -> None:
        self._instant(
            "backoff", e.thread, e.time,
            {"sync_id": e.details.get("sync_id"),
             "until": e.details.get("until")},
        )

    def _on_fault_inject(self, e: TraceEvent) -> None:
        self._instant(
            "fault", e.thread, e.time, {"fault": e.details.get("fault")}
        )

    def _on_deadlock(self, e: TraceEvent) -> None:
        self._instant(
            "deadlock", e.thread, e.time,
            {"cycle": e.details.get("cycle")},
        )

    # ------------------------------------------------------------- closing
    def finish(self, now: int) -> list[Span]:
        """Close every still-open span at ``now`` and return the list."""
        for span in self.spans:
            if span.end is None:
                span.end = now
                span.attrs["open"] = True
        return self.spans


def build_spans(events: Iterable[TraceEvent], now: int) -> list[Span]:
    """Post-hoc construction from a stored event list (``vm.tracer.events``)."""
    builder = SpanBuilder()
    for event in events:
        builder(event)
    return builder.finish(now)
