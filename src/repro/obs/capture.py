"""One-call capture: run a scenario, return the full artifact bundle.

:func:`capture_run` builds a traced (and, by default, profiled) VM for
any registered scenario, attaches the online :class:`SpanBuilder` sink
and the counter-track sampler, runs to quiescence, and packages every
artifact — the ``repro.obs/1`` span JSONL, the Chrome trace JSON, the
folded flamegraph stacks, the profile tables and a one-screen summary —
into one plain, picklable dict.

:func:`execute_obs_spec` / :func:`obs_spec_key` adapt the capture to the
:class:`repro.bench.parallel.RunEngine`, so CLI invocations fan out
across workers and land in the content-addressed on-disk cache exactly
like benchmark runs do (keyed by the spec plus the source digest).

Determinism: sync-block ids are per-assembler and section ids are per-VM
state (no process-global build counters survive anywhere), so artifacts
are byte-identical whether a capture runs first or fifth in a process,
serially or in a worker pool, fresh or from cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import (
    DeadlockError,
    StarvationError,
    UncaughtGuestException,
)
from repro.obs.export import (
    chrome_trace_bytes,
    folded_stacks,
    spans_jsonl_bytes,
)
from repro.obs.scenarios import get_scenario
from repro.obs.spans import SpanBuilder
from repro.server.report import robustness_block
from repro.vm.threads import ThreadState
from repro.vm.vmcore import JVM, VMOptions

#: artifact-bundle schema version
CAPTURE_FORMAT = "repro.obs.capture/1"

#: capture runs are bounded: a scenario that spins past this raises
#: StarvationError and the capture reports outcome="starvation"
CAPTURE_CYCLE_CAP = 200_000_000

#: counter tracks keep at most this many samples (dropped count is
#: reported in the summary — no silent truncation)
MAX_COUNTER_SAMPLES = 20_000


@dataclass(frozen=True)
class ObsSpec:
    """Pure, picklable identity of one observability capture."""

    scenario: str
    mode: str = "rollback"
    seed: int = 0x5EED
    interp: str = "fast"
    profile: bool = True
    #: write ratio for the figure-cell scenarios (ignored elsewhere)
    write_pct: int = 60


class _CounterSampler:
    """Per-slice sampler feeding the Chrome counter tracks."""

    def __init__(self) -> None:
        self.ready: list[tuple[int, int]] = []
        self.undo: list[tuple[int, int]] = []
        self.dropped = 0

    def __call__(self, vm: JVM) -> None:
        now = vm.clock.now
        ready_depth = sum(
            1 for t in vm.threads if t.state is ThreadState.READY
        )
        undo_entries = sum(
            len(t.undo_log) for t in vm.threads if t.undo_log is not None
        )
        self._append(self.ready, now, ready_depth)
        self._append(self.undo, now, undo_entries)

    def _append(
        self, samples: list[tuple[int, int]], now: int, value: int
    ) -> None:
        if samples and samples[-1][1] == value:
            return  # run-length suppression: only record changes
        if len(samples) >= MAX_COUNTER_SAMPLES:
            self.dropped += 1
            return
        samples.append((now, value))


def capture_run(spec: ObsSpec) -> dict[str, Any]:
    """Run one scenario and return the complete artifact bundle."""
    scenario = get_scenario(spec.scenario)
    overrides = dict(scenario.options)
    overrides.setdefault("max_cycles", CAPTURE_CYCLE_CAP)
    options = VMOptions(
        mode=spec.mode,
        seed=spec.seed,
        interp=spec.interp,
        trace=True,
        profile=spec.profile,
        **overrides,
    )
    vm = JVM(options)
    builder = SpanBuilder()
    vm.tracer.add_sink(builder)
    sampler = _CounterSampler()
    vm.slice_hooks.append(sampler)
    scenario.install(vm, spec.seed, spec.write_pct)
    outcome = "completed"
    try:
        vm.run()
    except DeadlockError:
        outcome = "deadlock"
    except StarvationError:
        outcome = "starvation"
    except UncaughtGuestException as exc:
        outcome = f"uncaught:{exc.exc_class}"
    return _package(spec, vm, builder, sampler, outcome)


def _package(
    spec: ObsSpec,
    vm: JVM,
    builder: SpanBuilder,
    sampler: _CounterSampler,
    outcome: str,
) -> dict[str, Any]:
    from repro.obs.episodes import detect_episodes

    spans = builder.finish(vm.clock.now)
    metrics = vm.metrics()
    episodes = detect_episodes(spans)
    # the serialized header deliberately omits `interp`: artifacts are a
    # pure function of (scenario, mode, seed), byte-identical whichever
    # interpreter produced them — the parity tests pin this
    header = {
        "scenario": spec.scenario,
        "mode": spec.mode,
        "seed": spec.seed,
        "outcome": outcome,
        "clock": vm.clock.now,
    }
    profiler = vm.profiler
    counters = {
        "ready_queue": sampler.ready,
        "undo_log": sampler.undo,
    }
    chrome = chrome_trace_bytes(
        spans,
        thread_names=[t.name for t in vm.threads],
        clock_now=vm.clock.now,
        profiler=profiler,
        counters=counters,
        meta=dict(header),
        episodes=episodes,
    )
    spans_by_kind: dict[str, int] = {}
    for span in spans:
        spans_by_kind[span.kind] = spans_by_kind.get(span.kind, 0) + 1
    profile_data: Optional[dict] = None
    folded = ""
    if profiler is not None:
        profile_data = profiler.snapshot()
        folded = folded_stacks(profiler)
    summary = {
        **header,
        "interp": spec.interp,
        "threads": len(vm.threads),
        "spans": len(spans),
        "spans_by_kind": dict(sorted(spans_by_kind.items())),
        "trace": metrics["trace"],
        "counter_samples_dropped": sampler.dropped,
        "episodes": len(episodes),
        "inversion_cycles": sum(e["cycles"] for e in episodes),
        "revocations": metrics.get("support", {}).get(
            "revocations_completed", 0
        ),
        "robustness": robustness_block(metrics),
        "context_switches": metrics["context_switches"],
        "cycles_by_track": (
            profile_data["tracks"] if profile_data is not None else None
        ),
    }
    return {
        "format": CAPTURE_FORMAT,
        **header,
        "spans_jsonl": spans_jsonl_bytes(spans, header).decode("utf-8"),
        "chrome_json": chrome.decode("utf-8"),
        "folded": folded,
        "profile": profile_data,
        "metrics": metrics,
        "summary": summary,
    }


def build_replay_vm(
    payload: dict[str, Any], mode: Optional[str] = None
) -> tuple[ObsSpec, JVM, SpanBuilder, _CounterSampler]:
    """The traced/profiled VM for a ``repro.check`` counterexample
    replay, decision hook armed with the minimized choice prefix.
    Shared by :func:`capture_replay` and the time-travel debugger's
    :func:`repro.obs.debug.record_replay`."""
    from repro.check.explorer import (
        CHECK_CYCLE_CAP,
        CHECK_VM_SEED,
        ScheduleController,
        _inject_plan,
    )
    from repro.check.scenarios import get_scenario as get_check_scenario
    from repro.vm.clock import CostModel

    mode = mode or payload["modes"][0]
    scenario = get_check_scenario(payload["scenario"])
    options = VMOptions(
        mode=mode,
        seed=CHECK_VM_SEED,
        cost_model=CostModel(quantum=1),
        max_cycles=CHECK_CYCLE_CAP,
        faults=_inject_plan(payload.get("inject")),
        trace=True,
        profile=True,
        **scenario.options,
    )
    vm = JVM(options)
    builder = SpanBuilder()
    vm.tracer.add_sink(builder)
    sampler = _CounterSampler()
    vm.slice_hooks.append(sampler)
    scenario.build().install(vm)
    vm.scheduler.decision_hook = ScheduleController(
        tuple(payload["minimized_schedule"])
    )
    spec = ObsSpec(
        scenario=f"replay:{payload['scenario']}",
        mode=mode,
        seed=CHECK_VM_SEED,
    )
    return spec, vm, builder, sampler


def capture_replay(
    payload: dict[str, Any], mode: Optional[str] = None
) -> dict[str, Any]:
    """Replay a ``repro.check`` counterexample into a full artifact
    bundle (trace + spans + profile).

    Mirrors :func:`repro.check.explorer.run_schedule` — one-cycle
    quantum, fixed check seed, the minimized choice prefix driving the
    scheduler's decision hook — but with tracing and profiling on, so a
    divergence found by the checker opens in Perfetto.  ``mode``
    defaults to the counterexample's reference policy.
    """
    spec, vm, builder, sampler = build_replay_vm(payload, mode)
    outcome = "completed"
    try:
        vm.run()
    except DeadlockError:
        outcome = "deadlock"
    except StarvationError:
        outcome = "starvation"
    except UncaughtGuestException as exc:
        outcome = f"uncaught:{exc.exc_class}"
    return _package(spec, vm, builder, sampler, outcome)


# ------------------------------------------------------- RunEngine adapter
def execute_obs_spec(spec: ObsSpec) -> dict[str, Any]:
    """Worker-side entry point for :meth:`RunEngine.map`."""
    return capture_run(spec)


def obs_spec_key(spec: ObsSpec) -> str:
    """Content address of one capture (identity + source digest)."""
    from repro.bench.parallel import cache_key, source_digest

    return cache_key("obs-capture", spec, source_digest())


def capture_with_engine(spec: ObsSpec, engine=None) -> dict[str, Any]:
    """Capture through a RunEngine (fan-out + on-disk artifact cache)."""
    if engine is None:
        from repro.bench.parallel import RunEngine

        engine = RunEngine.from_env()
    return engine.map(execute_obs_spec, [spec], key_fn=obs_spec_key)[0]
