"""Deterministic observability plane.

Layered on the three seams the VM already exposes — the :class:`Tracer`
sink list, the :class:`VirtualClock` advance path, and the
:class:`RuntimeSupport` hook set — this package turns a run into
analyzable artifacts without perturbing it:

* :mod:`repro.obs.spans` — folds the raw trace-event stream into typed,
  causally-linked spans (sections, blocking, waits, revocation chains,
  degradations, fault windows) with exact virtual-cycle durations;
* :mod:`repro.obs.profile` — the virtual-cycle profiler: per-track /
  per-category / per-method cycle attribution whose totals equal the
  final virtual clock *exactly*, plus folded-stack flamegraph data;
* :mod:`repro.obs.export` — byte-stable exporters: the versioned
  ``repro.obs/1`` JSONL span schema, Chrome trace-event JSON
  (Perfetto / chrome://tracing), and folded-stack text;
* :mod:`repro.obs.capture` — one-call capture of any registered
  scenario into the full artifact bundle, cacheable through the
  :class:`repro.bench.parallel.RunEngine`;
* ``python -m repro.obs`` — ``spans`` / ``profile`` / ``export`` /
  ``summary`` subcommands over any scenario, figure cell or workload.

Everything here is deterministic: the same scenario + seed produces
byte-identical artifacts on every interpreter, worker count and cache
state — the property that makes traces diffable across commits.
"""

from repro.obs.capture import ObsSpec, capture_run, execute_obs_spec, obs_spec_key
from repro.obs.export import (
    chrome_trace_bytes,
    folded_stacks,
    spans_jsonl_bytes,
)
from repro.obs.profile import CycleProfiler
from repro.obs.spans import Span, SpanBuilder, build_spans

__all__ = [
    "CycleProfiler",
    "ObsSpec",
    "Span",
    "SpanBuilder",
    "build_spans",
    "capture_run",
    "chrome_trace_bytes",
    "execute_obs_spec",
    "folded_stacks",
    "obs_spec_key",
    "spans_jsonl_bytes",
]
