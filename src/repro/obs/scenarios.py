"""The observability scenario registry.

One name space for everything ``python -m repro.obs`` can run: the
figure cells (``fig5a`` .. ``fig8c``, the paper's §4 micro-benchmark at
each panel's thread mix), the schedule-checker scenarios (``handoff``,
``barge``, ``racy-yield``, ``lock-order``), the standalone workloads
(``deadlock-pair``, ``medium-inversion``, ``bank``, ``bounded-buffer``,
``philosophers``) and the server-plane captures (``server-smoke``,
``server-storm``).

Each entry knows how to *install* itself into a freshly-built VM and
which :class:`VMOptions` overrides it requires; the capture layer owns
VM construction so tracing/profiling wiring is uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vmcore import JVM


@dataclass(frozen=True)
class ObsScenario:
    """One runnable target: a description, VMOptions overrides, and an
    installer called with the constructed VM."""

    name: str
    description: str
    #: VMOptions keyword overrides this scenario requires
    options: dict
    #: install(vm, seed, write_pct): load classes + spawn threads
    install: Callable[["JVM", int, int], None]


def _fig_installer(figure: int, panel: str):
    def install(vm: "JVM", seed: int, write_pct: int) -> None:
        from repro.bench.figures import FigurePanel
        from repro.bench.microbench import setup_microbench_vm

        config = FigurePanel(figure, panel).base_config(seed)
        config = replace(config, write_pct=write_pct)
        setup_microbench_vm(vm, config)

    return install


def _check_installer(name: str):
    def install(vm: "JVM", seed: int, write_pct: int) -> None:
        from repro.check.scenarios import get_scenario

        get_scenario(name).build().install(vm)

    return install


def _server_installer(preset: str):
    def install(vm: "JVM", seed: int, write_pct: int) -> None:
        from repro.server.plane import AbortStormDetector
        from repro.server.presets import get_preset
        from repro.server.workload import build_server

        config = get_preset(preset)
        build_server(config, seed).install(vm)
        vm.slice_hooks.append(AbortStormDetector(config))

    return install


def _server_scenarios() -> dict[str, ObsScenario]:
    """Server-plane captures: thread names carry the SLA-tier prefix, so
    per-tier behaviour reads straight off the span tracks; the abort-storm
    detector is attached, so ``abort_storm`` / ``storm_cleared`` (and the
    ladder's ``degrade``) events land in the trace."""
    from repro.server.plane import CHAOS_PLAN

    return {
        "server-smoke": ObsScenario(
            name="server-smoke",
            description=(
                "server plane: chaos-smoke preset, overload protection "
                "on, faults off"
            ),
            options={"scheduler": "priority", "raise_on_uncaught": False},
            install=_server_installer("chaos-smoke"),
        ),
        "server-fleet": ObsScenario(
            name="server-fleet",
            description=(
                "server plane: the 12-tier, 1020-guest-thread fleet "
                "preset — the downsampling stress shape"
            ),
            options={"scheduler": "priority", "raise_on_uncaught": False},
            install=_server_installer("fleet"),
        ),
        "server-storm": ObsScenario(
            name="server-storm",
            description=(
                "server plane: storm preset under the chaos fault plan — "
                "abort-storm -> ladder escalation -> recovery in-trace"
            ),
            options={
                "scheduler": "priority",
                "raise_on_uncaught": False,
                "faults": CHAOS_PLAN,
                "audit_rollbacks": True,
            },
            install=_server_installer("storm"),
        ),
    }


def _workload_installer(build: Callable):
    def install(vm: "JVM", seed: int, write_pct: int) -> None:
        build().install(vm)

    return install


def _workload_builders() -> dict[str, tuple[str, Callable]]:
    from repro.bench.workloads import (
        build_bank,
        build_bounded_buffer,
        build_deadlock_pair,
        build_medium_inversion,
        build_philosophers,
    )

    return {
        "deadlock-pair": (
            "two threads acquiring two locks in opposite orders",
            lambda: build_deadlock_pair(hold_cycles=800, work=20),
            {},
        ),
        "medium-inversion": (
            "the paper's three-priority inversion shape",
            lambda: build_medium_inversion(
                medium_threads=2, low_section_iters=300,
                medium_work_iters=500, high_section_iters=60,
            ),
            # The §1 inversion only manifests under strict priority
            # scheduling: the woken mediums must starve the low-priority
            # lock holder while the high-priority thread sits blocked.
            {"scheduler": "priority"},
        ),
        "bank": (
            "random transfers between locked accounts",
            lambda: build_bank(accounts=4, transfers=10, hold_cycles=120),
            {},
        ),
        "bounded-buffer": (
            "producers/consumers on a wait/notify bounded buffer",
            lambda: build_bounded_buffer(
                capacity=2, items_per_producer=6, producers=2, consumers=2
            ),
            {},
        ),
        "philosophers": (
            "dining philosophers over shared fork monitors",
            lambda: build_philosophers(
                3, rounds=3, think_cycles=300, eat_iters=15
            ),
            {},
        ),
    }


def scenarios() -> dict[str, ObsScenario]:
    """Name -> scenario, rebuilt per call (cheap; avoids import cycles)."""
    out: dict[str, ObsScenario] = {}
    for figure in (5, 6, 7, 8):
        for panel in ("a", "b", "c"):
            name = f"fig{figure}{panel}"
            out[name] = ObsScenario(
                name=name,
                description=(
                    f"figure {figure}({panel}) micro-benchmark cell "
                    "(write ratio via --write-pct)"
                ),
                options={},
                install=_fig_installer(figure, panel),
            )
    from repro.check.scenarios import scenarios as check_scenarios

    for name, scenario in check_scenarios().items():
        out[name] = ObsScenario(
            name=name,
            description=f"checker scenario: {scenario.description}",
            options=dict(scenario.options),
            install=_check_installer(name),
        )
    for name, (description, build, options) in _workload_builders().items():
        out[name] = ObsScenario(
            name=name,
            description=f"workload: {description}",
            options=dict(options),
            install=_workload_installer(build),
        )
    out.update(_server_scenarios())
    return out


def get_scenario(name: str) -> ObsScenario:
    table = scenarios()
    try:
        return table[name]
    except KeyError:
        known = ", ".join(sorted(table))
        raise KeyError(
            f"unknown obs scenario {name!r}; known: {known}"
        ) from None
