"""Byte-stable artifact exporters.

Three formats, all deterministic — identical runs produce *byte-identical*
files, so observability artifacts can be diffed across commits, cached by
content, and asserted on in tests:

``repro.obs/1`` JSONL (:func:`spans_jsonl_bytes`)
    One JSON object per line: a header line identifying the run, then
    every span in ``sid`` order with a fixed field order
    (``sid, kind, thread, start, end, parent, attrs``).

Chrome trace-event JSON (:func:`chrome_trace_bytes`)
    Loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
    One track per VM thread (plus the ``"(vm)"`` pseudo-track), ``X``
    duration events for interval spans, ``i`` instant events for point
    spans, and ``C`` counter tracks for ready-queue depth and undo-log
    size.  Virtual cycles map 1:1 onto the format's microsecond
    timestamps.  When a profiler is attached, ``otherData`` carries the
    exact per-track cycle attribution (summing to the final clock).

Folded stacks (:func:`folded_stacks`)
    ``thread;caller;...;callee cycles`` lines, the flamegraph.pl /
    speedscope interchange format.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.profile import CycleProfiler
    from repro.obs.spans import Span

#: schema identifier stamped into the JSONL header line
SPAN_FORMAT = "repro.obs/1"


def _dumps(obj) -> str:
    """Canonical single-line JSON: compact separators, insertion order."""
    return json.dumps(obj, separators=(",", ":"))


# --------------------------------------------------------------- JSONL spans
def spans_jsonl_bytes(
    spans: Iterable["Span"], header: Optional[dict] = None
) -> bytes:
    """Serialize spans as ``repro.obs/1`` JSONL (header line + one
    span per line, stable field order)."""
    head = {"format": SPAN_FORMAT}
    if header:
        head.update(header)
    lines = [_dumps(head)]
    lines.extend(_dumps(span.as_dict()) for span in spans)
    return ("\n".join(lines) + "\n").encode("utf-8")


# ----------------------------------------------------------- chrome tracing
def chrome_trace_bytes(
    spans: Iterable["Span"],
    *,
    thread_names: list[str],
    clock_now: int,
    profiler: Optional["CycleProfiler"] = None,
    counters: Optional[dict[str, list[tuple[int, int]]]] = None,
    meta: Optional[dict] = None,
    episodes: Optional[list[dict]] = None,
) -> bytes:
    """Serialize a run as Chrome trace-event JSON.

    ``thread_names`` fixes the track order (spawn order); the ``"(vm)"``
    pseudo-track is always tid 0.  ``counters`` maps a counter-track name
    to ``(time, value)`` samples.  One virtual cycle = one microsecond of
    trace time, so Perfetto's duration readouts are cycle counts.
    ``episodes`` (records from :mod:`repro.obs.episodes`) render as an
    async-track overlay: each priority-inversion episode is a ``b``/``e``
    pair spanning blocker and holder, so inversions read as one lane
    above the per-thread tracks.
    """
    pid = 1
    tids: dict[str, int] = {"(vm)": 0}
    for name in thread_names:
        tids.setdefault(name, len(tids))

    events: list[dict] = [
        {
            "ph": "M", "pid": pid, "name": "process_name",
            "args": {"name": "repro-vm (virtual cycles)"},
        }
    ]
    for name, tid in tids.items():
        events.append(
            {
                "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": name},
            }
        )
        events.append(
            {
                "ph": "M", "pid": pid, "tid": tid,
                "name": "thread_sort_index", "args": {"sort_index": tid},
            }
        )

    for span in spans:
        track = span.thread if span.thread is not None else "(vm)"
        tid = tids.get(track)
        if tid is None:  # a thread that never hit the spawn event
            tid = tids[track] = len(tids)
            events.append(
                {
                    "ph": "M", "pid": pid, "tid": tid,
                    "name": "thread_name", "args": {"name": track},
                }
            )
        end = span.end if span.end is not None else span.start
        args = {"sid": span.sid, "parent": span.parent}
        args.update(span.attrs)
        if end > span.start:
            events.append(
                {
                    "ph": "X", "pid": pid, "tid": tid, "ts": span.start,
                    "dur": end - span.start, "name": span.kind,
                    "cat": span.kind, "args": args,
                }
            )
        else:
            events.append(
                {
                    "ph": "i", "pid": pid, "tid": tid, "ts": span.start,
                    "s": "t", "name": span.kind, "cat": span.kind,
                    "args": args,
                }
            )

    if episodes:
        for ep in episodes:
            name = f"inversion {ep['mon']}"
            args = {
                "index": ep["index"],
                "blocked": ep["thread"],
                "holder": ep["holder"],
                "priority": ep["priority"],
                "holder_priority": ep["holder_priority"],
                "resolution": ep["resolution"],
                "cycles": ep["cycles"],
                "tier": ep["tier"],
            }
            common = {
                "pid": pid, "cat": "inversion", "name": name,
                "id": ep["index"],
            }
            events.append(
                {"ph": "b", "ts": ep["start"], "args": args, **common}
            )
            events.append(
                {"ph": "e", "ts": ep["end"], "args": {}, **common}
            )

    if counters:
        for counter_name, samples in counters.items():
            for ts, value in samples:
                events.append(
                    {
                        "ph": "C", "pid": pid, "ts": ts,
                        "name": counter_name,
                        "args": {"value": value},
                    }
                )

    other: dict = {"clock": clock_now}
    if meta:
        other.update(meta)
    if profiler is not None:
        by_track = {
            track: dict(sorted(cats.items()))
            for track, cats in sorted(profiler.tracks.items())
        }
        other["cycles_by_track"] = by_track
        other["cycles_total"] = profiler.total_cycles()

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    return (_dumps(doc) + "\n").encode("utf-8")


# ------------------------------------------------------------ folded stacks
def folded_stacks(profiler: "CycleProfiler") -> str:
    """Flamegraph interchange text: ``thread;stack;frames cycles``."""
    lines = [
        f"{track};{folded} {cycles}"
        for (track, folded), cycles in sorted(profiler.stacks.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------- text rendering
def render_profile_dict(
    profile: dict, clock: int, top: int = 20
) -> str:
    """Format the ``profile`` dict of a capture artifact as the top-N
    cycle table plus the per-track footer (which sums to ``clock``)."""
    rows = profile["methods"][:top]
    header = (
        f"{'thread':<14} {'method':<28} {'cycles':>12} {'insns':>10} "
        f"{'work':>12} {'barrier':>9} {'undo_log':>9} {'monitor':>9} "
        f"{'rollback':>9}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['thread']:<14} {r['method']:<28} {r['cycles']:>12} "
            f"{r['insns']:>10} {r['work']:>12} {r['barrier']:>9} "
            f"{r['undo_log']:>9} {r['monitor']:>9} {r['rollback']:>9}"
        )
    lines.append("-" * len(header))
    lines.append("cycles by track:")
    for track, cats in profile["tracks"].items():
        detail = ", ".join(f"{k}={v}" for k, v in cats.items())
        lines.append(
            f"  {track:<14} {sum(cats.values()):>12}  ({detail})"
        )
    lines.append(
        f"  {'total':<14} {profile['total']:>12}  (final clock {clock})"
    )
    return "\n".join(lines)


def render_profile(profiler: "CycleProfiler", top: int = 20) -> str:
    """The top-N cycle table: work vs. barrier vs. undo-log vs. monitor
    vs. rollback cycles, per method."""
    rows = profiler.method_table(top=top)
    header = (
        f"{'thread':<14} {'method':<28} {'cycles':>12} {'insns':>10} "
        f"{'work':>12} {'barrier':>9} {'undo_log':>9} {'monitor':>9} "
        f"{'rollback':>9}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['thread']:<14} {r['method']:<28} {r['cycles']:>12} "
            f"{r['insns']:>10} {r['work']:>12} {r['barrier']:>9} "
            f"{r['undo_log']:>9} {r['monitor']:>9} {r['rollback']:>9}"
        )
    lines.append("-" * len(header))
    lines.append("cycles by track:")
    for track, total in profiler.track_totals().items():
        cats = ", ".join(
            f"{cat}={cycles}"
            for cat, cycles in sorted(profiler.tracks[track].items())
        )
        lines.append(f"  {track:<14} {total:>12}  ({cats})")
    lines.append(
        f"  {'total':<14} {profiler.total_cycles():>12}  "
        "(== final virtual clock)"
    )
    return "\n".join(lines)


def site_table(spans: Iterable["Span"]) -> list[dict]:
    """Per-site abort/commit statistics, derived purely from the span
    stream (so the table is cacheable and fleet-shippable with the
    artifact).  A *site* is a synchronization target — the monitor a
    section guards; rows aggregate every dynamic execution against it:
    commits, rollbacks (aborts), abandons/leaks, cycles spent holding,
    cycles other threads spent blocked on it, and the contender set
    size.  Sorted by blocked cycles (the pain), then held cycles."""
    stats: dict[str, dict] = {}

    def row(mon) -> dict:
        key = str(mon)
        if key not in stats:
            stats[key] = {
                "site": key, "sections": 0, "commit": 0, "rollback": 0,
                "abandoned": 0, "leaked": 0, "held_cycles": 0,
                "blocked_cycles": 0, "contenders": set(),
            }
        return stats[key]

    for s in spans:
        if s.kind == "section":
            r = row(s.attrs.get("mon"))
            r["sections"] += 1
            outcome = s.attrs.get("outcome")
            if outcome in ("commit", "rollback", "abandoned", "leaked"):
                r[outcome] += 1
            if s.end is not None:
                r["held_cycles"] += s.end - s.start
        elif s.kind == "blocked":
            r = row(s.attrs.get("mon"))
            if s.end is not None:
                r["blocked_cycles"] += s.end - s.start
            r["contenders"].add(s.thread)
    out = []
    for r in stats.values():
        r["contenders"] = len(r["contenders"])
        attempts = r["commit"] + r["rollback"]
        r["abort_pct"] = (
            round(100.0 * r["rollback"] / attempts, 1) if attempts else 0.0
        )
        out.append(r)
    out.sort(
        key=lambda r: (-r["blocked_cycles"], -r["held_cycles"], r["site"])
    )
    return out


def render_sites(rows: list[dict]) -> str:
    """Text table for :func:`site_table`."""
    header = (
        f"{'site':<26} {'sections':>8} {'commit':>7} {'abort':>6} "
        f"{'abort%':>7} {'abandon':>8} {'leak':>5} {'held-cycles':>12} "
        f"{'blocked-cycles':>15} {'contenders':>11}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['site']:<26} {r['sections']:>8} {r['commit']:>7} "
            f"{r['rollback']:>6} {r['abort_pct']:>7} {r['abandoned']:>8} "
            f"{r['leaked']:>5} {r['held_cycles']:>12} "
            f"{r['blocked_cycles']:>15} {r['contenders']:>11}"
        )
    if not rows:
        lines.append("(no synchronized sections in this run)")
    return "\n".join(lines)


def render_spans(spans: Iterable["Span"], limit: int = 0) -> str:
    """Human-readable span listing (indented by parent depth)."""
    spans = list(spans)
    depth: dict[int, int] = {}
    by_sid = {s.sid: s for s in spans}
    for s in spans:
        d = 0
        p = s.parent
        while p is not None and p in by_sid:
            d += 1
            p = by_sid[p].parent
        depth[s.sid] = d
    lines = []
    shown = spans[:limit] if limit else spans
    for s in shown:
        indent = "  " * depth[s.sid]
        dur = "?" if s.duration is None else str(s.duration)
        attrs = " ".join(f"{k}={v}" for k, v in s.attrs.items())
        thread = s.thread if s.thread is not None else "(vm)"
        lines.append(
            f"[{s.start:>10} +{dur:>9}] {thread:<14} "
            f"{indent}{s.kind} {attrs}".rstrip()
        )
    if limit and len(spans) > limit:
        lines.append(f"... ({len(spans) - limit} more spans)")
    return "\n".join(lines)
