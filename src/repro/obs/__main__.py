"""Command-line observability: ``python -m repro.obs``.

Examples::

    python -m repro.obs --list                         # scenario names
    python -m repro.obs spans   --scenario handoff
    python -m repro.obs profile --scenario fig6b --top 15
    python -m repro.obs export  --scenario fig5a --fmt chrome -o t.json
    python -m repro.obs export  --scenario fig6b --fmt folded -o t.folded
    python -m repro.obs summary --scenario medium-inversion

Every subcommand runs its scenario through the same capture pipeline
(:mod:`repro.obs.capture`), fanned through the bench
:class:`~repro.bench.parallel.RunEngine` — captures are cached on disk
by content address, so re-rendering a different view of the same run is
a cache hit, not a re-execution.  Stdout is a pure function of the
arguments; engine statistics go to stderr.

Exported Chrome traces open directly in https://ui.perfetto.dev or
chrome://tracing; virtual cycles appear as microseconds.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.capture import ObsSpec, capture_with_engine
from repro.obs.scenarios import scenarios


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="deterministic observability: spans, cycle profiles "
                    "and Perfetto-openable trace exports",
    )
    parser.add_argument(
        "command", nargs="?", default=None,
        choices=["spans", "profile", "export", "summary"],
        help="what to render from the captured run",
    )
    parser.add_argument(
        "--scenario", default=None,
        help="scenario / figure cell / workload name (see --list)",
    )
    parser.add_argument(
        "--mode", default="rollback",
        choices=["unmodified", "rollback", "inheritance", "ceiling"],
        help="VM policy mode (default rollback)",
    )
    parser.add_argument("--seed", type=int, default=0x5EED)
    parser.add_argument(
        "--interp", default="fast", choices=["fast", "reference"],
        help="interpreter engine (artifacts are identical either way)",
    )
    parser.add_argument(
        "--write-pct", type=int, default=60,
        help="write ratio for figure-cell scenarios (default 60)",
    )
    parser.add_argument(
        "--no-profile", action="store_true",
        help="skip the cycle profiler (spans/exports only)",
    )
    parser.add_argument(
        "--fmt", default="chrome", choices=["chrome", "jsonl", "folded"],
        help="export format (export subcommand; default chrome)",
    )
    parser.add_argument(
        "-o", "--out", default=None, metavar="PATH",
        help="output path (export subcommand; default derived)",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="rows in the profile table (default 20)",
    )
    parser.add_argument(
        "--limit", type=int, default=0,
        help="max spans to print (spans subcommand; 0 = all)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print machine-readable JSON instead of tables",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default REPRO_BENCH_JOBS; 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk capture cache for this invocation",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list scenario names and exit",
    )
    return parser


def _engine(args):
    from repro.bench.parallel import RunEngine

    engine = RunEngine.from_env()
    if args.jobs is not None:
        engine = RunEngine(jobs=max(1, args.jobs), cache=engine.cache)
    if args.no_cache:
        engine = RunEngine(jobs=engine.jobs, cache=None)
    return engine


def _cmd_list() -> int:
    for name, scenario in sorted(scenarios().items()):
        print(f"{name}: {scenario.description}")
    return 0


def _warn_truncation(artifact: dict) -> None:
    """A truncated trace silently lies — make it loud."""
    from repro.core.metrics import metrics_health

    for warning in metrics_health(artifact["metrics"]):
        print(
            "=" * 72 + f"\nWARNING: {warning}\n" + "=" * 72,
            file=sys.stderr,
        )
    summary = artifact["summary"]
    if summary.get("counter_samples_dropped"):
        print(
            f"note: {summary['counter_samples_dropped']} counter "
            "sample(s) beyond the per-track budget were dropped.",
            file=sys.stderr,
        )


def _capture(args) -> dict:
    spec = ObsSpec(
        scenario=args.scenario,
        mode=args.mode,
        seed=args.seed,
        interp=args.interp,
        profile=not args.no_profile,
        write_pct=args.write_pct,
    )
    engine = _engine(args)
    artifact = capture_with_engine(spec, engine=engine)
    print(engine.stats.render(), file=sys.stderr)
    _warn_truncation(artifact)
    return artifact


def _cmd_spans(args, artifact: dict) -> int:
    if args.json:
        sys.stdout.write(artifact["spans_jsonl"])
        return 0
    from repro.obs.export import render_spans
    from repro.obs.spans import Span

    spans = [
        Span(**{k: obj[k] for k in
                ("sid", "kind", "thread", "start", "end", "parent",
                 "attrs")})
        for obj in map(json.loads,
                       artifact["spans_jsonl"].splitlines()[1:])
    ]
    print(render_spans(spans, limit=args.limit))
    return 0


def _cmd_profile(args, artifact: dict) -> int:
    profile = artifact["profile"]
    if profile is None:
        print("profile disabled (--no-profile); nothing to show",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(profile, indent=2))
        return 0
    from repro.obs.export import render_profile_dict

    print(render_profile_dict(profile, artifact["clock"], top=args.top))
    return 0


def _cmd_export(args, artifact: dict) -> int:
    fmt = args.fmt
    content = {
        "chrome": artifact["chrome_json"],
        "jsonl": artifact["spans_jsonl"],
        "folded": artifact["folded"],
    }[fmt]
    if fmt == "folded" and not content:
        print("no folded stacks: run without --no-profile",
              file=sys.stderr)
        return 1
    suffix = {"chrome": "trace.json", "jsonl": "spans.jsonl",
              "folded": "folded"}[fmt]
    out = args.out or f"{args.scenario}-{args.mode}.{suffix}"
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(content)
    print(f"{fmt} artifact written to {out}", file=sys.stderr)
    if fmt == "chrome":
        print(
            "open it at https://ui.perfetto.dev (or chrome://tracing); "
            "virtual cycles display as microseconds",
            file=sys.stderr,
        )
    print(out)
    return 0


def _cmd_summary(args, artifact: dict) -> int:
    summary = artifact["summary"]
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"scenario {summary['scenario']} mode={summary['mode']} "
          f"interp={summary['interp']} seed={summary['seed']}")
    print(f"outcome {summary['outcome']} after {summary['clock']} "
          f"virtual cycles, {summary['threads']} threads, "
          f"{summary['context_switches']} context switches, "
          f"{summary['revocations']} revocations")
    robustness = summary["robustness"]
    print("robustness: "
          + " ".join(f"{k}={robustness[k]}" for k in sorted(robustness)))
    kinds = ", ".join(
        f"{kind}={count}"
        for kind, count in summary["spans_by_kind"].items()
    )
    print(f"spans: {summary['spans']} ({kinds})")
    trace = summary["trace"]
    print(f"trace: {trace['events']} events, {trace['dropped']} dropped, "
          f"{trace['sink_errors']} sink errors")
    if summary["cycles_by_track"] is not None:
        print("cycles by track:")
        for track, cats in summary["cycles_by_track"].items():
            detail = ", ".join(f"{k}={v}" for k, v in cats.items())
            print(f"  {track:<14} {sum(cats.values()):>12}  ({detail})")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        return _cmd_list()
    if args.command is None:
        _parser().error("a subcommand (spans/profile/export/summary) "
                        "or --list is required")
    if args.scenario is None:
        _parser().error("--scenario is required")
    artifact = _capture(args)
    return {
        "spans": _cmd_spans,
        "profile": _cmd_profile,
        "export": _cmd_export,
        "summary": _cmd_summary,
    }[args.command](args, artifact)


if __name__ == "__main__":
    raise SystemExit(main())
