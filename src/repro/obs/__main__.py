"""Command-line observability: ``python -m repro.obs``.

Examples::

    python -m repro.obs --list                         # scenario names
    python -m repro.obs spans   --scenario handoff
    python -m repro.obs profile --scenario fig6b --top 15
    python -m repro.obs profile --scenario server-storm --sites
    python -m repro.obs export  --scenario fig5a --fmt chrome -o t.json
    python -m repro.obs export  --scenario fig6b --fmt folded -o t.folded
    python -m repro.obs summary --scenario medium-inversion
    python -m repro.obs episodes --scenario medium-inversion --compare
    python -m repro.obs debug --scenario server-storm --episode 1 \
        --print-state

Every subcommand runs its scenario through the same capture pipeline
(:mod:`repro.obs.capture`), fanned through the bench
:class:`~repro.bench.parallel.RunEngine` — captures are cached on disk
by content address, so re-rendering a different view of the same run is
a cache hit, not a re-execution.  ``--fleet local:N`` / ``coordinator``
/ ``worker`` route the same work over the distributed run fleet; every
artifact (episodes reports, checkpoint streams) is byte-identical
whichever engine produced it.  Stdout is a pure function of the
arguments; engine statistics go to stderr.

Exported Chrome traces open directly in https://ui.perfetto.dev or
chrome://tracing; virtual cycles appear as microseconds — and
priority-inversion episodes appear as an async ``inversion`` overlay
above the thread tracks.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.capture import ObsSpec, capture_with_engine
from repro.obs.scenarios import scenarios


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="deterministic observability: spans, cycle profiles "
                    "and Perfetto-openable trace exports",
    )
    parser.add_argument(
        "command", nargs="?", default=None,
        choices=["spans", "profile", "export", "summary", "episodes",
                 "debug"],
        help="what to render from the captured run",
    )
    parser.add_argument(
        "--scenario", default=None,
        help="scenario / figure cell / workload name (see --list)",
    )
    parser.add_argument(
        "--mode", default="rollback",
        choices=["unmodified", "rollback", "inheritance", "ceiling"],
        help="VM policy mode (default rollback)",
    )
    parser.add_argument("--seed", type=int, default=0x5EED)
    parser.add_argument(
        "--interp", default="fast", choices=["fast", "reference"],
        help="interpreter engine (artifacts are identical either way)",
    )
    parser.add_argument(
        "--write-pct", type=int, default=60,
        help="write ratio for figure-cell scenarios (default 60)",
    )
    parser.add_argument(
        "--no-profile", action="store_true",
        help="skip the cycle profiler (spans/exports only)",
    )
    parser.add_argument(
        "--fmt", default="chrome", choices=["chrome", "jsonl", "folded"],
        help="export format (export subcommand; default chrome)",
    )
    parser.add_argument(
        "-o", "--out", default=None, metavar="PATH",
        help="output path (export subcommand; default derived)",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="rows in the profile table (default 20)",
    )
    parser.add_argument(
        "--limit", type=int, default=0,
        help="max spans to print (spans subcommand; 0 = all)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print machine-readable JSON instead of tables",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default REPRO_BENCH_JOBS; 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk capture cache for this invocation",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list scenario names and exit",
    )
    parser.add_argument(
        "--sites", action="store_true",
        help="per-site abort/commit statistics table "
             "(profile subcommand)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="episodes subcommand: run all three policies and print the "
             "per-policy inversion table",
    )
    parser.add_argument(
        "--seek", type=int, default=None, metavar="CYCLE",
        help="debug subcommand: position at virtual cycle CYCLE",
    )
    parser.add_argument(
        "--episode", type=int, default=None, metavar="N",
        help="debug subcommand: position at the start of "
             "priority-inversion episode N (1-based)",
    )
    parser.add_argument(
        "--print-state", action="store_true",
        help="debug subcommand: print the inspector state and exit "
             "(headless; no REPL)",
    )
    parser.add_argument(
        "--interval", type=int, default=None, metavar="SLICES",
        help="debug subcommand: scheduler slices between checkpoints",
    )
    from repro.fleet.cli import add_fleet_args

    add_fleet_args(parser)
    return parser


def _engine(args):
    from repro.bench.parallel import RunEngine
    from repro.fleet.cli import resolve_fleet_engine

    engine = RunEngine.from_env()
    if args.jobs is not None:
        engine = RunEngine(jobs=max(1, args.jobs), cache=engine.cache)
    if args.no_cache:
        engine = RunEngine(jobs=engine.jobs, cache=None)
    fleet = resolve_fleet_engine(args, engine.cache)
    return fleet if fleet is not None else engine


def _cmd_list() -> int:
    for name, scenario in sorted(scenarios().items()):
        print(f"{name}: {scenario.description}")
    return 0


def _warn_truncation(artifact: dict) -> None:
    """A truncated trace silently lies — make it loud."""
    from repro.core.metrics import metrics_health

    for warning in metrics_health(artifact["metrics"]):
        print(
            "=" * 72 + f"\nWARNING: {warning}\n" + "=" * 72,
            file=sys.stderr,
        )
    summary = artifact["summary"]
    if summary.get("counter_samples_dropped"):
        print(
            f"note: {summary['counter_samples_dropped']} counter "
            "sample(s) beyond the per-track budget were dropped.",
            file=sys.stderr,
        )


def _capture(args) -> dict:
    spec = ObsSpec(
        scenario=args.scenario,
        mode=args.mode,
        seed=args.seed,
        interp=args.interp,
        profile=not args.no_profile,
        write_pct=args.write_pct,
    )
    engine = _engine(args)
    artifact = capture_with_engine(spec, engine=engine)
    print(engine.stats.render(), file=sys.stderr)
    _warn_truncation(artifact)
    return artifact


def _cmd_spans(args, artifact: dict) -> int:
    if args.json:
        sys.stdout.write(artifact["spans_jsonl"])
        return 0
    from repro.obs.export import render_spans
    from repro.obs.spans import Span

    spans = [
        Span(**{k: obj[k] for k in
                ("sid", "kind", "thread", "start", "end", "parent",
                 "attrs")})
        for obj in map(json.loads,
                       artifact["spans_jsonl"].splitlines()[1:])
    ]
    print(render_spans(spans, limit=args.limit))
    return 0


def _cmd_profile(args, artifact: dict) -> int:
    if args.sites:
        return _cmd_profile_sites(args, artifact)
    profile = artifact["profile"]
    if profile is None:
        print("profile disabled (--no-profile); nothing to show",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(profile, indent=2))
        return 0
    from repro.obs.export import render_profile_dict

    print(render_profile_dict(profile, artifact["clock"], top=args.top))
    return 0


def _cmd_profile_sites(args, artifact: dict) -> int:
    from repro.obs.episodes import _spans_from_jsonl
    from repro.obs.export import render_sites, site_table

    rows = site_table(_spans_from_jsonl(artifact["spans_jsonl"]))
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    print(render_sites(rows))
    return 0


def _episode_specs(args) -> list:
    from repro.obs.capture import ObsSpec

    modes = (
        ["unmodified", "rollback", "inheritance"]
        if args.compare else [args.mode]
    )
    return [
        ObsSpec(
            scenario=args.scenario,
            mode=mode,
            seed=args.seed,
            interp=args.interp,
            profile=not args.no_profile,
            write_pct=args.write_pct,
        )
        for mode in modes
    ]


def _cmd_episodes(args) -> int:
    from repro.obs.capture import execute_obs_spec, obs_spec_key
    from repro.obs.episodes import (
        build_report,
        policy_table,
        render_report,
        report_bytes,
    )

    engine = _engine(args)
    specs = _episode_specs(args)
    artifacts = engine.map(execute_obs_spec, specs, key_fn=obs_spec_key)
    print(engine.stats.render(), file=sys.stderr)
    reports = {}
    for spec, artifact in zip(specs, artifacts):
        _warn_truncation(artifact)
        reports[spec.mode] = build_report(artifact)
    if args.compare:
        if args.json:
            doc = {mode: reports[mode] for mode in sorted(reports)}
            sys.stdout.write(json.dumps(doc, sort_keys=True) + "\n")
            return 0
        print(policy_table(reports))
        return 0
    report = reports[args.mode]
    if args.json:
        sys.stdout.buffer.write(report_bytes(report))
        return 0
    print(render_report(report, top=args.top))
    return 0


def _cmd_debug(args) -> int:
    from repro.obs.capture import ObsSpec
    from repro.obs.debug import (
        DEFAULT_INTERVAL,
        DebugSession,
        record_with_engine,
        render_state,
    )

    spec = ObsSpec(
        scenario=args.scenario,
        mode=args.mode,
        seed=args.seed,
        interp=args.interp,
        profile=not args.no_profile,
        write_pct=args.write_pct,
    )
    engine = _engine(args)
    recording = record_with_engine(
        spec, interval=args.interval or DEFAULT_INTERVAL, engine=engine
    )
    print(engine.stats.render(), file=sys.stderr)
    session = DebugSession(recording)
    if args.episode is not None:
        episode = session.seek_episode(args.episode)
        print(
            f"episode {episode['index']}: {episode['thread']} "
            f"(prio {episode['priority']}) blocked on {episode['mon']} "
            f"held by {episode['holder']} "
            f"(prio {episode['holder_priority']}), "
            f"[{episode['start']}, {episode['end']}] "
            f"{episode['cycles']} cycles, "
            f"resolution {episode['resolution']}",
            file=sys.stderr,
        )
    elif args.seek is not None:
        session.seek(args.seek)
    if args.print_state:
        state = session.state()
        if args.json:
            print(json.dumps(state, sort_keys=True))
        else:
            print(render_state(state))
        return 0
    from repro.obs.debug import repl

    return repl(session)


def _cmd_export(args, artifact: dict) -> int:
    fmt = args.fmt
    content = {
        "chrome": artifact["chrome_json"],
        "jsonl": artifact["spans_jsonl"],
        "folded": artifact["folded"],
    }[fmt]
    if fmt == "folded" and not content:
        print("no folded stacks: run without --no-profile",
              file=sys.stderr)
        return 1
    suffix = {"chrome": "trace.json", "jsonl": "spans.jsonl",
              "folded": "folded"}[fmt]
    out = args.out or f"{args.scenario}-{args.mode}.{suffix}"
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(content)
    print(f"{fmt} artifact written to {out}", file=sys.stderr)
    if fmt == "chrome":
        print(
            "open it at https://ui.perfetto.dev (or chrome://tracing); "
            "virtual cycles display as microseconds",
            file=sys.stderr,
        )
    print(out)
    return 0


def _cmd_summary(args, artifact: dict) -> int:
    summary = artifact["summary"]
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"scenario {summary['scenario']} mode={summary['mode']} "
          f"interp={summary['interp']} seed={summary['seed']}")
    print(f"outcome {summary['outcome']} after {summary['clock']} "
          f"virtual cycles, {summary['threads']} threads, "
          f"{summary['context_switches']} context switches, "
          f"{summary['revocations']} revocations")
    robustness = summary["robustness"]
    print("robustness: "
          + " ".join(f"{k}={robustness[k]}" for k in sorted(robustness)))
    kinds = ", ".join(
        f"{kind}={count}"
        for kind, count in summary["spans_by_kind"].items()
    )
    print(f"spans: {summary['spans']} ({kinds})")
    trace = summary["trace"]
    print(f"trace: {trace['events']} events, {trace['dropped']} dropped, "
          f"{trace['sink_errors']} sink errors")
    if summary["cycles_by_track"] is not None:
        print("cycles by track:")
        for track, cats in summary["cycles_by_track"].items():
            detail = ", ".join(f"{k}={v}" for k, v in cats.items())
            print(f"  {track:<14} {sum(cats.values()):>12}  ({detail})")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.fleet == "worker":
        from repro.fleet.cli import run_fleet_worker

        return run_fleet_worker(args)
    if args.list:
        return _cmd_list()
    if args.command is None:
        _parser().error("a subcommand (spans/profile/export/summary/"
                        "episodes/debug) or --list is required")
    if args.scenario is None:
        _parser().error("--scenario is required")
    if args.command == "episodes":
        return _cmd_episodes(args)
    if args.command == "debug":
        return _cmd_debug(args)
    artifact = _capture(args)
    return {
        "spans": _cmd_spans,
        "profile": _cmd_profile,
        "export": _cmd_export,
        "summary": _cmd_summary,
    }[args.command](args, artifact)


if __name__ == "__main__":
    raise SystemExit(main())
