"""Classical priority-inversion avoidance baselines (paper §5).

The paper argues against these protocols (§1: priority ceiling is not
transparent; priority inheritance is non-trivial, transitive, and defeated
by non-inheriting blocking operations) and compares its rollback scheme
against a plain blocking VM.  We implement both protocols anyway, as
runtime supports on the same seam, so the extension benchmarks can put all
four systems side by side:

* ``unmodified`` — blocking monitors (``NullSupport``).
* ``rollback`` — the paper (:class:`~repro.core.revocation.RollbackSupport`).
* ``inheritance`` — transitive priority inheritance (Sha/Rajkumar/Lehoczky).
* ``ceiling`` — priority-ceiling emulation: a thread holding a lock runs at
  the lock's ceiling (the highest priority of any thread that ever uses
  it; per the paper this must be supplied by the programmer via
  :func:`set_ceiling`, defaulting to the highest spawned priority).

Both protocols only change *scheduling*; they are most meaningful under the
strict :class:`~repro.vm.scheduler.PriorityScheduler`, but the prioritized
monitor queues honour the boosted priorities under round-robin too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.metrics import SupportMetrics
from repro.vm.monitors import Monitor, monitor_of
from repro.vm.support import NullSupport, RuntimeSupport

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.threads import Frame, VMThread


def set_ceiling(obj, priority: int) -> None:
    """Declare a lock's priority ceiling (programmer-supplied, §1)."""
    monitor_of(obj).ceiling = priority


def donate_priority(
    vm, metrics: SupportMetrics, thread: "VMThread", monitor: "Monitor"
) -> bool:
    """Transitive priority donation (Sha/Rajkumar/Lehoczky).

    ``thread`` is blocked on ``monitor``: the owner — and, transitively,
    the owner of whatever *it* blocks on — inherits ``thread``'s effective
    priority.  Shared by :class:`InheritanceSupport` and by the rollback
    runtime's degradation ladder, whose *inheritance* rung donates instead
    of revoking.  Returns True when any donation occurred.
    """
    donor_priority = thread.effective_priority
    mon: Optional[Monitor] = monitor
    seen: set[int] = set()
    donated = False
    while mon is not None and mon.owner is not None:
        owner = mon.owner
        if owner.tid in seen:
            break  # wait-for cycle: inheritance cannot help a deadlock
        seen.add(owner.tid)
        if owner.effective_priority < donor_priority:
            owner.inherited_priority = donor_priority
            metrics.priority_donations += 1
            donated = True
            vm.scheduler.on_priority_changed(owner)
            for held in owner.held_monitors:
                held.refresh_deposited()
            vm.trace(
                "inherit", owner, from_=thread, priority=donor_priority
            )
        mon = owner.blocked_on
    return donated


def recompute_inheritance(vm, thread: "VMThread") -> None:
    """Inherited priority = highest priority still waiting on any monitor
    the thread holds (recomputed after every release)."""
    best = -1
    for mon in thread.held_monitors:
        q = mon.highest_queued_priority()
        if q > best:
            best = q
    if thread.inherited_priority != best:
        thread.inherited_priority = best
        vm.scheduler.on_priority_changed(thread)
        for held in thread.held_monitors:
            held.refresh_deposited()


class InheritanceSupport(RuntimeSupport):
    """Transitive priority inheritance.

    When a thread blocks on a monitor, the owner (and, transitively, the
    owner of whatever *it* blocks on) inherits the blocker's effective
    priority.  On release, the inherited priority is recomputed from the
    waiters still queued on the monitors the thread holds.
    """

    name = "inheritance"

    def __init__(self) -> None:
        super().__init__()
        self.metrics = SupportMetrics()

    def on_contended_acquire(
        self, thread: "VMThread", monitor: "Monitor"
    ) -> int:
        donate_priority(self.vm, self.metrics, thread, monitor)
        return 0

    def on_handoff(
        self,
        releaser: "VMThread",
        monitor: "Monitor",
        new_owner: Optional["VMThread"],
    ) -> int:
        recompute_inheritance(self.vm, releaser)
        if new_owner is not None:
            recompute_inheritance(self.vm, new_owner)
        return 0

    def state_fingerprint(self) -> dict:
        violations = [
            f"thread {t.name} retains inherited priority "
            f"{t.inherited_priority} after quiescence"
            for t in self.vm.threads
            if t.inherited_priority != -1
        ]
        return {
            "violations": violations,
            "donations": self.metrics.priority_donations,
        }

    def collect_metrics(self) -> dict[str, int]:
        return self.metrics.as_dict()


class CeilingSupport(RuntimeSupport):
    """Priority-ceiling emulation (immediate ceiling protocol).

    On acquisition a thread's priority is raised to the monitor's ceiling;
    on release it drops back to the highest ceiling among monitors it still
    holds.  Ceilings default to the highest priority of any spawned thread
    when the programmer did not call :func:`set_ceiling` — the transparent
    (but pessimal) fallback.
    """

    name = "ceiling"

    def __init__(self) -> None:
        super().__init__()
        self.metrics = SupportMetrics()
        self._default_ceiling: Optional[int] = None

    def _ceiling(self, monitor: "Monitor") -> int:
        if monitor.ceiling is not None:
            return monitor.ceiling
        if self._default_ceiling is None:
            threads = self.vm.threads
            self._default_ceiling = (
                max(t.priority for t in threads) if threads else 0
            )
        return self._default_ceiling

    def on_monitor_entered(
        self,
        thread: "VMThread",
        monitor: "Monitor",
        frame: "Frame",
        sync_id: object,
        recursive: bool,
    ) -> int:
        if recursive:
            return 0
        ceiling = self._ceiling(monitor)
        if ceiling > thread.ceiling_boost:
            thread.ceiling_boost = ceiling
            self.metrics.ceiling_boosts += 1
            self.vm.scheduler.on_priority_changed(thread)
            self.vm.trace("ceiling_boost", thread, to=ceiling)
        return 0

    def on_handoff(
        self,
        releaser: "VMThread",
        monitor: "Monitor",
        new_owner: Optional["VMThread"],
    ) -> int:
        self._recompute(releaser)
        if new_owner is not None:
            self.on_monitor_entered(new_owner, monitor, None, None, False)
        return 0

    def _recompute(self, thread: "VMThread") -> None:
        best = -1
        for mon in thread.held_monitors:
            c = self._ceiling(mon)
            if c > best:
                best = c
        if thread.ceiling_boost != best:
            thread.ceiling_boost = best
            self.vm.scheduler.on_priority_changed(thread)

    def state_fingerprint(self) -> dict:
        violations = [
            f"thread {t.name} retains ceiling boost {t.ceiling_boost} "
            "after quiescence"
            for t in self.vm.threads
            if t.ceiling_boost != -1
        ]
        return {
            "violations": violations,
            "boosts": self.metrics.ceiling_boosts,
        }

    def collect_metrics(self) -> dict[str, int]:
        return self.metrics.as_dict()


def make_support(mode: str) -> RuntimeSupport:
    """Factory used by :class:`repro.vm.vmcore.JVM`."""
    if mode == "unmodified":
        return NullSupport()
    if mode == "rollback":
        from repro.core.revocation import RollbackSupport

        return RollbackSupport()
    if mode == "inheritance":
        return InheritanceSupport()
    if mode == "ceiling":
        return CeilingSupport()
    raise ValueError(f"unknown support mode {mode!r}")
