"""The paper's contribution: revocable synchronized sections.

Layered on the :mod:`repro.vm` substrate:

* :mod:`repro.core.transform` — the load-time bytecode rewriter (paper
  §3.1.1): synchronized-method wrapping, rollback-scope injection with
  operand-stack save/restore, and write-barrier insertion with a static
  elision analysis.
* :mod:`repro.core.undolog` — per-thread sequential undo buffers (§3.1.2).
* :mod:`repro.core.sections` — active synchronized-section records.
* :mod:`repro.core.jmm` — Java-memory-model consistency: read-write
  dependency tracking and non-revocability marking (§2.1–2.2).
* :mod:`repro.core.detection` — priority-inversion detection (§4).
* :mod:`repro.core.deadlock` — wait-for-cycle victim selection (§1).
* :mod:`repro.core.revocation` — the modified VM's runtime support tying
  it all together.
* :mod:`repro.core.policies` — priority inheritance / ceiling baselines
  (§5) and the support factory.
"""

from repro.core.metrics import SupportMetrics
from repro.core.undolog import UndoLog
from repro.core.sections import Section
from repro.core.jmm import JmmTracker
from repro.core.revocation import RollbackSupport
from repro.core.policies import (
    CeilingSupport,
    InheritanceSupport,
    make_support,
    set_ceiling,
)
from repro.core.transform import elide_barriers, transform_class

__all__ = [
    "SupportMetrics",
    "UndoLog",
    "Section",
    "JmmTracker",
    "RollbackSupport",
    "CeilingSupport",
    "InheritanceSupport",
    "make_support",
    "set_ceiling",
    "elide_barriers",
    "transform_class",
]
