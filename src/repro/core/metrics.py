"""Counters collected by the modified VM's runtime support.

These back the paper's overhead discussion (§4.2): how many undo entries
were logged and restored, how often the barrier slow path ran, how many
revocations happened and what they cost in virtual cycles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass
class SupportMetrics:
    """Mutable counter bundle; ``as_dict()`` feeds ``JVM.metrics()``."""

    sections_entered: int = 0
    sections_committed: int = 0
    sections_recursive: int = 0
    undo_entries_logged: int = 0
    undo_entries_restored: int = 0
    barrier_fast_hits: int = 0
    barrier_slow_hits: int = 0
    read_barrier_hits: int = 0
    inversions_detected: int = 0
    revocation_requests: int = 0
    revocations_completed: int = 0
    revocations_denied_nonrevocable: int = 0
    revocations_denied_grace: int = 0
    revocations_denied_cost: int = 0
    rollback_cycles: int = 0
    nonrevocable_marks: int = 0
    nonrevocable_native: int = 0
    nonrevocable_wait: int = 0
    nonrevocable_dependency: int = 0
    nonrevocable_degraded: int = 0
    deadlocks_resolved: int = 0
    priority_donations: int = 0
    ceiling_boosts: int = 0
    # robustness plane: retry budget / backoff / degradation ladder
    revocations_denied_degraded: int = 0
    backoff_windows_granted: int = 0
    retry_budget_exhausted: int = 0
    degradations_to_inheritance: int = 0
    degradations_to_nonrevocable: int = 0
    starvations_detected: int = 0
    sections_abandoned: int = 0
    # post-rollback invariant auditor
    invariant_checks: int = 0
    invariant_violations: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


def metrics_health(metrics: dict) -> list[str]:
    """Trust warnings for a ``JVM.metrics()`` snapshot.

    Returns human-readable strings for every way the run's telemetry is
    incomplete or suspect: a truncated trace ring (spans and exports
    were built from a partial event stream), tracer sinks that raised
    and were detached mid-run, and post-rollback invariant violations.
    Empty list == the snapshot can be trusted wholesale.
    """
    warnings: list[str] = []
    trace = metrics.get("trace", {})
    dropped = trace.get("dropped", 0)
    if dropped:
        warnings.append(
            f"trace TRUNCATED: {dropped} event(s) dropped past the "
            "tracer capacity — downstream artifacts are built from an "
            "INCOMPLETE event stream"
        )
    sink_errors = trace.get("sink_errors", 0)
    if sink_errors:
        warnings.append(
            f"{sink_errors} tracer sink(s) raised and were detached "
            "mid-run — external span/export consumers saw a partial "
            "stream"
        )
    violations = metrics.get("support", {}).get("invariant_violations", 0)
    if violations:
        warnings.append(
            f"{violations} post-rollback invariant violation(s) — "
            "rollback left guest state inconsistent"
        )
    return warnings
