"""Priority-inversion detection (paper §4).

    "A thread acquiring a monitor deposits its priority in the header of
    the monitor object.  Before another thread can attempt acquisition of
    the same monitor, it checks whether its own priority is higher than the
    priority of the thread currently executing within the synchronized
    section.  If it is, the scheduler initiates a context-switch and
    triggers rollback of the low priority thread at the next yield point."

Detection runs at lock acquisition (``on_contended``) and/or periodically
over all blocked threads (``scan_blocked``) — the paper §1 allows both.
A detected inversion posts a *revocation request* on the holder, naming the
holder's outermost active section for the contested monitor; the request is
honoured at the holder's next yield point (or immediately when the holder
is itself blocked or sleeping, in which case it is woken to roll back).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.sections import Section

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.revocation import RollbackSupport
    from repro.vm.monitors import Monitor
    from repro.vm.threads import VMThread


class InversionDetector:
    """Posts revocation requests when priority inversion is observed."""

    def __init__(self, support: "RollbackSupport") -> None:
        self.support = support

    # ------------------------------------------------------------ interface
    def on_contended(self, thread: "VMThread", monitor: "Monitor") -> None:
        """``thread`` is about to block on ``monitor``; check for inversion."""
        if self.support.vm.options.detection == "periodic":
            return
        self._check(thread, monitor)

    def scan_blocked(self) -> None:
        """Background pass: re-examine every blocked thread (§1)."""
        from repro.vm.threads import ThreadState

        for thread in self.support.vm.threads:
            if (
                thread.state is ThreadState.BLOCKED
                and thread.blocked_on is not None
            ):
                self._check(thread, thread.blocked_on)

    # ------------------------------------------------------------- mechanics
    def _check(self, thread: "VMThread", monitor: "Monitor") -> None:
        support = self.support
        holder = monitor.owner
        if holder is None or holder is thread:
            return
        if thread.effective_priority <= holder.effective_priority:
            return
        support.metrics.inversions_detected += 1
        target = self._target_section(holder, monitor)
        if target is None:
            return
        if not support.can_revoke(holder, target):
            support.metrics.revocations_denied_nonrevocable += 1
            support.vm.trace(
                "revocation_denied",
                thread,
                holder=holder,
                reason=target.nonrevocable_reason or "inner-nonrevocable",
            )
            return
        limit = support.vm.options.max_rollback_entries
        if limit and support.pending_undo_entries(holder, target) > limit:
            support.metrics.revocations_denied_cost += 1
            support.vm.trace(
                "revocation_denied", thread, holder=holder, reason="cost"
            )
            return
        # Grace windows, per-site backoff, and the degradation ladder all
        # live behind the support's single posting chokepoint.
        support.request_revocation(holder, target, requester=thread)

    @staticmethod
    def _target_section(
        holder: "VMThread", monitor: "Monitor"
    ) -> Optional[Section]:
        """The holder's outermost active section for ``monitor``.

        Recursive re-entries cannot be targets: releasing one recursion
        level would not free the monitor.
        """
        target = monitor.first_section
        if target is not None and target.thread is holder:
            return target
        # Fallback (first_section is cleared on release): walk the stack.
        return holder.section_for_monitor(monitor)
