"""Deadlock resolution by revocation (paper §1).

    "Using our techniques, such deadlocks can be detected and resolved
    automatically, permitting the application to make progress. ...
    for mission-critical applications in which running programs cannot be
    summarily terminated, our approach provides an opportunity for
    corrective action to be undertaken gracefully."

The scheduler detects wait-for cycles (it must anyway, to distinguish
deadlock from quiescence); this module chooses the *victim*: the cycle
member whose revocable section, when rolled back, releases a monitor some
other cycle member is waiting for.  Victim preference is lowest effective
priority (stealing cycles from the least urgent thread, consistent with the
paper's bias toward high-priority throughput), tie-broken by thread id for
determinism.

    "without taking additional precautions a sequence of deadlock
    revocations may result in livelock"

— the livelock guard lives in :mod:`repro.core.revocation`: each completed
revocation of the same thread doubles a grace window during which inversion
revocations spare it; for deadlocks (where *someone* must yield), victim
selection instead rotates via the revocation counter so repeated cycles
pick different victims.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.sections import Section

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.revocation import RollbackSupport
    from repro.vm.threads import VMThread


def select_victim(
    support: "RollbackSupport", cycle: list["VMThread"]
) -> Optional[tuple["VMThread", Section]]:
    """Pick ``(victim, target_section)`` breaking the cycle, or None.

    ``cycle`` is in wait-for order: ``cycle[i]`` blocks on a monitor owned
    by ``cycle[(i+1) % len(cycle)]``.  For each candidate holder we target
    its outermost active section for the monitor its predecessor waits on.
    """
    n = len(cycle)
    candidates: list[tuple[int, int, int, "VMThread", Section]] = []
    for i in range(n):
        holder = cycle[(i + 1) % n]
        waiter = cycle[i]
        monitor = waiter.blocked_on
        if monitor is None or monitor.owner is not holder:
            continue  # the graph changed under us; skip this edge
        target = monitor.first_section
        if target is None or target.thread is not holder:
            target = holder.section_for_monitor(monitor)
        if target is None:
            continue
        if not support.can_revoke(holder, target):
            continue
        candidates.append(
            (
                holder.effective_priority,
                holder.consecutive_revocations,
                holder.tid,
                holder,
                target,
            )
        )
    if not candidates:
        return None
    # lowest priority first; among equals prefer the least-recently-revoked
    # victim (anti-livelock rotation), then lowest tid for determinism.
    candidates.sort(key=lambda c: (c[0], c[1], c[2]))
    _, _, _, victim, target = candidates[0]
    return victim, target
