"""The modified VM's runtime support: revocable synchronized sections.

:class:`RollbackSupport` wires the paper's mechanisms into the VM's hook
seam (:mod:`repro.vm.support`):

* **Logging** — the write-barrier slow path appends ``(ref, offset, old)``
  to the thread's sequential undo buffer whenever the thread executes
  inside a synchronized section (§3.1.2).  All threads log, regardless of
  priority, exactly as in the paper's benchmark setup ("updates of both
  low-priority and high-priority threads are logged for fairness").
* **JMM tracking** — every read runs the dependency check; observing
  another thread's speculative write marks the writer's enclosing sections
  non-revocable (§2.2), as do native calls and ``wait``.
* **Detection** — contended acquisitions (and optionally a periodic scan)
  feed the :class:`~repro.core.detection.InversionDetector`.
* **Revocation** — at the holder's next yield point ``check_yield``
  validates the pending request, processes the undo log *in reverse,
  before any lock is released* (§3.1.2), and returns the rollback signal
  that the interpreter then steers through the injected handlers.
* **Deadlock breaking** and the **livelock guard** (§1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.deadlock import select_victim
from repro.core.detection import InversionDetector
from repro.core.jmm import JmmTracker
from repro.core.metrics import SupportMetrics
from repro.core.policies import donate_priority, recompute_inheritance
from repro.core.sections import (
    LADDER_INHERITANCE,
    LADDER_NONREVOCABLE,
    REASON_DEGRADED,
    REASON_DEPENDENCY,
    REASON_NATIVE,
    REASON_VOLATILE,
    REASON_WAIT,
    Section,
    SectionSite,
)
from repro.core.undolog import UndoLog
from repro.errors import ReproError
from repro.vm.heap import location_of
from repro.vm.support import RuntimeSupport
from repro.vm.threads import RollbackSignal

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.monitors import Monitor
    from repro.vm.threads import Frame, VMThread


class RollbackSupport(RuntimeSupport):
    """Runtime half of the paper's contribution."""

    name = "rollback"

    def __init__(self) -> None:
        super().__init__()
        self.metrics = SupportMetrics()
        self.jmm = JmmTracker()
        self.detector = InversionDetector(self)
        #: tid -> cached tuple of active sections (hot path for logging)
        self._active_cache: dict[int, tuple[Section, ...]] = {}
        #: (tid, sync_id) -> SectionSite; created lazily on first revocation
        #: so the uncontended path never touches this dict
        self._sites: dict[tuple[int, object], SectionSite] = {}
        #: tid -> site of the thread's most recent revocation (the watchdog
        #: degrades it when the thread has no active section to blame)
        self._last_site: dict[int, SectionSite] = {}
        #: donations made by the ladder's inheritance rung; on_handoff only
        #: recomputes inherited priorities when this is non-zero
        self._donations = 0
        #: post-rollback invariant auditor (options.audit_rollbacks)
        self.auditor = None
        #: per-VM section-id sequence — part of VM state (deepcopied by
        #: snapshots), so section ids in traces are a pure function of the
        #: schedule, never of what else the host process ran
        self._section_seq = 0

    def attach(self, vm) -> None:
        super().attach(vm)
        if vm.options.audit_rollbacks:
            from repro.faults.auditor import InvariantAuditor

            self.auditor = InvariantAuditor(self)

    # -------------------------------------------------------------- helpers
    def _log(self, thread: "VMThread") -> UndoLog:
        log = thread.undo_log
        if log is None:
            log = UndoLog(self.vm.heap)
            thread.undo_log = log
        return log

    def _active_tuple(self, thread: "VMThread") -> tuple[Section, ...]:
        cached = self._active_cache.get(thread.tid)
        if cached is None:
            cached = tuple(thread.sections)
            self._active_cache[thread.tid] = cached
        return cached

    def _invalidate(self, thread: "VMThread") -> None:
        self._active_cache.pop(thread.tid, None)

    def _site(self, thread: "VMThread", sync_id: object) -> SectionSite:
        key = (thread.tid, sync_id)
        site = self._sites.get(key)
        if site is None:
            site = SectionSite(thread.tid, sync_id)
            self._sites[key] = site
        return site

    def can_revoke(self, holder: "VMThread", target: Section) -> bool:
        """A section can be revoked iff it and every section nested inside
        it (still active) are revocable — rolling back the target undoes
        the inner sections' updates too (§2.2 footnote 1)."""
        try:
            idx = holder.sections.index(target)
        except ValueError:
            return False
        if target.recursive:
            return False
        return all(s.revocable for s in holder.sections[idx:])

    def pending_undo_entries(self, holder: "VMThread", target: Section) -> int:
        """How many undo-log entries a revocation of ``target`` would
        restore right now (the cost-aware detection extension reads this)."""
        log = holder.undo_log
        if log is None:
            return 0
        return max(0, len(log) - target.log_mark)

    def _mark_all(self, thread: "VMThread", reason: str) -> int:
        changed = 0
        for section in thread.sections:
            if section.mark_nonrevocable(reason):
                changed += 1
                self.vm.trace(
                    "nonrevocable", thread, section=repr(section),
                    mon=section.monitor, reason=reason,
                )
        if changed:
            self.metrics.nonrevocable_marks += changed
        return changed

    # -------------------------------------------------------------- monitors
    def on_monitor_entered(
        self,
        thread: "VMThread",
        monitor: "Monitor",
        frame: "Frame",
        sync_id: object,
        recursive: bool,
    ) -> int:
        scope = frame.method.rollback_scopes.get(sync_id)
        log = self._log(thread)
        self._section_seq += 1
        section = Section(
            thread,
            monitor,
            frame,
            sync_id,
            sid=self._section_seq,
            slot=scope.slot if scope else None,
            resume_pc=scope.save_pc if scope else None,
            handler_pc=scope.handler_pc if scope else None,
            log_mark=log.mark(),
            recursive=recursive,
            enter_time=self.vm.clock.now,
        )
        thread.sections.append(section)
        self._invalidate(thread)
        if not recursive and monitor.first_section is None:
            monitor.first_section = section
        self.metrics.sections_entered += 1
        if recursive:
            self.metrics.sections_recursive += 1
        elif self._sites:
            site = self._sites.get((thread.tid, sync_id))
            if site is not None and site.level == LADDER_NONREVOCABLE:
                # fully degraded site: pin every execution at entry, so
                # detection stops requesting revocations that always fail
                if section.mark_nonrevocable(REASON_DEGRADED):
                    self.metrics.nonrevocable_marks += 1
                    self.metrics.nonrevocable_degraded += 1
                    self.vm.trace(
                        "nonrevocable", thread, section=repr(section),
                        mon=section.monitor, reason=REASON_DEGRADED,
                    )
        return 0

    def on_monitor_exited(
        self,
        thread: "VMThread",
        monitor: "Monitor",
        frame: "Frame",
        sync_id: object,
    ) -> int:
        if not thread.sections:
            raise ReproError(
                f"monitorexit with empty section stack in {thread.name!r}"
            )
        section = thread.sections.pop()
        self._invalidate(thread)
        if section.monitor is not monitor or section.sync_id != sync_id:
            raise ReproError(
                f"section stack mismatch in {thread.name!r}: popped "
                f"{section!r} for exit of {sync_id!r}"
            )
        if self._sites:
            site = self._sites.get((thread.tid, sync_id))
            if site is not None:
                site.commit()
        if not thread.sections:
            # Outermost commit: updates become final; the buffer and the
            # JMM dependency records are discarded.
            log = self._log(thread)
            self.jmm.on_commit(thread, log.locations_since(0))
            log.truncate(0)
            thread.consecutive_revocations = 0
            thread.sections_committed += 1
            self.metrics.sections_committed += 1
        return 0

    def on_contended_acquire(
        self, thread: "VMThread", monitor: "Monitor"
    ) -> int:
        self.detector.on_contended(thread, monitor)
        return 0

    # ---------------------------------------------------------------- memory
    def before_store(
        self, thread: "VMThread", container, slot, old_value, volatile: bool
    ) -> int:
        m = self.metrics
        m.barrier_fast_hits += 1
        cost = self.vm.cost_model.barrier_fast
        if thread.sections:
            self._log(thread).append(container, slot, old_value)
            self.jmm.on_write(
                thread, location_of(container, slot),
                self._active_tuple(thread),
            )
            m.barrier_slow_hits += 1
            m.undo_entries_logged += 1
            cost += self.vm.cost_model.barrier_slow
        return cost

    def before_store_batch(self, thread, entries) -> int:
        # Batched fast path: one log extend + metric bump for the whole
        # run.  Equivalent to per-entry before_store because the thread's
        # section stack cannot change between consecutive fused stores
        # (monitor ops are never fused), so every entry sees the same
        # ``thread.sections`` truth value and active tuple.
        m = self.metrics
        n = len(entries)
        m.barrier_fast_hits += n
        cm = self.vm.cost_model
        cost = cm.barrier_fast * n
        if thread.sections:
            self._log(thread).extend(
                (container, slot, old_value)
                for container, slot, old_value, _ in entries
            )
            active = self._active_tuple(thread)
            on_write = self.jmm.on_write
            for container, slot, _, _ in entries:
                on_write(thread, location_of(container, slot), active)
            m.barrier_slow_hits += n
            m.undo_entries_logged += n
            cost += cm.barrier_slow * n
        return cost

    def after_load(
        self, thread: "VMThread", container, slot, volatile: bool
    ) -> int:
        self.metrics.read_barrier_hits += 1
        sections = self.jmm.on_read(thread, location_of(container, slot))
        if sections:
            reason = REASON_VOLATILE if volatile else REASON_DEPENDENCY
            for section in sections:
                if section.mark_nonrevocable(reason):
                    self.metrics.nonrevocable_marks += 1
                    self.metrics.nonrevocable_dependency += 1
                    self.vm.trace(
                        "nonrevocable",
                        thread,
                        section=repr(section),
                        mon=section.monitor,
                        reason=reason,
                    )
        return self.vm.cost_model.read_barrier

    # --------------------------------------------------------------- control
    def check_yield(self, thread: "VMThread") -> Optional[RollbackSignal]:
        target = thread.revocation_request
        if target is None:
            return None
        thread.revocation_request = None
        if target not in thread.sections:
            # the section already committed; request is stale.  Traced so
            # schedule-dependence analyses (repro.check.dpor) see that a
            # posted request was consumed here — the consumption orders
            # this slice against the posting slice on the same monitor.
            self.vm.trace(
                "revocation_denied", thread,
                mon=getattr(target, "monitor", None),
                reason="stale",
            )
            return None
        if not self.can_revoke(thread, target):
            self.metrics.revocations_denied_nonrevocable += 1
            self.vm.trace(
                "revocation_denied", thread, mon=target.monitor,
                reason="nonrevocable",
            )
            return None
        limit = self.vm.options.max_rollback_entries
        if limit and self.pending_undo_entries(thread, target) > limit:
            # the log grew past the budget between request and delivery
            self.metrics.revocations_denied_cost += 1
            self.vm.trace(
                "revocation_denied", thread, mon=target.monitor,
                reason="cost",
            )
            return None
        plane = self.vm.fault_plane
        if plane is not None:
            plane.perturb_undo(self, thread, target)
            plane.drop_undo(self, thread, target)
        # Process the undo log in reverse, *before any lock is released*
        # (§3.1.2) — partial results never become visible to other threads.
        log = self._log(thread)
        audit = self.auditor
        expectation = (
            audit.before_rollback(thread, target, log)
            if audit is not None
            else None
        )
        restored = log.rollback_to(
            target.log_mark, on_undo=lambda loc: self.jmm.on_undo(thread, loc)
        )
        if audit is not None:
            audit.after_rollback(thread, target, log, expectation)
        cm = self.vm.cost_model
        cost = cm.rollback_base + cm.rollback_entry * restored
        self.vm.charge(thread, cost, kind="rollback")
        m = self.metrics
        m.undo_entries_restored += restored
        m.rollback_cycles += cost
        m.revocations_completed += 1
        thread.consecutive_revocations += 1
        opts = self.vm.options
        if thread.consecutive_revocations >= opts.livelock_threshold:
            exponent = thread.consecutive_revocations - opts.livelock_threshold
            thread.grace_until = self.vm.clock.now + (
                opts.livelock_grace << min(exponent, 16)
            )
            self.vm.trace(
                "grace_granted", thread, until=thread.grace_until
            )
        # Per-site retry budget and exponential backoff (robustness plane):
        # unlike the thread-level livelock guard above — which any
        # revocation of the thread feeds — these track one static section
        # and survive across executions, so a single pathological hot spot
        # degrades without penalising the thread's other sections.
        site = self._site(thread, target.sync_id)
        site.attempts += 1
        site.total_revocations += 1
        self._last_site[thread.tid] = site
        if opts.revocation_backoff:
            site.grace_until = self.vm.clock.now + (
                opts.revocation_backoff << min(site.attempts - 1, 16)
            )
            m.backoff_windows_granted += 1
            self.vm.trace(
                "site_backoff", thread, sync_id=str(site.sync_id),
                until=site.grace_until,
            )
        budget = opts.revocation_retry_budget
        if budget and site.attempts >= budget:
            m.retry_budget_exhausted += 1
            self._degrade(thread, site, reason="budget")
        self.vm.trace(
            "rollback_begin", thread, section=repr(target),
            mon=target.monitor, undone=restored,
        )
        return RollbackSignal(target)

    def on_rollback_handler(
        self, thread: "VMThread", section: Section, is_target: bool
    ) -> int:
        top = thread.sections.pop()
        self._invalidate(thread)
        if top is not section:
            raise ReproError(
                f"rollback handler popped {top!r}, expected {section!r}"
            )
        return 0

    def on_native_call(self, thread: "VMThread", name: str) -> int:
        changed = self._mark_all(thread, REASON_NATIVE)
        self.metrics.nonrevocable_native += changed
        return 0

    def on_wait(self, thread: "VMThread", monitor: "Monitor") -> int:
        # §2.2: revoking past a completed wait() would "undeliver" the
        # notification; enclosing monitors become non-revocable.  We mark
        # the receiver's own section too (conservative: after the wait
        # returns, a rollback to its monitorenter would lose the notify).
        changed = self._mark_all(thread, REASON_WAIT)
        self.metrics.nonrevocable_wait += changed
        return 0

    def on_wait_reacquired(
        self, thread: "VMThread", monitor: "Monitor"
    ) -> int:
        if monitor.first_section is None:
            monitor.first_section = thread.section_for_monitor(monitor)
        return 0

    def on_thread_exit(self, thread: "VMThread") -> None:
        if thread.sections:
            raise ReproError(
                f"thread {thread.name!r} exited with active sections "
                f"{thread.sections!r}"
            )
        self._invalidate(thread)
        self._last_site.pop(thread.tid, None)

    def on_section_abandoned(self, thread: "VMThread", section) -> None:
        # Guest exception dispatch popped the section's frame without a
        # commit or rollback (hand-written bytecode with no catch-all
        # release handler).  The monitor was force-released with the
        # speculative updates in place, i.e. commit semantics — so when the
        # stack empties, finalise exactly as an outermost commit would.
        self._invalidate(thread)
        self.metrics.sections_abandoned += 1
        self.vm.trace(
            "section_abandoned", thread, section=repr(section)
        )
        if not thread.sections and thread.undo_log is not None:
            log = thread.undo_log
            self.jmm.on_commit(thread, log.locations_since(0))
            log.truncate(0)

    # ------------------------------------------------------------ robustness
    def request_revocation(
        self,
        holder: "VMThread",
        target: Section,
        *,
        requester: "VMThread | None" = None,
        origin: str = "inversion",
        force: bool = False,
    ) -> bool:
        """Single chokepoint for posting a revocation request on ``holder``.

        Applies the robustness policies — degradation-ladder rung of the
        target's site, per-site backoff window, thread-level livelock grace
        — before posting; ``force`` (deadlock resolution) bypasses them.
        Returns True when a request is pending after the call (newly posted
        or subsumed by an outer pending one).
        """
        vm = self.vm
        reporter = requester if requester is not None else holder
        if not force:
            site = self._sites.get((holder.tid, target.sync_id))
            if site is not None:
                if site.level == LADDER_NONREVOCABLE:
                    # Normally unreachable (sections are pinned at entry),
                    # but a site can degrade while an execution is active.
                    self.metrics.revocations_denied_degraded += 1
                    vm.trace(
                        "revocation_denied", reporter, holder=holder,
                        mon=target.monitor, reason="degraded",
                    )
                    return False
                if site.level == LADDER_INHERITANCE:
                    # Degraded rung: stop throwing away the holder's work;
                    # fall back to donating the requester's priority.
                    self.metrics.revocations_denied_degraded += 1
                    vm.trace(
                        "revocation_denied", reporter, holder=holder,
                        mon=target.monitor, reason="degraded-inheritance",
                    )
                    if requester is not None and donate_priority(
                        vm, self.metrics, requester, target.monitor
                    ):
                        self._donations += 1
                    return False
                if vm.clock.now < site.grace_until:
                    self.metrics.revocations_denied_grace += 1
                    vm.trace(
                        "revocation_denied", reporter, holder=holder,
                        mon=target.monitor, reason="site-backoff",
                    )
                    return False
            if vm.clock.now < holder.grace_until:
                self.metrics.revocations_denied_grace += 1
                vm.trace(
                    "revocation_denied", reporter, holder=holder,
                    mon=target.monitor, reason="grace",
                )
                return False
        current = holder.revocation_request
        if current is not None:
            # Keep the outermost pending target: rolling back an outer
            # section subsumes any inner one.
            if current is target:
                return True
            try:
                if holder.sections.index(current) <= holder.sections.index(
                    target
                ):
                    return True
            except ValueError:
                pass  # stale request; replace it
        holder.revocation_request = target
        self.metrics.revocation_requests += 1
        vm.trace(
            "revocation_request",
            reporter,
            holder=holder,
            section=repr(target),
            mon=target.monitor,
            origin=origin,
        )
        # A blocked or sleeping holder never reaches a yield point on its
        # own; wake it so the rollback can proceed.
        vm.scheduler.wake_for_revocation(holder)
        # Preemption-based means *prompt*: under strict priority
        # scheduling the victim still needs CPU to reach the yield point
        # where the rollback runs, and medium-priority threads would
        # starve it of exactly that — reintroducing the inversion the
        # revocation exists to end.  Donate the requester's priority to
        # the holder for the duration of the undo; on_handoff sheds it
        # when the rolled-back monitor is released.  Round-robin (and
        # hook-driven checker) schedules need no boost — every ready
        # thread runs within one rotation — so the donation is gated to
        # keep revocation requests independent transitions under DPOR.
        if (
            vm.scheduler.name == "priority"
            and requester is not None
            and donate_priority(vm, self.metrics, requester, target.monitor)
        ):
            self._donations += 1
        return True

    def _degrade(
        self, thread: "VMThread", site: SectionSite, *, reason: str
    ) -> Optional[str]:
        """Demote ``site`` one ladder rung; returns the new level or None
        when the site already sits at the bottom."""
        new_level = site.escalate(self.vm.clock.now)
        if new_level is None:
            return None
        if new_level == LADDER_INHERITANCE:
            self.metrics.degradations_to_inheritance += 1
        else:  # LADDER_NONREVOCABLE
            self.metrics.degradations_to_nonrevocable += 1
            for section in thread.sections:
                if section.sync_id == site.sync_id and not section.recursive:
                    if section.mark_nonrevocable(REASON_DEGRADED):
                        self.metrics.nonrevocable_marks += 1
                        self.metrics.nonrevocable_degraded += 1
        self.vm.trace(
            "degrade", thread, sync_id=str(site.sync_id), level=new_level,
            reason=reason,
        )
        return new_level

    def iter_sites(self) -> list[SectionSite]:
        """All section sites in a deterministic order (tid, sync_id)."""
        return [
            self._sites[key]
            for key in sorted(self._sites, key=lambda k: (k[0], str(k[1])))
        ]

    def escalate_hottest_site(
        self, *, reason: str = "abort-storm"
    ) -> Optional[str]:
        """Demote the most-revoked still-demotable site one ladder rung.

        The overload plane (:mod:`repro.server.plane`) calls this when its
        abort-storm detector trips: instead of letting a storm keep
        throwing away work, the hottest site falls back to priority
        inheritance (and, on a repeat offence, to non-revocability).
        Ties break deterministically on (tid, sync_id).  Returns the new
        ladder level, or None when no site is demotable.
        """
        best: Optional[SectionSite] = None
        best_key = None
        for (tid, sync_id), site in self._sites.items():
            if site.level == LADDER_NONREVOCABLE:
                continue
            key = (-site.total_revocations, tid, str(sync_id))
            if best_key is None or key < best_key:
                best, best_key = site, key
        if best is None:
            return None
        thread = next(
            (t for t in self.vm.threads if t.tid == best.tid), None
        )
        if thread is None:
            return None
        return self._degrade(thread, best, reason=reason)

    def on_starvation(self, thread: "VMThread") -> bool:
        self.metrics.starvations_detected += 1
        site: Optional[SectionSite] = None
        for section in thread.sections:
            if not section.recursive:
                site = self._site(thread, section.sync_id)
                break
        if site is None:
            site = self._last_site.get(thread.tid)
        if site is None:
            return False
        return self._degrade(thread, site, reason="starvation") is not None

    def on_handoff(
        self,
        releaser: "VMThread",
        monitor: "Monitor",
        new_owner: "VMThread | None",
    ) -> int:
        # Only needed once the ladder's inheritance rung has donated:
        # released monitors must shed the donation exactly as the
        # inheritance baseline does.
        if self._donations:
            recompute_inheritance(self.vm, releaser)
            if new_owner is not None:
                recompute_inheritance(self.vm, new_owner)
        return 0

    # ------------------------------------------------------------ scheduling
    def periodic_scan(self) -> None:
        self.detector.scan_blocked()

    def resolve_deadlock(self, cycle: list["VMThread"]) -> bool:
        if not self.vm.options.resolve_deadlocks:
            return False
        picked = select_victim(self, cycle)
        if picked is None:
            return False
        victim, target = picked
        victim.revocation_request = target
        self.metrics.deadlocks_resolved += 1
        self.metrics.revocation_requests += 1
        self.vm.trace(
            "deadlock_resolve", victim, section=repr(target),
            cycle=[t.name for t in cycle],
        )
        self.vm.scheduler.wake_for_revocation(victim)
        # Same promptness argument as request_revocation (and the same
        # priority-scheduler gate): the victim must actually run to undo
        # its section, and third-party runnable threads must not starve
        # it.  Donate from the highest-priority member of the cycle.
        if self.vm.scheduler.name == "priority":
            donor = None
            for t in cycle:
                if t is victim:
                    continue
                if donor is None or (
                    t.effective_priority,
                    -t.tid,
                ) > (donor.effective_priority, -donor.tid):
                    donor = t
            if donor is not None and donate_priority(
                self.vm, self.metrics, donor, target.monitor
            ):
                self._donations += 1
        return True

    # -------------------------------------------------------------- checking
    def state_fingerprint(self) -> dict:
        """Rollback-runtime quiescence report for the differential oracle.

        On a clean run every section has committed (``thread.sections``
        empty) and every undo log drained (committed at outermost exit or
        restored by rollback) — anything left over means a section's
        effects escaped the commit/revoke protocol."""
        violations: list[str] = []
        for t in self.vm.threads:
            if t.sections:
                violations.append(
                    f"thread {t.name} quiesced with {len(t.sections)} "
                    "uncommitted section(s)"
                )
            log = t.undo_log
            if log is not None and len(log) > 0:
                violations.append(
                    f"thread {t.name} quiesced with {len(log)} undrained "
                    "undo entries"
                )
        return {
            "violations": violations,
            "revocations_completed": self.metrics.revocations_completed,
        }

    # --------------------------------------------------------------- metrics
    def collect_metrics(self) -> dict[str, int]:
        return self.metrics.as_dict()
