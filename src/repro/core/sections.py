"""Active synchronized-section records.

A :class:`Section` is created when a thread executes ``monitorenter`` and
destroyed when the matching ``monitorexit`` commits it or a revocation
unwinds it.  It ties together everything a rollback needs:

* the monitor and whether this was a *recursive* entry (recursive entries
  release one recursion level; only non-recursive entries can be revocation
  targets, since releasing an inner recursive level would not free the
  monitor);
* the frame and the transformer-injected scope info — which ``SAVESTATE``
  slot holds the operand-stack/locals snapshot, where the injected
  ``ROLLBACK_HANDLER`` lives, and the resume pc (the ``SAVESTATE`` before
  the ``monitorenter``);
* the undo-log *mark* delimiting this section's updates;
* the revocability state (paper §2.2): sections become non-revocable when
  their speculative writes are observed by another thread, when a native
  method runs inside them, or when ``wait`` is invoked.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.monitors import Monitor
    from repro.vm.threads import Frame, VMThread

#: why a section lost revocability (for traces, metrics and tests)
REASON_DEPENDENCY = "read-write-dependency"
REASON_VOLATILE = "volatile-dependency"
REASON_NATIVE = "native-call"
REASON_WAIT = "wait"
REASON_UNTRANSFORMED = "no-rollback-scope"
REASON_DEGRADED = "degraded"

#: graceful-degradation ladder, most to least optimistic.  A *site* (one
#: static synchronized section executed by one thread) starts revocable;
#: when its revocation retry budget is exhausted — or the starvation
#: watchdog flags its thread — it degrades one rung at a time:
#: revocable -> priority-inheritance (inversions donate priority instead
#: of revoking) -> non-revocable (sections are pinned at entry, trading
#: the paper's mechanism away entirely for guaranteed forward progress).
LADDER_REVOCABLE = "revocable"
LADDER_INHERITANCE = "inheritance"
LADDER_NONREVOCABLE = "nonrevocable"
LADDER_ORDER = (LADDER_REVOCABLE, LADDER_INHERITANCE, LADDER_NONREVOCABLE)


class SectionSite:
    """Robustness state for one (thread, sync_id) section site.

    Unlike :class:`Section` — one dynamic execution — a site survives
    across executions, so it can remember how often revocation threw away
    this thread's work at this ``monitorenter`` without an intervening
    commit (``attempts``), impose a growing revocation-free grace window
    (``grace_until``), and hold the degradation-ladder rung the site has
    been demoted to.  Degradation is sticky: a site never climbs back up
    (re-promoting would readmit the livelock the demotion escaped).
    """

    __slots__ = (
        "tid",
        "sync_id",
        "level",
        "attempts",
        "total_revocations",
        "grace_until",
        "degraded_at",
    )

    def __init__(self, tid: int, sync_id: object):
        self.tid = tid
        self.sync_id = sync_id
        self.level = LADDER_REVOCABLE
        #: revocations since the last commit at this site
        self.attempts = 0
        self.total_revocations = 0
        #: revocation requests are refused until this virtual time
        self.grace_until = 0
        #: virtual time of the most recent demotion (-1 = never)
        self.degraded_at = -1

    def escalate(self, now: int) -> Optional[str]:
        """Demote one rung; returns the new level, or None at the bottom."""
        idx = LADDER_ORDER.index(self.level)
        if idx + 1 >= len(LADDER_ORDER):
            return None
        self.level = LADDER_ORDER[idx + 1]
        self.degraded_at = now
        return self.level

    def commit(self) -> None:
        """A section at this site committed: the retry budget refills."""
        self.attempts = 0
        self.grace_until = 0

    def __repr__(self) -> str:
        return (
            f"SectionSite(tid={self.tid}, {self.sync_id!r}, "
            f"{self.level}, attempts={self.attempts})"
        )


class Section:
    """One dynamic execution of a synchronized section."""

    __slots__ = (
        "sid",
        "thread",
        "monitor",
        "frame",
        "sync_id",
        "slot",
        "resume_pc",
        "handler_pc",
        "log_mark",
        "recursive",
        "revocable",
        "nonrevocable_reason",
        "enter_time",
        "depth",
    )

    def __init__(
        self,
        thread: "VMThread",
        monitor: "Monitor",
        frame: "Frame",
        sync_id: object,
        *,
        sid: int,
        slot: Optional[int],
        resume_pc: Optional[int],
        handler_pc: Optional[int],
        log_mark: int,
        recursive: bool,
        enter_time: int,
    ):
        # allocated by the owning VM's RevocationManager, so section ids
        # are a pure function of that VM's execution (snapshot/restore and
        # trace determinism both depend on this — no process globals)
        self.sid = sid
        self.thread = thread
        self.monitor = monitor
        self.frame = frame
        self.sync_id = sync_id
        self.slot = slot
        self.resume_pc = resume_pc
        self.handler_pc = handler_pc
        self.log_mark = log_mark
        self.recursive = recursive
        self.revocable = handler_pc is not None
        self.nonrevocable_reason: Optional[str] = (
            None if self.revocable else REASON_UNTRANSFORMED
        )
        self.enter_time = enter_time
        self.depth = len(thread.sections)  # 0 = outermost

    def mark_nonrevocable(self, reason: str) -> bool:
        """Returns True when this call changed the state."""
        if not self.revocable:
            return False
        self.revocable = False
        self.nonrevocable_reason = reason
        return True

    @property
    def is_outermost(self) -> bool:
        return self.depth == 0

    def __repr__(self) -> str:
        flags = []
        if self.recursive:
            flags.append("recursive")
        if not self.revocable:
            flags.append(f"nonrevocable:{self.nonrevocable_reason}")
        return (
            f"Section#{self.sid}({self.thread.name}@{self.sync_id!r}"
            f"{' ' + ' '.join(flags) if flags else ''})"
        )
