"""Per-thread sequential undo buffers (paper §3.1.2).

    "We implemented the log as a sequential buffer.  For object and array
    stores, three values are recorded: object or array reference, value
    offset and the (old) value itself.  For static variable stores two
    values are recorded: the offset of the static variable in the global
    symbol table and the old value of the static variable."

An entry here is ``(container, slot, old_value)`` where ``container`` is a
:class:`~repro.vm.heap.VMObject`, :class:`~repro.vm.heap.VMArray`, or the
``(class_name, field_name)`` key of a static (our "global symbol table
offset").

    "If the execution of a synchronized section is interrupted and needs to
    be re-executed then the log is processed in reverse to restore modified
    locations to their original values."

Section boundaries are *marks* (buffer positions).  The log lives until the
thread exits its outermost synchronized section: a nested section's entries
stay after that section commits, because revoking the still-active outer
section must undo them too.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.vm.heap import Heap, VMArray, VMObject, location_of

Entry = tuple  # (container, slot, old_value)


class UndoLog:
    """Sequential buffer of old values with O(1) append and marks.

    Bound to one :class:`~repro.vm.heap.Heap` so static entries (which
    carry only the symbol-table key) can be restored.
    """

    __slots__ = ("heap", "entries")

    def __init__(self, heap: Heap) -> None:
        self.heap = heap
        self.entries: list[Entry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def mark(self) -> int:
        """Current position; a later rollback can return to it."""
        return len(self.entries)

    def append(self, container, slot, old_value) -> None:
        self.entries.append((container, slot, old_value))

    def extend(self, entries) -> None:
        """Append a run of ``(container, slot, old_value)`` records at once
        (the batched write-barrier fast path); order is preserved, so a
        later reverse rollback behaves exactly as with per-entry appends."""
        self.entries.extend(entries)

    def rollback_to(
        self,
        mark: int,
        on_undo: Callable[[tuple], None] | None = None,
    ) -> int:
        """Process the log in reverse down to ``mark``, restoring each
        location to its original value.  ``on_undo(loc)`` is invoked per
        restored entry (the JMM tracker pops its dependency records there).
        Returns the number of entries restored.
        """
        entries = self.entries
        if mark < 0 or mark > len(entries):
            raise ValueError(f"bad mark {mark} for log of {len(entries)}")
        count = 0
        for i in range(len(entries) - 1, mark - 1, -1):
            container, slot, old_value = entries[i]
            if isinstance(container, (VMObject, VMArray)):
                container.put(slot, old_value)
            else:
                # static: container is the (class, field) symbol-table key
                self.heap.put_static(container, old_value)
            if on_undo is not None:
                on_undo(location_of(container, slot))
            count += 1
        del entries[mark:]
        return count

    def truncate(self, mark: int = 0) -> int:
        """Discard entries from ``mark`` on *without* restoring (commit).

        Returns the number of entries discarded.
        """
        n = len(self.entries) - mark
        if n < 0:
            raise ValueError(f"bad mark {mark} for log of {len(self.entries)}")
        del self.entries[mark:]
        return n

    def locations_since(self, mark: int = 0) -> Iterator[tuple]:
        """Locations touched by entries at or after ``mark`` (with dups)."""
        for container, slot, _ in self.entries[mark:]:
            yield location_of(container, slot)

    def peek(self, index: int) -> Entry:
        return self.entries[index]
