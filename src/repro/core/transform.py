"""The load-time bytecode transformer (paper §3.1.1).

The paper rewrites Java class files with BCEL before execution on the
modified VM; this module performs the same three rewrites on our IR:

1. **Synchronized-method wrapping** — every ``synchronized`` method is
   renamed to ``name$impl`` (made non-synchronized, marked for inlining)
   and replaced by a wrapper of identical signature whose body is a
   synchronized block (on the receiver, or on the ``Class`` object for
   static methods) invoking the original.  "This approach greatly
   simplifies the implementation ... we need only handle explicit
   monitorenter and monitorexit bytecodes."

2. **Rollback-scope injection** — each ``monitorenter``/``monitorexit``
   region is wrapped in an exception scope catching the rollback
   exception.  A ``SAVESTATE`` is injected immediately before the
   ``monitorenter`` ("inject bytecode to save the values on the operand
   stack just before each rollback-scope's monitorenter opcode"); the
   injected ``ROLLBACK_HANDLER`` releases the monitor and either restores
   the snapshot and re-executes or rethrows outward.

3. **Write-barrier insertion** — every ``putfield``/``putstatic``/array
   store is flagged to run the barrier ("the barrier records in the log
   every modification performed by a thread executing a synchronized
   section").  :func:`elide_barriers` is the paper's compiler optimization
   hook: a whole-program call-graph analysis clears the flag on stores
   that provably never execute inside a synchronized section.

All passes operate on a private copy of the class (the VM copies at load
time), so the same program object can be loaded into modified and
unmodified VMs side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import TransformError
from repro.vm import bytecode as bc
from repro.vm.assembler import Asm
from repro.vm.bytecode import Instruction
from repro.vm.classfile import (
    ClassDef,
    ExceptionTableEntry,
    MethodDef,
    ROLLBACK_TYPE,
)

IMPL_SUFFIX = "$impl"


@dataclass(frozen=True)
class ScopeInfo:
    """Locations of one injected rollback scope within a method."""

    slot: int        # SAVESTATE state slot
    save_pc: int     # pc of the SAVESTATE (re-execution resumes here)
    handler_pc: int  # pc of the ROLLBACK_HANDLER


# --------------------------------------------------------------------- editing
def insert_instructions(
    method: MethodDef, at: int, new_code: list[Instruction]
) -> None:
    """Insert instructions at pc ``at``, relocating every pc-valued operand.

    Branch targets, exception-table ranges, rollback-scope records and
    ``ROLLBACK_HANDLER`` resume pcs that point at or past ``at`` are
    shifted; a branch that targeted ``at`` lands on the first inserted
    instruction (which is exactly right for ``SAVESTATE`` injection: any
    jump to the ``monitorenter`` must save state first).
    """
    n = len(new_code)
    if n == 0:
        return
    if not (0 <= at <= len(method.code)):
        raise TransformError(
            f"{method.qualified_name()}: insertion point {at} outside body"
        )
    for ins in method.code:
        op = ins.op
        if bc.is_branch(op) and isinstance(ins.a, int) and ins.a > at:
            ins.a += n
        elif op == bc.ROLLBACK_HANDLER and isinstance(ins.b, int) and ins.b > at:
            ins.b += n
    method.exc_table = [e.shifted(at, n) for e in method.exc_table]
    if method.rollback_scopes:
        method.rollback_scopes = {
            sid: ScopeInfo(
                s.slot,
                s.save_pc + n if s.save_pc > at else s.save_pc,
                s.handler_pc + n if s.handler_pc > at else s.handler_pc,
            )
            for sid, s in method.rollback_scopes.items()
        }
    method.code[at:at] = new_code


# ----------------------------------------------------- pass 1: sync methods
def wrap_synchronized_methods(classdef: ClassDef) -> int:
    """Rewrite each synchronized method into wrapper + ``$impl``.

    Returns the number of methods wrapped.
    """
    wrapped = 0
    for name in list(classdef.methods):
        method = classdef.methods[name]
        if not method.synchronized:
            continue
        if name.endswith(IMPL_SUFFIX):
            raise TransformError(
                f"{method.qualified_name()}: reserved name suffix"
            )
        if not method.is_static and method.argc < 1:
            raise TransformError(
                f"{method.qualified_name()}: synchronized instance method "
                "without a receiver argument"
            )
        impl_name = name + IMPL_SUFFIX
        if impl_name in classdef.methods:
            raise TransformError(
                f"{classdef.name}.{impl_name} already exists"
            )
        del classdef.methods[name]
        method.name = impl_name
        method.synchronized = False
        method.force_inline = True
        classdef.methods[impl_name] = method

        w = Asm(
            name,
            argc=method.argc,
            is_static=method.is_static,
            returns_value=method.returns_value,
        )
        ret_tmp = w.local() if method.returns_value else None
        if method.is_static:
            w.classref(classdef.name)
        else:
            w.load(0)
        with w.sync():
            for i in range(method.argc):
                w.load(i)
            w.invoke(classdef.name, impl_name, method.argc)
            if ret_tmp is not None:
                w.store(ret_tmp)
        if ret_tmp is not None:
            w.load(ret_tmp)
        w.ret()
        wrapper = w.build()
        wrapper.class_name = classdef.name
        classdef.methods[name] = wrapper
        wrapped += 1
    return wrapped


# -------------------------------------------------- pass 2: rollback scopes
def inject_rollback_scopes(method: MethodDef) -> int:
    """Wrap every synchronized section in a rollback exception scope.

    Returns the number of scopes injected.  Idempotent: a method with
    existing scopes is left untouched.
    """
    if method.rollback_scopes:
        return 0
    enter_pcs = [
        (pc, ins.a)
        for pc, ins in enumerate(method.code)
        if ins.op == bc.MONITORENTER
    ]
    if not enter_pcs:
        return 0
    seen_ids = [sid for _, sid in enter_pcs]
    if len(set(seen_ids)) != len(seen_ids):
        raise TransformError(
            f"{method.qualified_name()}: duplicate sync ids {seen_ids!r}"
        )
    # Insert SAVESTATE before each monitorenter, highest pc first so the
    # earlier insertion points stay valid.
    slot_by_id: dict[object, int] = {}
    next_slot = method.state_slots
    for pc, sync_id in sorted(enter_pcs, reverse=True):
        slot = next_slot
        next_slot += 1
        slot_by_id[sync_id] = slot
        insert_instructions(
            method, pc, [Instruction(bc.SAVESTATE, slot)]
        )
    method.state_slots = next_slot

    # Re-locate the (shifted) save/enter/exit pcs.
    save_pc_by_slot = {
        ins.a: pc
        for pc, ins in enumerate(method.code)
        if ins.op == bc.SAVESTATE and ins.a in slot_by_id.values()
    }
    exits_by_id: dict[object, list[int]] = {}
    for pc, ins in enumerate(method.code):
        if ins.op == bc.MONITOREXIT:
            exits_by_id.setdefault(ins.a, []).append(pc)

    # Append one handler per scope; appends do not shift existing pcs.
    injected = 0
    for pc, sync_id in sorted(enter_pcs):  # deterministic source order
        slot = slot_by_id[sync_id]
        save_pc = save_pc_by_slot[slot]
        exits = exits_by_id.get(sync_id)
        if not exits:
            raise TransformError(
                f"{method.qualified_name()}: sync id {sync_id!r} has no "
                "monitorexit"
            )
        handler_pc = len(method.code)
        method.code.append(Instruction(bc.ROLLBACK_HANDLER, slot, save_pc))
        method.exc_table.append(
            ExceptionTableEntry(
                save_pc + 1, max(exits) + 1, handler_pc, ROLLBACK_TYPE
            )
        )
        method.rollback_scopes[sync_id] = ScopeInfo(
            slot, save_pc, handler_pc
        )
        injected += 1
    return injected


# ---------------------------------------------------- pass 3: write barriers
def insert_write_barriers(method: MethodDef) -> int:
    """Flag every heap store to run the write barrier.

    Returns the number of stores flagged.
    """
    flagged = 0
    for ins in method.code:
        if bc.is_store(ins.op) and not ins.barrier:
            ins.barrier = True
            flagged += 1
    return flagged


def transform_class(classdef: ClassDef) -> ClassDef:
    """Run all three passes over a class (mutates and returns it)."""
    wrap_synchronized_methods(classdef)
    for method in classdef.methods.values():
        inject_rollback_scopes(method)
        insert_write_barriers(method)
        method.verify()
    return classdef


# ------------------------------------------------ optional: barrier elision
def _sync_ranges(method: MethodDef) -> list[tuple[int, int]]:
    """pc intervals ``[start, end)`` in which a section may be active."""
    enters: dict[object, int] = {}
    exits: dict[object, int] = {}
    for pc, ins in enumerate(method.code):
        if ins.op == bc.MONITORENTER:
            enters.setdefault(ins.a, pc)
        elif ins.op == bc.MONITOREXIT:
            exits[ins.a] = max(exits.get(ins.a, -1), pc)
    ranges = []
    for sync_id, start in enters.items():
        scope = method.rollback_scopes.get(sync_id)
        if scope is not None:
            start = min(start, scope.save_pc)
        end = exits.get(sync_id, -1) + 1
        if end > start:
            ranges.append((start, end))
    return ranges


def elide_barriers(classdefs: Iterable[ClassDef]) -> int:
    """Whole-program barrier elision (the optimization the paper sketches:
    "Compiler analyses and optimization may elide these run-time checks
    when the update can be shown statically never to occur within a
    synchronized section").

    A store keeps its barrier when (a) it sits inside one of its own
    method's synchronized regions, or (b) its method is transitively
    reachable from a call site inside *any* synchronized region (so the
    executing thread may hold a monitor).  Every other barrier flag is
    cleared.  Returns the number of barriers elided.

    The analysis is sound, not precise: unknown callees cannot occur (all
    classes are loaded before ``run()``), and handler code appended by the
    transformer contains no stores.
    """
    methods: dict[tuple[str, str], MethodDef] = {}
    for c in classdefs:
        for m in c.methods.values():
            methods[(c.name, m.name)] = m
    ranges = {key: _sync_ranges(m) for key, m in methods.items()}

    def inside(key: tuple[str, str], pc: int) -> bool:
        return any(s <= pc < e for s, e in ranges[key])

    may_hold: set[tuple[str, str]] = set()
    work: list[tuple[str, str]] = []
    for key, m in methods.items():
        for pc, ins in enumerate(m.code):
            if ins.op == bc.INVOKE and inside(key, pc):
                callee = (ins.a[0], ins.a[1])
                if callee not in may_hold:
                    may_hold.add(callee)
                    work.append(callee)
    while work:
        key = work.pop()
        m = methods.get(key)
        if m is None:
            continue  # dangling reference; resolution will fail at run time
        for ins in m.code:
            if ins.op == bc.INVOKE:
                callee = (ins.a[0], ins.a[1])
                if callee not in may_hold:
                    may_hold.add(callee)
                    work.append(callee)

    elided = 0
    for key, m in methods.items():
        if key in may_hold:
            continue
        changed = 0
        for pc, ins in enumerate(m.code):
            if ins.barrier and not inside(key, pc):
                ins.barrier = False
                changed += 1
        if changed:
            # Elision mutates the code a compiled DecodedMethod closure
            # may have baked in (barrier stores emit BS calls); a stale
            # closure would keep charging the removed barriers.  Linking
            # invalidates too, but predecode can legitimately run before
            # elision (Inspector dumps, direct predecode_method calls).
            m.invalidate_decoded()
            elided += changed
    return elided
