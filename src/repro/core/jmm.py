"""Java-memory-model consistency tracking (paper §2.1–2.2).

The JMM's happens-before visibility rule means a thread T' may legally
observe a value written by thread T *inside a still-active synchronized
section* (Figure 2: through a nested monitor that already exited; Figure 3:
through a volatile variable).  Revoking that section afterwards would make
the observed value appear "out of thin air".  The paper's resolution:

    "disable the revocability of monitors whose rollback could create
    inconsistencies with respect to the JMM ... We mark a monitor M
    non-revocable when a read-write dependency is created between a write
    performed within M and a read performed by another thread."

with the footnote that the write "may additionally be guarded by other
monitors nested within M" — i.e. every section enclosing the write loses
revocability, because rolling back any of them undoes the observed write.

:class:`JmmTracker` implements exactly that: every *logged* (speculative)
write pushes the tuple of sections active at the write onto a per-location,
per-thread stack; a read by a different thread returns the sections of the
latest speculative write so the runtime can mark them; undo pops, commit
clears.  Volatile variables need no special path — they are locations like
any other, and the read barrier fires on volatile reads too, reproducing
the Figure 3 rule as a special case of the general one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.sections import Section
    from repro.vm.threads import VMThread


class JmmTracker:
    """Tracks which heap locations hold speculative (uncommitted) values."""

    __slots__ = ("_map",)

    def __init__(self) -> None:
        #: location -> tid -> stack of section tuples (one per logged write)
        self._map: dict[tuple, dict[int, list[tuple["Section", ...]]]] = {}

    def __len__(self) -> int:
        return len(self._map)

    def on_write(
        self,
        thread: "VMThread",
        loc: tuple,
        active_sections: tuple["Section", ...],
    ) -> None:
        """A speculative write by ``thread`` to ``loc`` was logged."""
        per_tid = self._map.get(loc)
        if per_tid is None:
            per_tid = {}
            self._map[loc] = per_tid
        per_tid.setdefault(thread.tid, []).append(active_sections)

    def on_undo(self, thread: "VMThread", loc: tuple) -> None:
        """The latest speculative write by ``thread`` to ``loc`` was undone."""
        per_tid = self._map.get(loc)
        if per_tid is None:
            return
        stack = per_tid.get(thread.tid)
        if not stack:
            return
        stack.pop()
        if not stack:
            del per_tid[thread.tid]
            if not per_tid:
                del self._map[loc]

    def on_commit(self, thread: "VMThread", locs: Iterable[tuple]) -> None:
        """``thread`` exited its outermost section; its writes are final."""
        tid = thread.tid
        for loc in locs:
            per_tid = self._map.get(loc)
            if per_tid is None:
                continue
            per_tid.pop(tid, None)
            if not per_tid:
                del self._map[loc]

    def on_read(
        self, thread: "VMThread", loc: tuple
    ) -> tuple["Section", ...]:
        """``thread`` read ``loc``.  Returns the sections that must become
        non-revocable: the enclosing sections of the latest speculative
        write by any *other* thread (empty tuple when none)."""
        per_tid = self._map.get(loc)
        if per_tid is None:
            return ()
        tid = thread.tid
        result: tuple["Section", ...] = ()
        for writer_tid, stack in per_tid.items():
            if writer_tid != tid and stack:
                result += stack[-1]
        return result

    def speculative_writers(self, loc: tuple) -> list[int]:
        """Thread ids with live speculative writes to ``loc`` (testing)."""
        per_tid = self._map.get(loc)
        return sorted(per_tid) if per_tid else []

    def clear(self) -> None:
        self._map.clear()
