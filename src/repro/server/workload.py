"""The guest-side thread-pool server.

:func:`build_server` compiles a :class:`ServerConfig` into one guest class
(``Server``) plus a spawn plan:

* per SLA tier, one **generator** thread replays that tier's precomputed
  arrival stream — sleep the next inter-arrival gap, then (under the
  tier's queue lock) either *admit* the request into a bounded ring
  buffer or *shed* it when the queue is over the tier's shed depth or the
  host-side storm detector has raised the ``overload`` flag;
* per tier, ``workers`` **worker** threads at the tier's priority block
  on the queue, dequeue a request id, and either *retry* it (deadline
  passed: exponential backoff ``backoff << attempt`` plus precomputed
  jitter, then re-enqueue with a fresh deadline — until the retry budget
  is spent and the request is *dropped*), or *service* it: a mixed
  read/write transaction over one of ``locks`` shared data locks.

Everything observable — latency samples, shed/timeout/retry/drop/complete
counters — lives in guest statics, written through ordinary barriered
bytecode, so the whole server is transparent to rollback: a revoked
enqueue, dequeue or transaction replays exactly once.

The data plane is where priority inversion lives: a low-tier worker
holding a hot data lock can block a high-tier worker while mid-tier
workers stay runnable.  The modified VMs bound that inversion; the
reports in :mod:`repro.server.report` make the per-tier cost visible.

Request attributes come from :mod:`repro.server.arrivals` streams keyed
only by ``(seed, tier name)`` — guest code draws no randomness — so the
workload is bit-identical across interpreters and worker fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.server import arrivals
from repro.vm.assembler import Asm
from repro.vm.classfile import ClassDef, FieldDef, THROWABLE
from repro.vm.guestlib import (
    RingQueueFields,
    emit_await_item_or_close,
    emit_cache_queue,
    emit_close,
    emit_dequeue,
    emit_elem,
    emit_elem_inc,
    emit_enqueue,
)
from repro.bench.workloads import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vmcore import JVM

#: the guest class every server program is compiled into
SERVER_CLASS = "Server"

#: per-tier counter statics (arrays indexed by tier id)
COUNTER_FIELDS = (
    "shed", "timeouts", "retries", "exhausted", "completed", "errors",
)

#: per-tier config statics (arrays indexed by tier id)
_CONFIG_FIELDS = ("shedd", "tmo", "maxr", "bk")

#: per-request statics (arrays of per-tier arrays indexed by request id)
_REQUEST_FIELDS = (
    "gaps", "arrtime", "deadline", "attempts", "lat", "lockidx",
    "iswrite", "svc", "jitter",
)


@dataclass(frozen=True)
class TierSpec:
    """One SLA class: an arrival process plus a worker pool."""

    name: str
    #: scheduler priority of this tier's workers (higher = more urgent SLA)
    priority: int
    #: open-system arrivals in this tier's stream
    requests: int
    #: mean inter-arrival gap in virtual cycles
    mean_gap: int
    #: arrival process kind — see :data:`repro.server.arrivals.ARRIVAL_KINDS`
    arrival: str = "poisson"
    #: worker threads serving this tier's queue
    workers: int = 2
    #: percent of requests that are read-modify-write transactions
    write_pct: int = 50
    #: mean critical-section loop iterations per request
    svc_iters: int = 24
    #: heavy-tailed service demands (elephant transactions)
    heavy_service: bool = False
    #: request deadline in virtual cycles from admission
    timeout: int = 60_000
    #: retry budget per request before it is dropped
    max_retries: int = 3
    #: base backoff in cycles; attempt ``a`` sleeps ``backoff << (a-1)``
    backoff: int = 2_000
    #: upper bound of the per-attempt seeded jitter added to the backoff
    jitter: int = 1_000
    #: admission control: shed arrivals once queue depth reaches this
    shed_depth: int = 64

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"tier {self.name}: needs at least 1 request")
        if self.workers < 1:
            raise ValueError(f"tier {self.name}: needs at least 1 worker")
        if self.mean_gap < 1 or self.timeout < 1:
            raise ValueError(f"tier {self.name}: gaps/timeouts must be >= 1")
        if self.max_retries < 0 or self.backoff < 1:
            raise ValueError(f"tier {self.name}: bad retry policy")
        if self.shed_depth < 1:
            raise ValueError(f"tier {self.name}: shed_depth must be >= 1")
        if self.arrival not in arrivals.ARRIVAL_KINDS:
            raise ValueError(
                f"tier {self.name}: unknown arrival kind {self.arrival!r}"
            )


@dataclass(frozen=True)
class ServerConfig:
    """A complete server shape: tiers plus the shared data plane."""

    name: str
    tiers: tuple[TierSpec, ...]
    #: shared data locks (the contention focus of the data plane)
    locks: int = 4
    #: cells per data lock's array
    cells: int = 16
    #: percent of requests targeting the hot lock (index 0)
    hot_lock_pct: int = 60
    #: priority of the arrival generators (must outrank every worker so
    #: admission decisions happen promptly under load)
    generator_priority: int = 12
    scheduler: str = "priority"
    #: abort-storm detector: window length in virtual cycles
    storm_window: int = 20_000
    #: revocations per window that open the overload gate
    storm_enter: int = 12
    #: revocations per window below which the gate closes again
    storm_exit: int = 2
    #: sites demoted down the degradation ladder per storm window
    storm_escalations: int = 1

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("server config needs at least one tier")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names in {names}")
        if self.locks < 1 or self.cells < 1:
            raise ValueError("need at least one data lock and one cell")
        if any(t.priority >= self.generator_priority for t in self.tiers):
            raise ValueError("generators must outrank every worker tier")
        if self.storm_exit > self.storm_enter:
            raise ValueError("storm_exit must not exceed storm_enter")

    @property
    def total_requests(self) -> int:
        return sum(t.requests for t in self.tiers)

    @property
    def total_threads(self) -> int:
        return sum(1 + t.workers for t in self.tiers)

    def scaled(self, requests: int) -> "ServerConfig":
        """This config with tier request counts rescaled proportionally
        so the total is (approximately) ``requests``."""
        if requests < len(self.tiers):
            raise ValueError("need at least one request per tier")
        total = self.total_requests
        tiers = tuple(
            TierSpec(**{
                **{f.name: getattr(t, f.name) for f in _tier_fields()},
                "requests": max(1, t.requests * requests // total),
            })
            for t in self.tiers
        )
        return ServerConfig(**{
            **{f.name: getattr(self, f.name) for f in _config_fields()},
            "tiers": tiers,
        })


def _tier_fields():
    from dataclasses import fields as dc_fields

    return dc_fields(TierSpec)


def _config_fields():
    from dataclasses import fields as dc_fields

    return dc_fields(ServerConfig)


@dataclass(frozen=True)
class TierStreams:
    """The host-precomputed request streams of one tier."""

    gaps: list[int] = field(default_factory=list)
    svc: list[int] = field(default_factory=list)
    lockidx: list[int] = field(default_factory=list)
    iswrite: list[int] = field(default_factory=list)
    jitter: list[int] = field(default_factory=list)


def tier_streams(config: ServerConfig, tier: TierSpec,
                 seed: int) -> TierStreams:
    """All request streams for one tier — a pure function of
    ``(seed, tier.name)`` plus the static config, independent of thread
    counts, worker fan-out and interpreter choice."""
    return TierStreams(
        gaps=arrivals.arrival_gaps(
            tier.arrival, arrivals.stream_rng(seed, "gaps", tier.name),
            tier.requests, tier.mean_gap,
        ),
        svc=arrivals.service_demands(
            arrivals.stream_rng(seed, "svc", tier.name),
            tier.requests, tier.svc_iters, heavy=tier.heavy_service,
        ),
        lockidx=arrivals.lock_targets(
            arrivals.stream_rng(seed, "lock", tier.name),
            tier.requests, config.locks, config.hot_lock_pct,
        ),
        iswrite=arrivals.write_flags(
            arrivals.stream_rng(seed, "write", tier.name),
            tier.requests, tier.write_pct,
        ),
        jitter=arrivals.retry_jitter(
            arrivals.stream_rng(seed, "jitter", tier.name),
            tier.requests, tier.max_retries, tier.jitter,
        ),
    )


_QUEUES = RingQueueFields(SERVER_CLASS)


def _emit_generate(config: ServerConfig) -> Asm:
    """``generate(tier)`` — replay one tier's arrival stream."""
    cls = SERVER_CLASS
    g = Asm("generate", argc=1)
    tier = g.arg(0)
    lock, buf, cap = emit_cache_queue(g, _QUEUES, tier)
    gaps = g.local()
    arrt = g.local()
    dl = g.local()
    g.getstatic(cls, "gaps").load(tier).aload().store(gaps)
    g.getstatic(cls, "arrtime").load(tier).aload().store(arrt)
    g.getstatic(cls, "deadline").load(tier).aload().store(dl)
    tmo = g.local()
    shedd = g.local()
    emit_elem(g, cls, "tmo", tier).store(tmo)
    emit_elem(g, cls, "shedd", tier).store(shedd)
    i = g.local()
    now = g.local()

    def over_capacity() -> None:
        # count >= shed_depth  ||  overload gate raised
        emit_elem(g, cls, _QUEUES.count, tier)
        g.load(shedd).ge()
        g.getstatic(cls, "overload").const(0).ne()
        g.or_()

    def admit() -> None:
        g.time().store(now)
        g.load(arrt).load(i).load(now).astore()
        g.load(dl).load(i).load(now).load(tmo).add().astore()
        emit_enqueue(g, _QUEUES, tier, buf, cap, i)
        g.load(lock).notifyall()

    def arrival() -> None:
        g.load(gaps).load(i).aload().sleep()
        g.load(lock)
        with g.sync():
            g.if_then(
                over_capacity,
                lambda: emit_elem_inc(g, cls, "shed", tier),
                admit,
            )

    def stream() -> None:
        g.for_range(i, lambda: g.load(gaps).arraylen(), arrival)

    def close_queue() -> None:
        # even if the generator dies, workers must be released
        g.load(lock)
        with g.sync():
            emit_close(g, _QUEUES, tier, lock)

    g.try_(stream, finally_=close_queue)
    g.ret()
    return g


def _emit_work(config: ServerConfig) -> Asm:
    """``work(tier)`` — one worker: dequeue, retry-or-serve, repeat."""
    cls = SERVER_CLASS
    w = Asm("work", argc=1)
    tier = w.arg(0)
    lock, buf, cap = emit_cache_queue(w, _QUEUES, tier)
    arrt = w.local()
    dl = w.local()
    atts = w.local()
    lat = w.local()
    lx = w.local()
    isw = w.local()
    svc = w.local()
    jit = w.local()
    for slot, name in (
        (arrt, "arrtime"), (dl, "deadline"), (atts, "attempts"),
        (lat, "lat"), (lx, "lockidx"), (isw, "iswrite"), (svc, "svc"),
        (jit, "jitter"),
    ):
        w.getstatic(cls, name).load(tier).aload().store(slot)
    tmo = w.local()
    maxr = w.local()
    bk = w.local()
    emit_elem(w, cls, "tmo", tier).store(tmo)
    emit_elem(w, cls, "maxr", tier).store(maxr)
    emit_elem(w, cls, "bk", tier).store(bk)
    rid = w.local()
    now = w.local()
    att = w.local()
    idx = w.local()
    m = w.local()
    k = w.local()
    acc = w.local()
    cellarr = w.local()
    stop = w.local()
    w.const(0).store(stop)
    w.const(0).store(acc)

    def fetch() -> None:
        w.const(-1).store(rid)
        w.load(lock)
        with w.sync():
            emit_await_item_or_close(w, _QUEUES, tier, lock)
            w.if_then(
                lambda: (
                    emit_elem(w, cls, _QUEUES.count, tier),
                    w.const(0).gt(),
                ),
                lambda: emit_dequeue(w, _QUEUES, tier, buf, cap, rid),
                lambda: w.const(1).store(stop),
            )

    def requeue() -> None:
        w.load(lock)
        with w.sync():
            w.time().store(now)
            w.load(dl).load(rid).load(now).load(tmo).add().astore()
            emit_enqueue(w, _QUEUES, tier, buf, cap, rid)
            w.load(lock).notifyall()

    def backoff_sleep() -> None:
        # backoff << (attempt - 1), plus the request's seeded jitter
        w.load(bk).load(att).const(1).sub().shl()
        w.load(jit)
        w.load(rid).load(maxr).mul().load(att).const(1).sub().add()
        w.aload().add().sleep()

    def timed_out() -> None:
        emit_elem_inc(w, cls, "timeouts", tier)
        w.load(atts).load(rid).aload().const(1).add().store(att)
        w.load(atts).load(rid).load(att).astore()
        w.if_then(
            lambda: w.load(att).load(maxr).gt(),
            lambda: emit_elem_inc(w, cls, "exhausted", tier),
            lambda: (
                emit_elem_inc(w, cls, "retries", tier),
                backoff_sleep(),
                requeue(),
            ),
        )

    def write_txn() -> None:
        w.load(cellarr).load(k).const(config.cells).mod()
        w.load(cellarr).load(k).const(config.cells).mod().aload()
        w.const(1).add().astore()

    def read_txn() -> None:
        w.load(acc)
        w.load(cellarr).load(k).const(config.cells).mod().aload()
        w.add().store(acc)

    def serve() -> None:
        w.load(lx).load(rid).aload().store(idx)
        w.load(svc).load(rid).aload().store(m)
        w.getstatic(cls, "dlocks").load(idx).aload()
        with w.sync():
            w.getstatic(cls, "cells").load(idx).aload().store(cellarr)
            w.if_then(
                lambda: (w.load(isw).load(rid).aload(), w.const(0).ne()),
                lambda: w.for_range(k, lambda: w.load(m), write_txn),
                lambda: w.for_range(k, lambda: w.load(m), read_txn),
            )
        # commit point: latency sample + completion (atomic straight-line)
        w.load(lat).load(rid)
        w.time().load(arrt).load(rid).aload().sub()
        w.astore()
        emit_elem_inc(w, cls, "completed", tier)

    def handle() -> None:
        w.time().store(now)
        w.if_then(
            lambda: w.load(now).load(dl).load(rid).aload().gt(),
            timed_out,
            serve,
        )

    def iteration() -> None:
        fetch()
        w.if_then(lambda: w.load(rid).const(0).ge(), handle)

    def armored() -> None:
        # a poisoned request must not kill the worker; the errors counter
        # tells the report to relax conservation invariants
        w.try_(
            iteration,
            catches=[(
                THROWABLE,
                lambda: (w.pop(), emit_elem_inc(w, cls, "errors", tier)),
            )],
        )

    w.while_(lambda: w.load(stop).const(0).eq(), armored)
    w.ret()
    return w


def build_server(config: ServerConfig, seed: int) -> Workload:
    """Compile ``config`` into a guest program + spawn plan.

    ``seed`` keys the arrival/service/jitter streams (use the run's VM
    seed).  The returned :class:`~repro.bench.workloads.Workload` installs
    like any other: ``workload.install(vm)``.
    """
    streams = [tier_streams(config, t, seed) for t in config.tiers]
    classdef = ClassDef(
        SERVER_CLASS,
        fields=(
            _QUEUES.field_defs()
            + [
                FieldDef(name, "ref", is_static=True)
                for name in _REQUEST_FIELDS + COUNTER_FIELDS + _CONFIG_FIELDS
            ]
            + [
                FieldDef("dlocks", "ref", is_static=True),
                FieldDef("cells", "ref", is_static=True),
                FieldDef("overload", "int", is_static=True),
            ]
        ),
    )
    classdef.add_method(_emit_generate(config).build())
    classdef.add_method(_emit_work(config).build())

    def setup(vm: "JVM") -> None:
        ntiers = len(config.tiers)
        # bounded rings: occupancy can never exceed the tier's request
        # count (a request is re-enqueued only after being dequeued)
        _QUEUES.setup(vm, [t.requests + 1 for t in config.tiers])

        def put_tier_arrays(name: str, per_tier: list[list[int]]) -> None:
            outer = vm.new_array(ntiers)
            for ti, vals in enumerate(per_tier):
                inner = vm.new_array(len(vals), 0)
                for j, v in enumerate(vals):
                    inner.put(j, v)
                outer.put(ti, inner)
            vm.set_static(SERVER_CLASS, name, outer)

        put_tier_arrays("gaps", [s.gaps for s in streams])
        put_tier_arrays("svc", [s.svc for s in streams])
        put_tier_arrays("lockidx", [s.lockidx for s in streams])
        put_tier_arrays("iswrite", [s.iswrite for s in streams])
        put_tier_arrays("jitter", [s.jitter for s in streams])
        zeros = [[0] * t.requests for t in config.tiers]
        put_tier_arrays("arrtime", zeros)
        put_tier_arrays("deadline", zeros)
        put_tier_arrays("attempts", zeros)
        put_tier_arrays("lat", [[-1] * t.requests for t in config.tiers])
        for name in COUNTER_FIELDS:
            vm.set_static(SERVER_CLASS, name, vm.new_array(ntiers, 0))
        for name, values in (
            ("shedd", [t.shed_depth for t in config.tiers]),
            ("tmo", [t.timeout for t in config.tiers]),
            ("maxr", [t.max_retries for t in config.tiers]),
            ("bk", [t.backoff for t in config.tiers]),
        ):
            arr = vm.new_array(ntiers, 0)
            for ti, v in enumerate(values):
                arr.put(ti, v)
            vm.set_static(SERVER_CLASS, name, arr)
        dlocks = vm.new_array(config.locks)
        cells = vm.new_array(config.locks)
        for li in range(config.locks):
            dlocks.put(li, vm.new_object(SERVER_CLASS))
            cells.put(li, vm.new_array(config.cells, 0))
        vm.set_static(SERVER_CLASS, "dlocks", dlocks)
        vm.set_static(SERVER_CLASS, "cells", cells)
        vm.set_static(SERVER_CLASS, "overload", 0)

    spawns: list[tuple[str, list, int, str]] = []
    for ti, t in enumerate(config.tiers):
        spawns.append(
            ("generate", [ti], config.generator_priority, f"{t.name}-gen")
        )
        spawns.extend(
            ("work", [ti], t.priority, f"{t.name}-w{k}")
            for k in range(t.workers)
        )
    return Workload(
        name=f"server-{config.name}",
        classdef=classdef,
        setup=setup,
        spawns=spawns,
    )


def expected_cycle_cap(config: ServerConfig, seed: int) -> int:
    """A generous deterministic ``max_cycles`` bound for one run: the
    arrival span plus every request's worst-case service and retry cost,
    tripled.  Hitting it means the run livelocked, not that the budget
    was tight."""
    streams = [tier_streams(config, t, seed) for t in config.tiers]
    span = max(sum(s.gaps) for s in streams)
    work = 0
    for t, s in zip(config.tiers, streams):
        per_req = 400 + 12 * (sum(s.svc) // max(1, len(s.svc)))
        retry_cost = sum(
            (t.backoff << a) + t.jitter for a in range(t.max_retries)
        )
        work += t.requests * (per_req + retry_cost)
    return 3 * (span + work) + 1_000_000
