"""Named server shapes (``python -m repro.server --preset ...``).

Each preset is a pure function returning a :class:`ServerConfig`; the
registry is source code, so worker processes rebuild identical configs
and the content-addressed result cache stays coherent.  ``--requests``
rescales any preset's tier request counts proportionally.

Remember the simulated machine is a **uniprocessor**: stability is
governed by the *combined* arrival rate against the per-request service
cost, not per-tier rates.  ``baseline`` sits near 50% utilization;
``storm`` and ``chaos-smoke`` are deliberately overloaded so admission
control, timeouts and the abort-storm ladder all engage; ``soak`` is the
scalable acceptance shape; ``fleet`` demonstrates thousand-thread scale.
"""

from __future__ import annotations

from typing import Callable

from repro.server.workload import ServerConfig, TierSpec


def _baseline() -> ServerConfig:
    """Three SLA tiers at ~50% utilization: the well-behaved server."""
    return ServerConfig(
        name="baseline",
        tiers=(
            TierSpec(
                "gold", priority=9, requests=240, mean_gap=2_000,
                arrival="poisson", workers=3, write_pct=40, svc_iters=18,
                timeout=30_000, max_retries=3, backoff=1_500, jitter=700,
                shed_depth=48,
            ),
            TierSpec(
                "silver", priority=6, requests=150, mean_gap=3_200,
                arrival="bursty", workers=2, write_pct=60, svc_iters=24,
                timeout=40_000, max_retries=3, backoff=2_000, jitter=900,
                shed_depth=32,
            ),
            TierSpec(
                "bronze", priority=3, requests=110, mean_gap=4_500,
                arrival="heavy", workers=2, write_pct=70, svc_iters=30,
                heavy_service=True, timeout=60_000, max_retries=2,
                backoff=2_500, jitter=1_100, shed_depth=24,
            ),
        ),
        locks=4, cells=16, hot_lock_pct=55,
        storm_window=25_000, storm_enter=10, storm_exit=2,
    )


def _storm() -> ServerConfig:
    """Heavily overloaded single hot lock: priority inversions, abort
    storms, shedding, retry exhaustion — the ladder's proving ground."""
    return ServerConfig(
        name="storm",
        tiers=(
            TierSpec(
                "gold", priority=9, requests=140, mean_gap=600,
                arrival="bursty", workers=3, write_pct=90, svc_iters=80,
                timeout=60_000, max_retries=3, backoff=800, jitter=400,
                shed_depth=24,
            ),
            TierSpec(
                "silver", priority=5, requests=120, mean_gap=800,
                arrival="poisson", workers=3, write_pct=90, svc_iters=80,
                timeout=60_000, max_retries=3, backoff=1_000, jitter=500,
                shed_depth=24,
            ),
            TierSpec(
                "bronze", priority=2, requests=100, mean_gap=1_000,
                arrival="heavy", workers=2, write_pct=90, svc_iters=240,
                heavy_service=True, timeout=80_000, max_retries=2,
                backoff=1_200, jitter=600, shed_depth=16,
            ),
        ),
        locks=1, cells=8, hot_lock_pct=100,
        storm_window=15_000, storm_enter=6, storm_exit=1,
        storm_escalations=1,
    )


def _chaos_smoke() -> ServerConfig:
    """CI-sized overload shape (~1 minute with chaos + auditor)."""
    return ServerConfig(
        name="chaos-smoke",
        tiers=(
            TierSpec(
                "gold", priority=8, requests=90, mean_gap=900,
                arrival="bursty", workers=2, write_pct=80, svc_iters=36,
                timeout=10_000, max_retries=2, backoff=700, jitter=300,
                shed_depth=12,
            ),
            TierSpec(
                "bronze", priority=3, requests=70, mean_gap=1_200,
                arrival="heavy", workers=2, write_pct=80, svc_iters=48,
                heavy_service=True, timeout=14_000, max_retries=2,
                backoff=900, jitter=400, shed_depth=10,
            ),
        ),
        locks=2, cells=8, hot_lock_pct=80,
        storm_window=12_000, storm_enter=5, storm_exit=1,
    )


def _soak() -> ServerConfig:
    """The scalable acceptance shape: moderate overload across four
    tiers; ``--requests 100000`` turns it into the 10^5-request soak."""
    return ServerConfig(
        name="soak",
        tiers=(
            TierSpec(
                "platinum", priority=9, requests=1_200, mean_gap=3_400,
                arrival="poisson", workers=4, write_pct=50, svc_iters=24,
                timeout=60_000, max_retries=3, backoff=1_200, jitter=600,
                shed_depth=48,
            ),
            TierSpec(
                "gold", priority=7, requests=1_100, mean_gap=4_000,
                arrival="bursty", workers=4, write_pct=60, svc_iters=30,
                timeout=70_000, max_retries=3, backoff=1_400, jitter=700,
                shed_depth=40,
            ),
            TierSpec(
                "silver", priority=5, requests=900, mean_gap=5_000,
                arrival="heavy", workers=4, write_pct=70, svc_iters=36,
                timeout=90_000, max_retries=3, backoff=1_600, jitter=800,
                shed_depth=36,
            ),
            TierSpec(
                "bronze", priority=2, requests=800, mean_gap=6_000,
                arrival="heavy", workers=4, write_pct=80, svc_iters=42,
                heavy_service=True, timeout=120_000, max_retries=2,
                backoff=2_000, jitter=1_000, shed_depth=28,
            ),
        ),
        locks=3, cells=12, hot_lock_pct=50,
        storm_window=20_000, storm_enter=8, storm_exit=2,
    )


def _fleet() -> ServerConfig:
    """Thousand-thread scale demonstrator: 12 tiers, 84 workers each."""
    tiers = tuple(
        TierSpec(
            f"t{i:02d}", priority=2 + (i % 8), requests=40,
            mean_gap=8_000 + 500 * i,
            arrival=("poisson", "bursty", "heavy")[i % 3],
            workers=84, write_pct=50, svc_iters=20, timeout=60_000,
            max_retries=2, backoff=2_000, jitter=1_000, shed_depth=40,
        )
        for i in range(12)
    )
    return ServerConfig(
        name="fleet", tiers=tiers, locks=6, cells=16, hot_lock_pct=40,
        storm_window=40_000, storm_enter=12, storm_exit=2,
    )


PRESETS: dict[str, Callable[[], ServerConfig]] = {
    "baseline": _baseline,
    "storm": _storm,
    "chaos-smoke": _chaos_smoke,
    "soak": _soak,
    "fleet": _fleet,
}


def preset_names() -> list[str]:
    return sorted(PRESETS)


def get_preset(name: str) -> ServerConfig:
    try:
        return PRESETS[name]()
    except KeyError:
        known = ", ".join(preset_names())
        raise KeyError(
            f"unknown server preset {name!r}; known: {known}"
        ) from None
