"""Per-tier latency/goodput reports for server runs.

Every number here is produced by **integer arithmetic** over guest
statics and VM metrics — no floats anywhere — so a report is a pure
function of the run and serializes byte-identically across hosts,
interpreters (``interp`` is deliberately absent from the report) and
worker fan-outs.

Latency percentiles use the nearest-rank method
(:func:`repro.util.stats.nearest_rank`) over the per-request latency
samples the guest program records in ``Server.lat``, streamed through a
bounded deterministic reservoir
(:class:`repro.util.reservoir.LatencyReservoir`) so host memory stays
flat on 10^5+-request soaks; goodput is completions per million virtual
cycles.  The normalized elapsed-time
metric from the paper (§4.1) is added by the CLI's ``--compare`` mode,
which pairs each run with its unmodified-VM baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.server.workload import COUNTER_FIELDS, SERVER_CLASS, ServerConfig
from repro.util.reservoir import LatencyReservoir
from repro.util.stats import nearest_rank

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vmcore import JVM

#: report schema version
REPORT_FORMAT = "repro.server/1"

#: robustness counters lifted from support metrics into every report
ROBUSTNESS_KEYS = (
    "retry_budget_exhausted",
    "degradations_to_inheritance",
    "degradations_to_nonrevocable",
    "starvations_detected",
)


def latency_summary(samples: list[int]) -> dict[str, Any]:
    """p50/p99/p999/max/mean of an (unsorted) integer latency sample.

    An empty sample — a fully-shed or fully-dropped tier completed no
    request, so there is no latency to report — yields the explicit
    ``None`` sentinel (``null`` in JSON, ``-`` in rendered tables) for
    every percentile.  A ``0`` here would read as "instant responses",
    the exact opposite of a tier that served nothing.
    """
    if not samples:
        return {"count": 0, "p50": None, "p99": None, "p999": None,
                "max": None, "mean": None}
    s = sorted(samples)
    return {
        "count": len(s),
        "p50": nearest_rank(s, 50, 100),
        "p99": nearest_rank(s, 99, 100),
        "p999": nearest_rank(s, 999, 1000),
        "max": s[-1],
        "mean": sum(s) // len(s),
    }


def robustness_block(metrics: dict[str, Any]) -> dict[str, int]:
    """The overload-protection counters of one run (any mode: missing
    support counters read as zero on the unmodified VM)."""
    support = metrics.get("support", {}) or {}
    block = {key: support.get(key, 0) for key in ROBUSTNESS_KEYS}
    block["watchdog_trips"] = metrics.get("watchdog_trips", 0)
    return block


def _tier_latencies(vm: "JVM", tier_index: int) -> list[int]:
    """Full (unbounded) latency sample of one tier — parity-test path.

    Reports stream through :func:`_tier_reservoir` instead; this
    materialized list exists so tests can pin the reservoir summary
    against :func:`latency_summary` over the identical sample.
    """
    lat = vm.get_static(SERVER_CLASS, "lat").get(tier_index)
    return [
        lat.get(i) for i in range(len(lat)) if lat.get(i) >= 0
    ]


def _tier_reservoir(vm: "JVM", tier_index: int) -> LatencyReservoir:
    """Stream one tier's latency samples into a bounded reservoir.

    Host memory stays flat in the request count (bounded by distinct
    latency values up to the reservoir capacity), which is what lets
    10^5+-request soaks report exact integer percentiles without
    holding the whole sample.
    """
    lat = vm.get_static(SERVER_CLASS, "lat").get(tier_index)
    reservoir = LatencyReservoir()
    for i in range(len(lat)):
        value = lat.get(i)
        if value >= 0:
            reservoir.add(value)
    return reservoir


def tier_counters(vm: "JVM", tier_index: int) -> dict[str, int]:
    """The guest-side per-tier counters of one run."""
    return {
        name: vm.get_static(SERVER_CLASS, name).get(tier_index)
        for name in COUNTER_FIELDS
    }


def build_report(
    vm: "JVM",
    config: ServerConfig,
    *,
    seed: int,
    mode: str,
    outcome: str,
    violations: list[str],
    storm_events: list[dict],
    injected: dict[str, int],
    episodes: list[dict[str, Any]] | None = None,
) -> dict[str, Any]:
    """Assemble the full deterministic report of one quiesced run.

    ``episodes`` is the priority-inversion episode list from the online
    :class:`repro.obs.episodes.EpisodeSink` (None = tracing was off);
    each episode is attributed to the SLA tier of its *blocked* thread.
    """
    metrics = vm.metrics()
    elapsed = metrics["elapsed_cycles"]
    episodes = episodes or []
    tiers: dict[str, Any] = {}
    for ti, tier in enumerate(config.tiers):
        counters = tier_counters(vm, ti)
        reservoir = _tier_reservoir(vm, ti)
        cycles = blocked = revocations = 0
        prefix = f"{tier.name}-"
        for name, tm in metrics["threads"].items():
            if name.startswith(prefix):
                cycles += tm["cycles_executed"]
                blocked += tm["blocked_cycles"]
                revocations += tm["revocations"]
        completed = counters["completed"]
        tiers[tier.name] = {
            "priority": tier.priority,
            "requests": tier.requests,
            "completed": completed,
            "shed": counters["shed"],
            "timeouts": counters["timeouts"],
            "retries": counters["retries"],
            "dropped": counters["exhausted"],
            "errors": counters["errors"],
            "goodput_per_mcycle": (
                completed * 1_000_000 // elapsed if elapsed else 0
            ),
            "latency": reservoir.summary(),
            "cycles": cycles,
            "blocked_cycles": blocked,
            "revocations": revocations,
            "episodes": sum(
                1 for e in episodes if e["tier"] == tier.name
            ),
            "inversion_cycles": sum(
                e["cycles"] for e in episodes if e["tier"] == tier.name
            ),
        }
    by_resolution: dict[str, int] = {}
    for e in episodes:
        by_resolution[e["resolution"]] = (
            by_resolution.get(e["resolution"], 0) + 1
        )
    return {
        "format": REPORT_FORMAT,
        "config": config.name,
        "seed": f"0x{seed:x}",
        "mode": mode,
        "scheduler": config.scheduler,
        "outcome": outcome,
        "violations": violations,
        "elapsed_cycles": elapsed,
        "requests": config.total_requests,
        "threads": len(vm.threads),
        "context_switches": metrics["context_switches"],
        "injected": injected,
        "storm": {
            "events": storm_events,
            "entries": sum(
                1 for e in storm_events if e["kind"] == "enter"
            ),
        },
        "robustness": robustness_block(metrics),
        "episodes": {
            "total": len(episodes),
            "inversion_cycles": sum(e["cycles"] for e in episodes),
            "by_resolution": dict(sorted(by_resolution.items())),
        },
        "trace": {
            "dropped": metrics["trace"]["dropped"],
            "sink_errors": metrics["trace"]["sink_errors"],
        },
        "tiers": tiers,
    }


def _cell(value: Any) -> Any:
    """Table cell for a possibly-absent statistic (``None`` -> ``-``)."""
    return "-" if value is None else value


def render_report(report: dict[str, Any]) -> str:
    """Human-readable per-tier table of one run's report."""
    lines = [
        f"server {report['config']} mode={report['mode']} "
        f"seed={report['seed']} outcome={report['outcome']}",
        f"{report['requests']} requests over {report['threads']} threads "
        f"in {report['elapsed_cycles']} cycles "
        f"({report['context_switches']} context switches)",
    ]
    header = (
        f"{'tier':<10} {'prio':>4} {'req':>7} {'done':>7} {'shed':>6} "
        f"{'tmo':>6} {'retry':>6} {'drop':>6} {'err':>4} "
        f"{'p50':>8} {'p99':>8} {'p999':>8} {'goodput':>8} "
        f"{'episd':>6} {'inv-cyc':>9}"
    )
    lines.append(header)
    for name, t in report["tiers"].items():
        lat = t["latency"]
        lines.append(
            f"{name:<10} {t['priority']:>4} {t['requests']:>7} "
            f"{t['completed']:>7} {t['shed']:>6} {t['timeouts']:>6} "
            f"{t['retries']:>6} {t['dropped']:>6} {t['errors']:>4} "
            f"{_cell(lat['p50']):>8} {_cell(lat['p99']):>8} "
            f"{_cell(lat['p999']):>8} "
            f"{t['goodput_per_mcycle']:>8} "
            f"{t.get('episodes', 0):>6} {t.get('inversion_cycles', 0):>9}"
        )
    ep = report.get("episodes")
    if ep:
        resolutions = " ".join(
            f"{k}={v}" for k, v in ep["by_resolution"].items()
        ) or "none"
        lines.append(
            f"inversion episodes: {ep['total']} "
            f"({ep['inversion_cycles']} blocked cycles) "
            f"resolutions: {resolutions}"
        )
    rb = report["robustness"]
    lines.append(
        "robustness: "
        + " ".join(f"{k}={rb[k]}" for k in sorted(rb))
    )
    storm = report["storm"]
    lines.append(f"abort storms: {storm['entries']}")
    for event in storm["events"]:
        if event["kind"] == "enter":
            escalated = ",".join(event["escalated"]) or "none"
            lines.append(
                f"  storm @ {event['cycle']}: {event['revocations']} "
                f"revocations/window, escalated: {escalated}"
            )
        else:
            lines.append(
                f"  clear @ {event['cycle']}: {event['revocations']} "
                "revocations/window"
            )
    if report["injected"]:
        inj = ", ".join(
            f"{k}={v}" for k, v in report["injected"].items()
        )
        lines.append(f"faults injected: {inj}")
    if report["violations"]:
        lines.append(f"VIOLATIONS ({len(report['violations'])}):")
        lines.extend(f"  {v}" for v in report["violations"])
    else:
        lines.append("violations: none")
    return "\n".join(lines)
