"""Command-line server plane: ``python -m repro.server``.

Examples::

    python -m repro.server --list
    python -m repro.server --preset baseline
    python -m repro.server --preset storm --seeds 3 --json
    python -m repro.server --preset soak --requests 100000 --chaos
    python -m repro.server --preset chaos-smoke --chaos --jobs 4
    python -m repro.server --preset baseline --compare
    python -m repro.server --preset chaos-smoke --inject-bug undo-drop

Cells fan out through the bench :class:`~repro.bench.parallel.RunEngine`
(``--jobs`` / ``REPRO_BENCH_JOBS``) with content-addressed caching.
Stdout is a pure function of the arguments — byte-identical across
``--interp``, worker counts and cache state; engine statistics go to
stderr.  Exit status is 0 when every run held its invariants — except
under ``--inject-bug``, the negative control, where a *detected*
violation is the passing outcome.

``--compare`` adds an unmodified-VM baseline run per seed and reports
the paper's normalized elapsed-time metric (mode cycles / unmodified
cycles) per seed.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.server.plane import ServerSpec, run_server_cell, server_cell_key
from repro.server.presets import get_preset, preset_names
from repro.server.report import render_report


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="open-system server workload plane: seeded arrivals, "
                    "SLA tiers, overload protection, chaos soak",
    )
    parser.add_argument(
        "--preset", default="baseline",
        help="server shape (see --list; default baseline)",
    )
    parser.add_argument(
        "--requests", type=int, default=0,
        help="rescale tier request counts to this total (0 = preset)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1,
        help="sweep indices 1..N (default 1)",
    )
    parser.add_argument(
        "--mode", default="rollback",
        choices=["unmodified", "rollback", "inheritance", "ceiling"],
        help="VM policy mode (default rollback)",
    )
    parser.add_argument(
        "--interp", default="fast", choices=["fast", "reference"],
        help="interpreter engine (reports are identical either way)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="arm the chaos fault plan with the invariant auditor",
    )
    parser.add_argument(
        "--inject-bug", default="", choices=["", "undo-drop"],
        help="negative control: arm a genuine seeded defect; exit 0 "
             "only if the run DETECTS it",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="add an unmodified baseline per seed and report the "
             "paper's normalized elapsed-time metric",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attach the cycle profiler to every run",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the machine-readable report instead of tables",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default REPRO_BENCH_JOBS; 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list preset names and exit",
    )
    return parser


def _engine(args):
    from repro.bench.parallel import RunEngine

    engine = RunEngine.from_env()
    if args.jobs is not None:
        engine = RunEngine(jobs=max(1, args.jobs), cache=engine.cache)
    if args.no_cache:
        engine = RunEngine(jobs=engine.jobs, cache=None)
    return engine


def _cmd_list() -> int:
    for name in preset_names():
        config = get_preset(name)
        print(
            f"{name}: {len(config.tiers)} tiers, "
            f"{config.total_requests} requests, "
            f"{config.total_threads} threads"
        )
    return 0


def run_sweep(args) -> dict:
    """Run the sweep and assemble the aggregate report (pure function of
    the arguments; fan-out and caching are invisible in the output)."""
    specs = [
        ServerSpec(
            preset=args.preset,
            requests=args.requests,
            seed_index=index,
            mode=args.mode,
            interp=args.interp,
            chaos=args.chaos,
            inject_bug=args.inject_bug,
            profile=args.profile,
        )
        for index in range(1, args.seeds + 1)
    ]
    if args.compare:
        specs += [
            ServerSpec(
                preset=args.preset,
                requests=args.requests,
                seed_index=index,
                mode="unmodified",
                interp=args.interp,
                profile=args.profile,
            )
            for index in range(1, args.seeds + 1)
        ]
    engine = _engine(args)
    cells = engine.map(run_server_cell, specs, key_fn=server_cell_key)
    print(engine.stats.render(), file=sys.stderr)
    runs = cells[: args.seeds]
    report = {
        "preset": args.preset,
        "requests": args.requests or None,
        "seeds": args.seeds,
        "mode": args.mode,
        "chaos": args.chaos,
        "inject_bug": args.inject_bug,
        "runs": runs,
        "violations": sum(len(r["violations"]) for r in runs),
    }
    if args.compare:
        baselines = cells[args.seeds:]
        report["normalized_elapsed"] = {
            run["seed"]: (
                f"{run['elapsed_cycles'] / base['elapsed_cycles']:.4f}"
                if base["elapsed_cycles"]
                else "inf"
            )
            for run, base in zip(runs, baselines)
        }
        report["baseline_runs"] = baselines
    return report


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        return _cmd_list()
    if args.requests and args.requests < len(get_preset(args.preset).tiers):
        _parser().error("--requests must cover at least one per tier")
    report = run_sweep(args)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for run in report["runs"]:
            print(render_report(run))
            print()
        if "normalized_elapsed" in report:
            print("normalized elapsed time vs unmodified baseline:")
            for seed, ratio in report["normalized_elapsed"].items():
                print(f"  {seed}: {ratio}")
        print(
            f"{report['seeds']} run(s), "
            f"{report['violations']} violation(s)"
        )
    detected = report["violations"] > 0
    if args.inject_bug:
        # negative control: the seeded defect MUST be caught
        if detected:
            print(
                "OK: seeded defect detected by the auditor/invariants",
                file=sys.stderr,
            )
            return 0
        print(
            "FAIL: seeded undo-drop defect went undetected",
            file=sys.stderr,
        )
        return 1
    if detected:
        print(
            f"FAIL: {report['violations']} invariant violation(s)",
            file=sys.stderr,
        )
        return 1
    print("OK: zero invariant violations", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
