"""Command-line server plane: ``python -m repro.server``.

Examples::

    python -m repro.server --list
    python -m repro.server --preset baseline
    python -m repro.server --preset storm --seeds 3 --json
    python -m repro.server --preset soak --requests 100000 --chaos
    python -m repro.server --preset chaos-smoke --chaos --jobs 4
    python -m repro.server --preset baseline --compare
    python -m repro.server --preset chaos-smoke --inject-bug undo-drop
    python -m repro.server --preset storm --chaos --replay 2

When a sweep fails, one ``REPLAY:`` line per offending cell goes to
stderr — a copy-pastable command that round-trips every flag shaping
that cell (preset, requests, mode, interp, chaos, inject-bug, profile)
plus ``--replay INDEX``, which re-runs exactly that cell serially and
uncached with the same per-cell exit semantics.

Cells fan out through the bench :class:`~repro.bench.parallel.RunEngine`
(``--jobs`` / ``REPRO_BENCH_JOBS``) with content-addressed caching.
Stdout is a pure function of the arguments — byte-identical across
``--interp``, worker counts and cache state; engine statistics go to
stderr.  Exit status is 0 when every run held its invariants — except
under ``--inject-bug``, the negative control, where a *detected*
violation is the passing outcome.

``--compare`` adds an unmodified-VM baseline run per seed and reports
the paper's normalized elapsed-time metric (mode cycles / unmodified
cycles) per seed.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.server.plane import ServerSpec, run_server_cell, server_cell_key
from repro.server.presets import get_preset, preset_names
from repro.server.report import render_report


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="open-system server workload plane: seeded arrivals, "
                    "SLA tiers, overload protection, chaos soak",
    )
    parser.add_argument(
        "--preset", default="baseline",
        help="server shape (see --list; default baseline)",
    )
    parser.add_argument(
        "--requests", type=int, default=0,
        help="rescale tier request counts to this total (0 = preset)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1,
        help="sweep indices 1..N (default 1)",
    )
    parser.add_argument(
        "--mode", default="rollback",
        choices=["unmodified", "rollback", "inheritance", "ceiling"],
        help="VM policy mode (default rollback)",
    )
    parser.add_argument(
        "--interp", default="fast", choices=["fast", "reference"],
        help="interpreter engine (reports are identical either way)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="arm the chaos fault plan with the invariant auditor",
    )
    parser.add_argument(
        "--inject-bug", default="", choices=["", "undo-drop"],
        help="negative control: arm a genuine seeded defect; exit 0 "
             "only if the run DETECTS it",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="add an unmodified baseline per seed and report the "
             "paper's normalized elapsed-time metric",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attach the cycle profiler to every run",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the machine-readable report instead of tables",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default REPRO_BENCH_JOBS; 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--replay", type=int, default=None, metavar="INDEX",
        help="re-run exactly one sweep-index cell serially, no cache, "
             "no fan-out, and print its report (the reproduction path "
             "printed on stderr when a sweep fails)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list preset names and exit",
    )
    from repro.fleet.cli import add_fleet_args

    add_fleet_args(parser)
    return parser


def _engine(args):
    from repro.bench.parallel import RunEngine
    from repro.fleet.cli import resolve_fleet_engine

    engine = RunEngine.from_env()
    if args.jobs is not None:
        engine = RunEngine(jobs=max(1, args.jobs), cache=engine.cache)
    if args.no_cache:
        engine = RunEngine(jobs=engine.jobs, cache=None)
    fleet = resolve_fleet_engine(args, engine.cache)
    return fleet if fleet is not None else engine


def _cmd_list() -> int:
    for name in preset_names():
        config = get_preset(name)
        print(
            f"{name}: {len(config.tiers)} tiers, "
            f"{config.total_requests} requests, "
            f"{config.total_threads} threads"
        )
    return 0


def _spec(args, index: int) -> ServerSpec:
    """The ServerSpec of sweep cell ``index`` under these arguments."""
    return ServerSpec(
        preset=args.preset,
        requests=args.requests,
        seed_index=index,
        mode=args.mode,
        interp=args.interp,
        chaos=args.chaos,
        inject_bug=args.inject_bug,
        profile=args.profile,
    )


def _replay_command(args, index: int) -> str:
    """One-command reproduction line for sweep cell ``index``.

    Round-trips every flag that shapes the cell — preset, request
    rescale, mode, interpreter engine, chaos plan, seeded defect,
    profiler — so executing the emitted command verbatim re-runs the
    exact failing :class:`ServerSpec`.  ``--jobs``/``--seeds``/
    ``--no-cache`` are absent by design: the replay is serial and
    uncached, and each cell is a pure function of its spec.
    """
    parts = [
        "REPLAY: PYTHONPATH=src python -m repro.server",
        f"--preset {args.preset}",
    ]
    if args.requests:
        parts.append(f"--requests {args.requests}")
    parts.append(f"--mode {args.mode}")
    parts.append(f"--interp {args.interp}")
    if args.chaos:
        parts.append("--chaos")
    if args.inject_bug:
        parts.append(f"--inject-bug {args.inject_bug}")
    if args.profile:
        parts.append("--profile")
    parts.append(f"--replay {index}")
    return " ".join(parts)


def run_sweep(args) -> dict:
    """Run the sweep and assemble the aggregate report (pure function of
    the arguments; fan-out and caching are invisible in the output)."""
    specs = [_spec(args, index) for index in range(1, args.seeds + 1)]
    if args.compare:
        specs += [
            ServerSpec(
                preset=args.preset,
                requests=args.requests,
                seed_index=index,
                mode="unmodified",
                interp=args.interp,
                profile=args.profile,
            )
            for index in range(1, args.seeds + 1)
        ]
    engine = _engine(args)
    try:
        cells = engine.map(run_server_cell, specs, key_fn=server_cell_key)
    finally:
        engine.close()
    print(engine.stats.render(), file=sys.stderr)
    for line in engine.stats.render_workers():
        print(line, file=sys.stderr)
    runs = cells[: args.seeds]
    report = {
        "preset": args.preset,
        "requests": args.requests or None,
        "seeds": args.seeds,
        "mode": args.mode,
        "chaos": args.chaos,
        "inject_bug": args.inject_bug,
        "runs": runs,
        "violations": sum(len(r["violations"]) for r in runs),
    }
    if args.compare:
        baselines = cells[args.seeds:]
        report["normalized_elapsed"] = {
            run["seed"]: (
                f"{run['elapsed_cycles'] / base['elapsed_cycles']:.4f}"
                if base["elapsed_cycles"]
                else "inf"
            )
            for run, base in zip(runs, baselines)
        }
        report["baseline_runs"] = baselines
    return report


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        return _cmd_list()
    if args.fleet == "worker":
        from repro.fleet.cli import run_fleet_worker

        return run_fleet_worker(args)
    if args.requests and args.requests < len(get_preset(args.preset).tiers):
        _parser().error("--requests must cover at least one per tier")
    if args.replay is not None:
        # serial, uncached, single-cell reproduction path: same spec
        # fields as the sweep, same per-cell pass/fail semantics
        run = run_server_cell(_spec(args, args.replay))
        print(json.dumps(run, indent=2, sort_keys=True))
        detected = bool(run["violations"])
        if args.inject_bug:
            return 0 if detected else 1
        return 1 if detected else 0
    report = run_sweep(args)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for run in report["runs"]:
            print(render_report(run))
            print()
        if "normalized_elapsed" in report:
            print("normalized elapsed time vs unmodified baseline:")
            for seed, ratio in report["normalized_elapsed"].items():
                print(f"  {seed}: {ratio}")
        print(
            f"{report['seeds']} run(s), "
            f"{report['violations']} violation(s)"
        )
    # one copy-pastable reproduction command per offending cell: runs
    # that violated invariants — or, under the negative control, runs
    # that failed to detect the seeded defect
    for index, run in enumerate(report["runs"], start=1):
        failed = (
            not run["violations"] if args.inject_bug
            else bool(run["violations"])
        )
        if failed:
            print(
                f"{_replay_command(args, index)}"
                f"  # vm seed {run['seed']}",
                file=sys.stderr,
            )
    detected = report["violations"] > 0
    if args.inject_bug:
        # negative control: the seeded defect MUST be caught
        if detected:
            print(
                "OK: seeded defect detected by the auditor/invariants",
                file=sys.stderr,
            )
            return 0
        print(
            "FAIL: seeded undo-drop defect went undetected",
            file=sys.stderr,
        )
        return 1
    if detected:
        print(
            f"FAIL: {report['violations']} invariant violation(s)",
            file=sys.stderr,
        )
        return 1
    print("OK: zero invariant violations", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
