"""Seeded open-system arrival processes.

Every request stream the server plane consumes — inter-arrival gaps,
per-request lock targets, read/write mix, service demands, retry jitter —
is precomputed host-side from ``derive_seed(seed, "server", purpose,
tier)``.  Two consequences, both load-bearing:

* the streams are a pure function of ``(seed, tier name)`` — the number
  of guest threads, worker fan-out (``REPRO_BENCH_JOBS``) and interpreter
  choice cannot perturb them (a regression test pins this);
* nothing in guest code draws randomness (no ``RAND``/``PAUSE``
  bytecodes), so the schedule itself stays a pure function of the VM
  seed.

All samplers use **integer arithmetic only**.  ``DeterministicRng`` gives
cross-platform uniform draws, but shaping them through ``math.log``/
``math.pow`` would tie the streams to the host libm's last-ulp behaviour;
the fixed-point exponential below keeps golden values exact everywhere.
"""

from __future__ import annotations

from repro.util.rng import DeterministicRng, derive_seed

#: arrival-process kinds a tier can declare
ARRIVAL_KINDS = ("poisson", "bursty", "heavy")

#: fixed-point fraction bits for the integer exponential sampler
_FRAC = 20
#: round(ln(2) * 2**_FRAC)
_LN2_FP = 726817


def _log2_fp(u: int) -> int:
    """``floor(log2(u) * 2**_FRAC)`` for ``u >= 1``, by the classic
    bit-at-a-time binary-logarithm recurrence (integer-only)."""
    n = u.bit_length() - 1
    result = n << _FRAC
    x = (u << 32) >> n  # mantissa in [1, 2) as Q32
    for i in range(_FRAC):
        x = (x * x) >> 32
        if x >= (2 << 32):
            x >>= 1
            result |= 1 << (_FRAC - 1 - i)
    return result


def int_exponential(rng: DeterministicRng, mean: int) -> int:
    """Exponentially distributed integer draw with the given mean.

    Inverse-CDF on a raw 64-bit uniform: ``-mean * ln(u / 2**64)``
    evaluated in fixed point.  Every intermediate is an int, so the draw
    is bit-stable across platforms and Python versions.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    u = rng.next_u64() or 1
    ln_units = (64 << _FRAC) - _log2_fp(u)  # -log2(u/2^64), Q20
    return (mean * ln_units * _LN2_FP) >> (2 * _FRAC)


def _heavy_multiplier(rng: DeterministicRng, cap: int = 8) -> int:
    """Discrete Pareto-like multiplier: ``3**j`` with
    ``P(j) = (3/4) * (1/4)**j`` (capped), giving mean 3 with rare large
    spikes — the heavy tail without any float ``pow``."""
    u = rng.next_u64()
    j = 0
    while j < cap and (u & 3) == 0:
        j += 1
        u >>= 2
    return 3 ** j


def stream_rng(seed: int, purpose: str, tier: str) -> DeterministicRng:
    """The RNG for one (purpose, tier) stream of one run."""
    return DeterministicRng(derive_seed(seed, "server", purpose, tier))


def arrival_gaps(
    kind: str,
    rng: DeterministicRng,
    count: int,
    mean_gap: int,
    *,
    burst_len: int = 16,
    burst_factor: int = 8,
) -> list[int]:
    """``count`` inter-arrival gaps (virtual cycles) with mean ``mean_gap``.

    ``poisson``
        i.i.d. exponential gaps — the open-system baseline.
    ``bursty``
        on/off modulation: blocks of ``burst_len`` arrivals alternate
        between a fast phase (mean ``mean_gap // burst_factor``) and a
        slow phase chosen so the overall mean stays ``mean_gap``.
    ``heavy``
        exponential base gaps scaled by a discrete Pareto-like
        multiplier; mean stays ``mean_gap`` but the tail produces long
        quiet periods followed by dense arrivals.
    """
    if kind not in ARRIVAL_KINDS:
        raise ValueError(
            f"unknown arrival kind {kind!r}; known: {ARRIVAL_KINDS}"
        )
    if count < 0:
        raise ValueError("count must be non-negative")
    if kind == "poisson":
        return [int_exponential(rng, mean_gap) for _ in range(count)]
    if kind == "bursty":
        fast = max(1, mean_gap // burst_factor)
        slow = max(1, 2 * mean_gap - fast)
        gaps = []
        for i in range(count):
            mean = fast if (i // burst_len) % 2 == 0 else slow
            gaps.append(int_exponential(rng, mean))
        return gaps
    # heavy: base mean of mean_gap/3 against a mean-3 multiplier
    base = max(1, mean_gap // 3)
    return [
        int_exponential(rng, base) * _heavy_multiplier(rng)
        for _ in range(count)
    ]


def service_demands(
    rng: DeterministicRng, count: int, mean_iters: int, *, heavy: bool
) -> list[int]:
    """Per-request service loop iterations (critical-section length).

    Uniform around the mean; when ``heavy``, scaled by the Pareto-like
    multiplier so a tier can model occasional elephant transactions.
    """
    lo = max(1, mean_iters // 2)
    hi = max(lo, mean_iters + mean_iters // 2)
    out = []
    for _ in range(count):
        iters = rng.randint(lo, hi)
        if heavy:
            iters *= _heavy_multiplier(rng, cap=4)
        out.append(iters)
    return out


def lock_targets(
    rng: DeterministicRng, count: int, locks: int, hot_pct: int
) -> list[int]:
    """Per-request data-lock index: ``hot_pct`` percent hit lock 0 (the
    contention focus), the rest spread uniformly over the others."""
    if locks < 1:
        raise ValueError("need at least one data lock")
    out = []
    for _ in range(count):
        if locks == 1 or rng.randint(0, 99) < hot_pct:
            out.append(0)
        else:
            out.append(rng.randint(1, locks - 1))
    return out


def write_flags(
    rng: DeterministicRng, count: int, write_pct: int
) -> list[int]:
    """Per-request transaction kind: 1 = read-modify-write, 0 = read."""
    return [
        1 if rng.randint(0, 99) < write_pct else 0 for _ in range(count)
    ]


def retry_jitter(
    rng: DeterministicRng, count: int, retries: int, bound: int
) -> list[int]:
    """Flat ``count * retries`` jitter table for the exponential-backoff
    sleeps (entry ``rid * retries + attempt``), uniform in [0, bound]."""
    slots = count * max(1, retries)
    if bound <= 0:
        return [0] * slots
    return [rng.randint(0, bound) for _ in range(slots)]
