"""The open-system server workload plane (``python -m repro.server``).

Seeded arrival processes (:mod:`repro.server.arrivals`) feed a guest-side
thread-pool server (:mod:`repro.server.workload`) through bounded request
queues; an overload-protection plane (:mod:`repro.server.plane`) layers
admission control, timeout/retry with backoff + jitter, an abort-storm
detector wired to the graceful-degradation ladder, and a chaos soak mode
driving the fault plane under the invariant auditor.  Reports
(:mod:`repro.server.report`) are deterministic: byte-identical across
interpreters, worker counts and cache states.
"""

from repro.server.workload import ServerConfig, TierSpec, build_server

__all__ = ["ServerConfig", "TierSpec", "build_server"]
