"""The overload-protection plane: storm detection, chaos soak, cells.

Three robustness layers stack on top of the guest server from
:mod:`repro.server.workload`:

* the guest program itself retries timed-out requests with exponential
  backoff + seeded jitter, sheds arrivals past the per-tier queue depth,
  and drops requests whose retry budget is spent;
* the :class:`AbortStormDetector` — a deterministic host-side slice hook
  — watches the revocation rate per fixed virtual-cycle window.  When a
  window's completed revocations cross ``storm_enter`` it raises the
  guest-visible ``Server.overload`` gate (generators shed every arrival
  while it is up) and demotes the hottest section site one rung down the
  PR-1 graceful-degradation ladder (revocable → priority-inheritance →
  non-revocable) via
  :meth:`~repro.core.revocation.RollbackSupport.escalate_hottest_site`;
  when the rate falls to ``storm_exit`` the gate drops again.  Every
  decision depends only on the virtual clock and VM metrics, so the
  storm → escalation → recovery sequence is replayable from the seed;
* chaos soak mode (``--chaos``) arms the fault plane
  (:data:`CHAOS_PLAN`: revocation storms, handoff delays, benign undo
  perturbations — never ``undo_drop`` or guest exceptions, which are
  reserved for the seeded-defect negative control) with the post-rollback
  invariant auditor enabled, and :func:`check_server_invariants` asserts
  request conservation and data-plane integrity after quiescence.

:func:`run_server_cell` is the pool-picklable worker entry: one
:class:`ServerSpec` in, one deterministic report fragment out, fanned
through :class:`repro.bench.parallel.RunEngine` under the content address
:func:`server_cell_key`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import (
    DeadlockError,
    InvariantViolation,
    ReproError,
    StarvationError,
)
from repro.faults.plane import FaultPlan
from repro.server.report import build_report
from repro.server.workload import (
    SERVER_CLASS,
    ServerConfig,
    build_server,
    expected_cycle_cap,
    tier_streams,
)
from repro.util.rng import sweep_seed
from repro.vm.vmcore import JVM, VMOptions

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vmcore import JVM as _JVM

#: the chaos-soak fault plan: adversarial but behaviour-preserving kinds
#: only.  ``guest_exception`` would kill pool threads (conservation noise)
#: and ``undo_drop`` is a genuine seeded defect — both stay out of soak
#: campaigns and are exercised by the negative control instead.
CHAOS_PLAN = FaultPlan(
    seed=0xC4A0,
    revocation_storm_rate=0.10,
    handoff_delay_rate=0.02,
    handoff_delay_cycles=1_500,
    undo_perturb_rate=0.5,
)

#: negative control (``--inject-bug undo-drop``): a rollback occasionally
#: loses one undo entry, leaking an aborted store.  The auditor MUST
#: flag this — a clean report here would mean the soak cannot detect
#: real corruption.
UNDO_DROP_PLAN = FaultPlan(
    seed=0xC4A0,
    revocation_storm_rate=0.05,
    undo_drop_rate=0.25,
)


@dataclass(frozen=True)
class ServerSpec:
    """Pure, picklable identity of one server run (one cache cell)."""

    preset: str
    #: 0 = the preset's own request counts; otherwise tiers are rescaled
    #: proportionally to this total
    requests: int = 0
    #: sweep index: the VM seed is ``sweep_seed("server", config, index)``
    seed_index: int = 1
    mode: str = "rollback"
    interp: str = "fast"
    chaos: bool = False
    #: "" or "undo-drop" (the negative control)
    inject_bug: str = ""
    profile: bool = False


class AbortStormDetector:
    """Windowed revocation-rate watcher wired to the degradation ladder.

    Installed as a ``vm.slice_hooks`` observer.  All state transitions
    happen at fixed window boundaries of the virtual clock, so a run's
    storm timeline is a pure function of (config, seed, mode) — identical
    across interpreters and host machines.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.window_end = config.storm_window
        self.last_completed = 0
        self.active = False
        #: deterministic storm timeline: dicts with kind "enter"/"exit"
        self.events: list[dict] = []

    def __call__(self, vm: "JVM") -> None:
        while vm.clock.now >= self.window_end:
            self._close_window(vm)
            self.window_end += self.config.storm_window

    def _completed_revocations(self, vm: "JVM") -> int:
        collect = getattr(vm.support, "collect_metrics", None)
        if not callable(collect):
            return 0
        return collect().get("revocations_completed", 0)

    def _close_window(self, vm: "JVM") -> None:
        completed = self._completed_revocations(vm)
        delta = completed - self.last_completed
        self.last_completed = completed
        if not self.active and delta >= self.config.storm_enter:
            self.active = True
            vm.set_static(SERVER_CLASS, "overload", 1)
            escalated: list[str] = []
            escalate = getattr(vm.support, "escalate_hottest_site", None)
            if callable(escalate):
                for _ in range(self.config.storm_escalations):
                    level = escalate(reason="abort-storm")
                    if level is None:
                        break
                    escalated.append(level)
            vm.trace(
                "abort_storm", None, revocations=delta,
                escalated=",".join(escalated),
            )
            self.events.append({
                "kind": "enter",
                "cycle": self.window_end,
                "revocations": delta,
                "escalated": escalated,
            })
        elif self.active and delta <= self.config.storm_exit:
            self.active = False
            vm.set_static(SERVER_CLASS, "overload", 0)
            vm.trace("storm_cleared", None, revocations=delta)
            self.events.append({
                "kind": "exit",
                "cycle": self.window_end,
                "revocations": delta,
            })


def check_server_invariants(
    vm: "JVM", config: ServerConfig, seed: int
) -> list[str]:
    """Post-quiescence integrity of one server run.

    With zero worker errors the accounting is exact: every admitted
    request was either completed or dropped after its retry budget, every
    completion left one latency sample, the queues drained, and the data
    cells sum to exactly the service demand of the completed write
    transactions (rollbacks replayed exactly once).  Worker errors (only
    possible with guest-exception faults, which soak plans exclude) relax
    the equalities to inequalities.
    """
    problems: list[str] = []
    cls = SERVER_CLASS
    qcount = vm.get_static(cls, "qcount")
    qdone = vm.get_static(cls, "qdone")
    expected_cells = 0
    any_errors = False
    for ti, tier in enumerate(config.tiers):
        shed = vm.get_static(cls, "shed").get(ti)
        exhausted = vm.get_static(cls, "exhausted").get(ti)
        completed = vm.get_static(cls, "completed").get(ti)
        errors = vm.get_static(cls, "errors").get(ti)
        any_errors = any_errors or errors > 0
        lat = vm.get_static(cls, "lat").get(ti)
        sampled = sum(1 for i in range(len(lat)) if lat.get(i) >= 0)
        accounted = shed + exhausted + completed
        if errors == 0:
            if accounted != tier.requests:
                problems.append(
                    f"tier {tier.name}: shed {shed} + dropped {exhausted} "
                    f"+ completed {completed} = {accounted} != "
                    f"{tier.requests} requests"
                )
            if sampled != completed:
                problems.append(
                    f"tier {tier.name}: {sampled} latency samples != "
                    f"{completed} completions"
                )
        elif accounted > tier.requests:
            problems.append(
                f"tier {tier.name}: accounted {accounted} exceeds "
                f"{tier.requests} requests despite {errors} errors"
            )
        if errors == 0 and qcount.get(ti) != 0:
            problems.append(
                f"tier {tier.name}: queue not drained "
                f"({qcount.get(ti)} left)"
            )
        if qdone.get(ti) != 1:
            problems.append(f"tier {tier.name}: queue never closed")
        streams = tier_streams(config, tier, seed)
        expected_cells += sum(
            streams.svc[i]
            for i in range(tier.requests)
            if lat.get(i) >= 0 and streams.iswrite[i]
        )
    if not any_errors:
        cells = vm.get_static(cls, "cells")
        total = 0
        for li in range(config.locks):
            row = cells.get(li)
            total += sum(row.get(ci) for ci in range(len(row)))
        if total != expected_cells:
            problems.append(
                f"data cells sum {total} != {expected_cells} expected "
                "from completed write transactions"
            )
    return problems


def server_invariant_check(
    config: ServerConfig, stream_seed: int
) -> Callable[["JVM"], list[str]]:
    """Campaign-shaped closure over :func:`check_server_invariants` (the
    fault-campaign ``Scenario.check`` signature)."""

    def check(vm: "JVM") -> list[str]:
        return check_server_invariants(vm, config, stream_seed)

    return check


def spec_plan(spec: ServerSpec) -> FaultPlan | None:
    """The fault plan a spec arms (None = faults off)."""
    if spec.inject_bug == "undo-drop":
        return UNDO_DROP_PLAN
    if spec.inject_bug:
        raise ValueError(f"unknown --inject-bug {spec.inject_bug!r}")
    return CHAOS_PLAN if spec.chaos else None


def run_server_cell(spec: ServerSpec) -> dict:
    """Run one server cell; returns its deterministic report.

    The VM seed follows the repo seed-namespace convention: sweep index
    ``i`` of config ``c`` always runs under ``sweep_seed("server", c,
    i)`` — independent of preset ordering, CLI flags or other tools'
    sweeps.  The report never mentions ``interp`` or worker counts: the
    byte-identity contract across both is pinned by tests.
    """
    from repro.obs.episodes import EpisodeSink
    from repro.server.presets import get_preset

    config = get_preset(spec.preset)
    if spec.requests:
        config = config.scaled(spec.requests)
    seed = sweep_seed("server", config.name, spec.seed_index)
    plan = spec_plan(spec)
    options = VMOptions(
        mode=spec.mode,
        scheduler=config.scheduler,
        seed=seed,
        interp=spec.interp,
        profile=spec.profile,
        faults=plan,
        audit_rollbacks=plan is not None,
        max_cycles=expected_cycle_cap(config, seed),
        raise_on_uncaught=False,
        trace=True,
    )
    vm = JVM(options)
    # Stream, don't store: the tracer feeds the online episode sink
    # only, so host memory stays flat however long the soak runs.  The
    # per-tier inversion-episode counts in the report come from here.
    vm.tracer.store = False
    episode_sink = EpisodeSink()
    vm.tracer.add_sink(episode_sink)
    build_server(config, seed).install(vm)
    detector = AbortStormDetector(config)
    vm.slice_hooks.append(detector)
    violations: list[str] = []
    outcome = "completed"
    try:
        vm.run()
    except InvariantViolation as exc:
        outcome = "invariant-violation"
        violations.append(str(exc))
    except (DeadlockError, StarvationError) as exc:
        outcome = type(exc).__name__
        violations.append(f"run did not complete: {type(exc).__name__}")
    except ReproError as exc:
        outcome = type(exc).__name__
        violations.append(f"{type(exc).__name__}: {exc}")
    else:
        violations.extend(check_server_invariants(vm, config, seed))
    report = build_report(
        vm,
        config,
        seed=seed,
        mode=spec.mode,
        outcome=outcome,
        violations=violations,
        storm_events=detector.events,
        injected=vm.fault_plane.report() if vm.fault_plane else {},
        episodes=episode_sink.finish(vm.clock.now),
    )
    report["chaos"] = spec.chaos
    report["inject_bug"] = spec.inject_bug
    return report


def server_cell_key(spec: ServerSpec) -> str:
    """Content address of one cell (identity + source digest)."""
    from repro.bench.parallel import cache_key, source_digest

    return cache_key("server-cell", spec, source_digest())
