"""Parallel benchmark execution engine with content-addressed run caching.

Every benchmark run is a pure deterministic function of
``(config, mode, options, cost_model)`` — the VM replays the same virtual
history no matter which process executes it.  That makes the Figures 5–8
matrix embarrassingly parallel: this module

1. enumerates the full run matrix for a figure/campaign up front,
2. fans the runs out to a worker pool (:class:`RunEngine`),
3. reduces the results back in deterministic matrix order, so every
   report and figure is byte-identical to the serial path, and
4. memoizes completed runs in a content-addressed on-disk cache
   (:class:`ResultCache`) keyed by the run's inputs *plus* a digest of
   the ``repro`` source tree, so re-running an unchanged panel is free.

Environment knobs (all read by :meth:`RunEngine.from_env`):

* ``REPRO_BENCH_JOBS`` — worker processes (default ``os.cpu_count()``;
  ``1`` = the serial in-process path, no pool, no pickling).
* ``REPRO_BENCH_CACHE`` — set to ``0``/``off``/``no`` to disable the
  result cache.
* ``REPRO_BENCH_CACHE_DIR`` — cache location (default
  ``.repro-bench-cache`` under the current directory).

Determinism note: worker scheduling order never reaches the results —
:meth:`RunEngine.map` returns outputs in *input* order, and each worker
builds its own VM from the pickled spec.  Host wall-clock and cache-hit
counters live in :class:`EngineStats`, deliberately *outside* the
deterministic result objects, so callers can print them on stderr while
keeping stdout byte-stable across ``jobs`` settings.
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.bench.harness import RunResult, run_microbench
from repro.bench.microbench import MicrobenchConfig
from repro.vm.clock import CostModel
from repro.vm.vmcore import VMOptions

__all__ = [
    "EngineStats",
    "ResultCache",
    "RunEngine",
    "RunSpec",
    "cache_key",
    "execute_spec",
    "guest_instructions",
    "payload_digest",
    "source_digest",
    "spec_key",
]

DEFAULT_CACHE_DIR = ".repro-bench-cache"


# ------------------------------------------------------------ content keys
def _feed(h: "hashlib._Hash", obj: Any) -> None:
    """Feed a canonical, type-tagged encoding of ``obj`` into ``h``.

    Only value-like shapes are accepted (scalars, bytes, sequences,
    string-keyed mappings, dataclass instances); anything else — and in
    particular anything whose identity could leak into the encoding —
    raises ``TypeError`` so cache keys can never silently diverge
    between processes or Python versions.
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"T" if obj else b"F")
    elif isinstance(obj, int):
        data = str(obj).encode()
        h.update(b"i" + len(data).to_bytes(4, "big") + data)
    elif isinstance(obj, float):
        data = obj.hex().encode()
        h.update(b"f" + len(data).to_bytes(4, "big") + data)
    elif isinstance(obj, str):
        data = obj.encode()
        h.update(b"s" + len(data).to_bytes(4, "big") + data)
    elif isinstance(obj, bytes):
        h.update(b"b" + len(obj).to_bytes(4, "big") + obj)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__qualname__.encode()
        h.update(b"D" + len(name).to_bytes(4, "big") + name)
        for f in dataclasses.fields(obj):
            _feed(h, f.name)
            _feed(h, getattr(obj, f.name))
    elif isinstance(obj, (tuple, list)):
        h.update(b"l" + len(obj).to_bytes(4, "big"))
        for item in obj:
            _feed(h, item)
    elif isinstance(obj, dict):
        if not all(isinstance(k, str) for k in obj):
            raise TypeError("cache keys support only str-keyed mappings")
        h.update(b"d" + len(obj).to_bytes(4, "big"))
        for k in sorted(obj):
            _feed(h, k)
            _feed(h, obj[k])
    else:
        raise TypeError(
            f"cannot build a stable cache key from {type(obj).__name__}"
        )


def cache_key(*parts: Any) -> str:
    """Hex digest of the canonical encoding of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        _feed(h, part)
    return h.hexdigest()


_SOURCE_DIGEST: Optional[str] = None


def source_digest() -> str:
    """Digest of every ``*.py`` file under the installed ``repro`` package.

    Folding this into each run's cache key invalidates the whole cache
    whenever the simulator's source changes — the coarse but safe answer
    to "is a cached RunResult still what this code would compute?".
    Memoized per process (the tree does not change mid-run).
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix().encode()
            h.update(len(rel).to_bytes(4, "big") + rel)
            data = path.read_bytes()
            h.update(len(data).to_bytes(8, "big") + data)
        _SOURCE_DIGEST = h.hexdigest()
    return _SOURCE_DIGEST


# ------------------------------------------------------------- disk cache
_cache_log = logging.getLogger("repro.bench.cache")

#: entry header: magic + hex sha-256 of the pickled payload + newline
_CACHE_MAGIC = b"repro-cache/2 "
_DIGEST_LEN = 64


def payload_digest(payload: bytes) -> str:
    """Integrity digest of a serialized cache/store payload."""
    return hashlib.sha256(payload).hexdigest()


class ResultCache:
    """Content-addressed artifact store: one file per completed run.

    Every entry is written as ``magic + sha256(payload) + payload`` and
    the digest is verified again on **read**: a truncated, corrupted or
    foreign file logs loudly and reads as a miss, so a damaged store can
    slow a sweep down (recompute) but never poison a report.  The same
    ``(payload, digest)`` byte format travels over the fleet wire
    protocol (:mod:`repro.fleet`), which makes this cache the shared
    artifact store of a distributed run: workers push verified payloads,
    coordinators re-verify before storing or serving them.
    """

    def __init__(self, directory: os.PathLike | str = DEFAULT_CACHE_DIR):
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get_bytes(self, key: str) -> Optional[tuple[bytes, str]]:
        """The verified ``(payload, digest)`` of an entry, or None.

        A missing file is a silent miss; a file that exists but fails
        the magic/digest check is *corruption* — logged loudly, removed
        so the recompute can rewrite it, and reported as a miss.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        header = len(_CACHE_MAGIC) + _DIGEST_LEN
        reason = None
        if len(data) < header or not data.startswith(_CACHE_MAGIC):
            reason = "bad or missing header"
        else:
            digest = data[len(_CACHE_MAGIC):header].decode("ascii", "replace")
            payload = data[header:]
            if payload_digest(payload) != digest:
                reason = "sha-256 digest mismatch"
        if reason is not None:
            _cache_log.warning(
                "cache entry %s is corrupt (%s); discarding it and "
                "recomputing the run", path, reason,
            )
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        return payload, digest

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or None on a miss (or a corrupt entry)."""
        entry = self.get_bytes(key)
        if entry is None:
            return None
        payload, _ = entry
        try:
            return pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, TypeError):
            _cache_log.warning(
                "cache entry %s passed its integrity digest but failed to "
                "unpickle; discarding it and recomputing the run",
                self._path(key),
            )
            try:
                os.unlink(self._path(key))
            except OSError:
                pass
            return None

    def put_bytes(
        self, key: str, payload: bytes, digest: Optional[str] = None
    ) -> str:
        """Store an already-pickled payload; returns its digest.

        ``digest``, when given, must match the payload (the fleet
        coordinator passes the digest it verified on receipt).
        """
        actual = payload_digest(payload)
        if digest is not None and digest != actual:
            raise ValueError(
                f"refusing to store payload whose digest {actual[:12]}... "
                f"does not match the claimed {digest[:12]}..."
            )
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename: a crashed run can leave a stale temp file but
        # never a truncated cache entry.
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(_CACHE_MAGIC)
            fh.write(actual.encode("ascii"))
            fh.write(payload)
        os.replace(tmp, path)
        return actual

    def put(self, key: str, value: Any) -> None:
        self.put_bytes(
            key, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )


# ------------------------------------------------------------------ stats
def guest_instructions(result: Any) -> int:
    """Total guest instructions retired in one :class:`RunResult`.

    Read from ``metrics["threads"][*]["instructions"]``; returns 0 for
    results that carry no metrics (the engine is generic over result
    types).  Because runs are deterministic, this total is identical for
    every interpreter (``VMOptions.interp``) — only the host wall clock
    differs, which is exactly what the instructions-per-second numbers
    in :class:`EngineStats` and ``BENCH_interp.json`` compare.
    """
    metrics = getattr(result, "metrics", None)
    if not isinstance(metrics, dict):
        return 0
    threads = metrics.get("threads")
    if not isinstance(threads, dict):
        return 0
    return sum(
        int(info.get("instructions", 0))
        for info in threads.values()
        if isinstance(info, dict)
    )


def trace_health(result: Any) -> tuple[int, int]:
    """``(dropped, sink_errors)`` of one run's tracer.

    Read from ``metrics["trace"]`` on capture artifacts and RunResults,
    falling back to a top-level ``trace`` block (server reports); (0, 0)
    for results that carry neither.  Nonzero values mean the run's
    observability was degraded — spans are missing from its artifacts —
    so the engine surfaces them loudly instead of folding them into a
    clean-looking report.
    """
    metrics = (
        result.get("metrics") if isinstance(result, dict)
        else getattr(result, "metrics", None)
    )
    block = metrics.get("trace") if isinstance(metrics, dict) else None
    if block is None and isinstance(result, dict):
        block = result.get("trace")
    if not isinstance(block, dict):
        return (0, 0)
    return (
        int(block.get("dropped", 0)),
        int(block.get("sink_errors", 0)),
    )


@dataclass
class EngineStats:
    """Host-side observability for one engine (or one :meth:`map` call).

    These numbers describe *how* the runs were executed — they never feed
    back into RunResults, so serial and parallel reports stay identical.
    """

    jobs: int = 1
    runs: int = 0
    executed: int = 0
    cache_hits: int = 0
    #: summed per-run wall-clock seconds (worker-side, executed runs only)
    run_wall: float = 0.0
    #: host wall-clock seconds spent inside map() calls
    host_wall: float = 0.0
    #: worker-side wall-clock seconds per run (0.0 for cache hits),
    #: in matrix order
    run_walls: list[float] = field(default_factory=list, repr=False)
    #: guest instructions retired, executed runs only (cache hits cost no
    #: host time, so they would inflate instructions-per-second)
    guest_instructions: int = 0
    #: guest instructions per run (0 for cache hits), in matrix order
    run_instructions: list[int] = field(default_factory=list, repr=False)
    #: tasks re-queued after a worker died or went silent mid-lease
    reassigned: int = 0
    #: result frames whose payload failed its integrity digest on receipt
    digest_failures: int = 0
    #: trace events dropped at the tracer ring, executed runs only —
    #: nonzero means artifacts are missing spans (degraded observability)
    trace_dropped: int = 0
    #: tracer sinks detached after raising, executed runs only
    trace_sink_errors: int = 0
    #: per-worker breakdown — worker name -> counters.  Cache hits served
    #: before dispatch are credited to the pseudo-worker "coordinator";
    #: the aggregate fields above are always the exact sums of these.
    workers: dict[str, dict[str, Any]] = field(
        default_factory=dict, repr=False
    )

    def worker(self, name: str) -> dict[str, Any]:
        """The (mutable) per-worker counter record for ``name``."""
        return self.workers.setdefault(name, {
            "tasks": 0,
            "cache_hits": 0,
            "run_wall": 0.0,
            "bytes_sent": 0,
            "bytes_received": 0,
            "trace_dropped": 0,
            "trace_sink_errors": 0,
        })

    def credit(
        self,
        name: str,
        *,
        tasks: int = 0,
        cache_hits: int = 0,
        run_wall: float = 0.0,
        bytes_sent: int = 0,
        bytes_received: int = 0,
        trace_dropped: int = 0,
        trace_sink_errors: int = 0,
    ) -> None:
        """Add counters to one worker's record (creating it on demand)."""
        rec = self.worker(name)
        rec["tasks"] += tasks
        rec["cache_hits"] += cache_hits
        rec["run_wall"] += run_wall
        rec["bytes_sent"] += bytes_sent
        rec["bytes_received"] += bytes_received
        rec["trace_dropped"] += trace_dropped
        rec["trace_sink_errors"] += trace_sink_errors

    def merge(self, other: "EngineStats") -> None:
        self.runs += other.runs
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.run_wall += other.run_wall
        self.host_wall += other.host_wall
        self.run_walls.extend(other.run_walls)
        self.guest_instructions += other.guest_instructions
        self.run_instructions.extend(other.run_instructions)
        self.reassigned += other.reassigned
        self.digest_failures += other.digest_failures
        self.trace_dropped += other.trace_dropped
        self.trace_sink_errors += other.trace_sink_errors
        for name, rec in other.workers.items():
            self.credit(name, **rec)

    def ips(self) -> float:
        """Guest instructions per host second over the executed runs."""
        return (
            self.guest_instructions / self.run_wall if self.run_wall else 0.0
        )

    def render(self) -> str:
        """One human line: the speedup evidence the reports cite."""
        speedup = self.run_wall / self.host_wall if self.host_wall else 0.0
        line = (
            f"engine: {self.runs} runs in {self.host_wall:.2f}s host "
            f"wall (jobs={self.jobs}, {self.executed} executed, "
            f"{self.cache_hits} cache hits); cumulative run wall "
            f"{self.run_wall:.2f}s ({speedup:.2f}x vs host)"
        )
        if self.guest_instructions:
            line += (
                f"; {self.guest_instructions} guest instructions "
                f"({self.ips():,.0f}/s)"
            )
        if self.trace_dropped or self.trace_sink_errors:
            line += (
                f"; TRACE DEGRADED: {self.trace_dropped} event(s) "
                f"dropped, {self.trace_sink_errors} sink(s) detached"
            )
        return line

    def render_workers(self) -> list[str]:
        """One line per worker: the imbalance picture of a fleet/pool.

        Empty when the breakdown is trivial (a single execution lane and
        no remote traffic), so serial stderr output stays unchanged.
        """
        lanes = [n for n in self.workers if n != "coordinator"]
        moved = any(
            rec["bytes_sent"] or rec["bytes_received"]
            for rec in self.workers.values()
        )
        degraded = self.trace_dropped or self.trace_sink_errors
        if len(lanes) <= 1 and not moved and not degraded:
            return []
        lines = []
        for name in sorted(self.workers):
            rec = self.workers[name]
            line = (
                f"  worker {name}: {rec['tasks']} tasks, "
                f"{rec['cache_hits']} cache hits, "
                f"{rec['run_wall']:.2f}s run wall"
            )
            if rec["bytes_sent"] or rec["bytes_received"]:
                line += (
                    f", {rec['bytes_sent']}B out / "
                    f"{rec['bytes_received']}B in"
                )
            if rec["trace_dropped"] or rec["trace_sink_errors"]:
                line += (
                    f", TRACE DEGRADED: {rec['trace_dropped']} "
                    f"dropped / {rec['trace_sink_errors']} sink errors"
                )
            lines.append(line)
        if self.reassigned:
            lines.append(
                f"  {self.reassigned} task(s) reassigned after worker "
                "death"
            )
        if self.digest_failures:
            lines.append(
                f"  {self.digest_failures} result(s) failed integrity "
                "verification and were re-executed"
            )
        return lines


# ----------------------------------------------------------------- engine
def _timed_call(
    fn: Callable[[Any], Any], item: Any
) -> tuple[Any, float, str]:
    """Worker entry point: run one task, report wall clock and lane."""
    t0 = time.perf_counter()
    result = fn(item)
    return result, time.perf_counter() - t0, f"pool-{os.getpid()}"


def _env_jobs() -> int:
    raw = os.environ.get("REPRO_BENCH_JOBS", "")
    try:
        jobs = int(raw)
    except ValueError:
        jobs = 0
    return jobs if jobs >= 1 else (os.cpu_count() or 1)


def _env_cache() -> Optional[ResultCache]:
    if os.environ.get("REPRO_BENCH_CACHE", "").lower() in ("0", "off", "no"):
        return None
    return ResultCache(
        os.environ.get("REPRO_BENCH_CACHE_DIR", DEFAULT_CACHE_DIR)
    )


class RunEngine:
    """Deterministic fan-out/fan-in executor for pure benchmark runs.

    ``jobs=1`` executes inline in this process (the historical serial
    path — no pool, no pickling); ``jobs>1`` uses a process pool.  An
    optional :class:`ResultCache` short-circuits runs whose key was
    computed before.  ``stats`` accumulates over the engine's lifetime;
    ``last_stats`` describes only the most recent :meth:`map` call.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.stats = EngineStats(jobs=jobs)
        self.last_stats = EngineStats(jobs=jobs)

    @classmethod
    def from_env(cls) -> "RunEngine":
        """Build an engine from the ``REPRO_BENCH_*`` environment knobs."""
        return cls(jobs=_env_jobs(), cache=_env_cache())

    def close(self) -> None:
        """Release engine resources (a no-op for the local engine; the
        fleet engine overrides this to drain its workers)."""

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        key_fn: Optional[Callable[[Any], str]] = None,
    ) -> list[Any]:
        """Run ``fn`` over ``items``; results come back in input order.

        ``fn`` must be a module-level callable and every item picklable
        when ``jobs > 1``.  With a cache and a ``key_fn``, cached items
        are served without executing; fresh results are stored back.
        """
        t0 = time.perf_counter()
        stats = EngineStats(jobs=self.jobs)
        stats.runs = len(items)
        stats.run_walls = [0.0] * len(items)
        stats.run_instructions = [0] * len(items)
        results: list[Any] = [None] * len(items)

        pending: list[int] = []
        keys: list[Optional[str]] = [None] * len(items)
        for i, item in enumerate(items):
            if self.cache is not None and key_fn is not None:
                keys[i] = key_fn(item)
                hit = self.cache.get(keys[i])
                if hit is not None:
                    results[i] = hit
                    stats.cache_hits += 1
                    stats.credit("coordinator", cache_hits=1)
                    continue
            pending.append(i)

        stats.executed = len(pending)
        if self.jobs == 1 or len(pending) <= 1:
            for i in pending:
                results[i], wall, lane = _timed_call(fn, items[i])
                stats.run_walls[i] = wall
                stats.run_wall += wall
                dropped, sink_errors = trace_health(results[i])
                stats.trace_dropped += dropped
                stats.trace_sink_errors += sink_errors
                stats.credit(
                    "inline", tasks=1, run_wall=wall,
                    trace_dropped=dropped,
                    trace_sink_errors=sink_errors,
                )
        else:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_timed_call, fn, items[i]): i
                    for i in pending
                }
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for fut in done:
                        i = futures[fut]
                        results[i], wall, lane = fut.result()
                        stats.run_walls[i] = wall
                        stats.run_wall += wall
                        dropped, sink_errors = trace_health(results[i])
                        stats.trace_dropped += dropped
                        stats.trace_sink_errors += sink_errors
                        stats.credit(
                            lane, tasks=1, run_wall=wall,
                            trace_dropped=dropped,
                            trace_sink_errors=sink_errors,
                        )

        for i in pending:
            gi = guest_instructions(results[i])
            stats.run_instructions[i] = gi
            stats.guest_instructions += gi

        if self.cache is not None and key_fn is not None:
            for i in pending:
                if results[i] is not None:
                    self.cache.put(keys[i], results[i])

        stats.host_wall = time.perf_counter() - t0
        self.last_stats = stats
        self.stats.merge(stats)
        return results


# ----------------------------------------------------- micro-bench plumbing
@dataclass(frozen=True)
class RunSpec:
    """Picklable description of one VM invocation of the micro-benchmark."""

    config: MicrobenchConfig
    mode: str = "unmodified"
    options: Optional[VMOptions] = None
    cost_model: Optional[CostModel] = None


def execute_spec(spec: RunSpec) -> RunResult:
    """Worker-side entry: build the VM and run one spec (pure function)."""
    return run_microbench(
        spec.config,
        spec.mode,
        options=spec.options,
        cost_model=spec.cost_model,
    )


def spec_key(spec: RunSpec) -> str:
    """Content address of one run: its inputs plus the source digest."""
    return cache_key(
        "microbench-run",
        spec.config,
        spec.mode,
        spec.options,
        spec.cost_model,
        source_digest(),
    )
