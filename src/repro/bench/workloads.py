"""Additional guest workloads beyond the paper's micro-benchmark.

These exercise the claims the paper makes but does not benchmark:

* :func:`build_deadlock_pair` — the classic two-lock deadlock from §1
  ("T1 first acquires lock L1 while T2 acquires L2, then T1 tries to
  acquire L2 while T2 tries to acquire L1"), resolvable by revocation.
* :func:`build_deadlock_ring` — an N-thread circular deadlock.
* :func:`build_medium_inversion` — the unbounded-inversion scenario from
  the introduction: a low-priority lock holder starved by runnable
  medium-priority threads while a high-priority thread blocks.  Under the
  strict priority scheduler the baseline high-priority thread waits for
  *all* medium work; revocation (or inheritance) bounds the wait.
* :func:`build_bank` — random transfers over per-account locks acquired
  in (deliberately) unordered fashion: a deadlock stress test.
* :func:`build_bounded_buffer` — producer/consumer over ``wait``/``notify``:
  exercises the wait-induced non-revocability rules under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.vm.assembler import Asm
from repro.vm.classfile import ClassDef, FieldDef

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vmcore import JVM


@dataclass(frozen=True)
class Workload:
    """A guest program plus its host-side wiring."""

    name: str
    classdef: ClassDef
    #: called after load to initialize statics (lock objects, arrays, ...)
    setup: Callable[["JVM"], None]
    #: (method, args, priority, name) spawn plan
    spawns: list[tuple[str, list, int, str]] = field(default_factory=list)

    def install(self, vm: "JVM") -> None:
        vm.load(self.classdef)
        self.setup(vm)
        for method, args, priority, name in self.spawns:
            vm.spawn(
                self.classdef.name, method, args=args,
                priority=priority, name=name,
            )


# ------------------------------------------------------------- deadlock pair
def build_deadlock_pair(
    *, hold_cycles: int = 3_000, work: int = 50
) -> Workload:
    """Two threads acquiring two locks in opposite orders.

    ``run(first, second)`` takes the *indices* of the locks to take, so one
    generated method serves both threads.  The sleep inside the first
    section makes the interleaving deterministic: both threads hold their
    first lock before either requests its second.
    """
    cls = ClassDef(
        "DeadlockPair",
        fields=[
            FieldDef("locks", "ref", is_static=True),
            FieldDef("counter", "int", is_static=True),
        ],
    )
    run = Asm("run", argc=2)
    first, second = run.arg(0), run.arg(1)
    i = run.local()
    run.getstatic("DeadlockPair", "locks").load(first).aload()
    with run.sync():
        run.const(hold_cycles).sleep()
        run.getstatic("DeadlockPair", "locks").load(second).aload()
        with run.sync():
            run.for_range(i, lambda: run.const(work), lambda: (
                run.getstatic("DeadlockPair", "counter"),
                run.const(1), run.add(),
                run.putstatic("DeadlockPair", "counter"),
            ))
    run.ret()
    cls.add_method(run.build())

    def setup(vm: "JVM") -> None:
        locks = vm.new_array(2)
        locks.put(0, vm.new_object("DeadlockPair"))
        locks.put(1, vm.new_object("DeadlockPair"))
        vm.set_static("DeadlockPair", "locks", locks)

    return Workload(
        name="deadlock-pair",
        classdef=cls,
        setup=setup,
        spawns=[
            ("run", [0, 1], 5, "t1"),
            ("run", [1, 0], 5, "t2"),
        ],
    )


def build_deadlock_ring(
    n: int = 4, *, hold_cycles: int = 3_000, work: int = 50
) -> Workload:
    """N threads, each locking lock[i] then lock[(i+1) % n]."""
    if n < 2:
        raise ValueError("a deadlock ring needs at least 2 threads")
    cls = ClassDef(
        "DeadlockRing",
        fields=[
            FieldDef("locks", "ref", is_static=True),
            FieldDef("counter", "int", is_static=True),
        ],
    )
    run = Asm("run", argc=2)
    first, second = run.arg(0), run.arg(1)
    i = run.local()
    run.getstatic("DeadlockRing", "locks").load(first).aload()
    with run.sync():
        run.const(hold_cycles).sleep()
        run.getstatic("DeadlockRing", "locks").load(second).aload()
        with run.sync():
            run.for_range(i, lambda: run.const(work), lambda: (
                run.getstatic("DeadlockRing", "counter"),
                run.const(1), run.add(),
                run.putstatic("DeadlockRing", "counter"),
            ))
    run.ret()
    cls.add_method(run.build())

    def setup(vm: "JVM") -> None:
        locks = vm.new_array(n)
        for k in range(n):
            locks.put(k, vm.new_object("DeadlockRing"))
        vm.set_static("DeadlockRing", "locks", locks)

    return Workload(
        name=f"deadlock-ring-{n}",
        classdef=cls,
        setup=setup,
        spawns=[
            ("run", [k, (k + 1) % n], 3 + (k % 3), f"ring-{k}")
            for k in range(n)
        ],
    )


# -------------------------------------------------------- medium inversion
def build_medium_inversion(
    *,
    medium_threads: int = 4,
    low_section_iters: int = 2_000,
    medium_work_iters: int = 4_000,
    high_section_iters: int = 200,
) -> Workload:
    """The §1 scenario: Tl holds the lock Th needs while runnable Tm starve
    Tl under strict priority scheduling, making Th's wait unbounded in the
    number of medium threads."""
    cls = ClassDef(
        "Inversion",
        fields=[
            FieldDef("lock", "ref", is_static=True),
            FieldDef("data", "ref", is_static=True),
            FieldDef("spin", "int", is_static=True),
        ],
    )

    locked = Asm("locked", argc=2)  # (inner iterations, start delay)
    i = locked.local()
    locked.load(1).sleep()
    locked.getstatic("Inversion", "lock")
    with locked.sync():
        locked.for_range(i, lambda: locked.load(0), lambda: (
            locked.getstatic("Inversion", "data"),
            locked.load(i).const(16).mod(),
            locked.load(i),
            locked.astore(),
        ))
    locked.ret()
    cls.add_method(locked.build())

    spin = Asm("spin", argc=2)  # (iterations, start delay)
    j = spin.local()
    spin.load(1).sleep()
    spin.for_range(j, lambda: spin.load(0), lambda: (
        spin.getstatic("Inversion", "spin"),
        spin.const(1), spin.add(),
        spin.putstatic("Inversion", "spin"),
    ))
    spin.ret()
    cls.add_method(spin.build())

    def setup(vm: "JVM") -> None:
        vm.set_static("Inversion", "lock", vm.new_object("Inversion"))
        vm.set_static("Inversion", "data", vm.new_array(16))

    # Staged arrivals create the classic §1 interleaving on ANY scheduler:
    # the low thread grabs the lock while everyone else sleeps; the medium
    # threads wake and (under strict priority) starve it; the high thread
    # wakes last and blocks on the lock.
    spawns: list[tuple[str, list, int, str]] = [
        ("locked", [low_section_iters, 1], 1, "low"),
    ]
    spawns += [
        ("spin", [medium_work_iters, 1_500], 5, f"medium-{k}")
        for k in range(medium_threads)
    ]
    spawns.append(("locked", [high_section_iters, 3_000], 10, "high"))
    return Workload(
        name="medium-inversion", classdef=cls, setup=setup, spawns=spawns
    )


# ------------------------------------------------------------------- banking
def build_bank(
    *,
    accounts: int = 8,
    transfers: int = 40,
    amount_bound: int = 25,
    hold_cycles: int = 400,
) -> Workload:
    """Random transfers locking source then destination account objects
    without global ordering — deadlock-prone by construction.  Total
    balance is conserved, which tests assert survives any revocations.

    ``hold_cycles`` models work done on the source account before locking
    the destination; it opens the window in which opposing transfers can
    each grab their first lock (without it, pseudo-preemption would make
    the two acquisitions effectively atomic and deadlock could not occur).
    """
    cls = ClassDef(
        "Bank",
        fields=[
            FieldDef("accounts", "ref", is_static=True),   # lock objects
            FieldDef("balances", "ref", is_static=True),
        ],
    )
    run = Asm("run", argc=1)  # arg: transfer count
    t = run.local()
    src = run.local()
    dst = run.local()
    amt = run.local()

    def one_transfer() -> None:
        run.rand(accounts).store(src)
        run.rand(accounts).store(dst)
        # avoid self-transfer (degenerate recursion is legal but dull)
        run.if_then(
            lambda: run.load(src).load(dst).eq(),
            lambda: (
                run.load(dst).const(1).add().const(accounts).mod()
                .store(dst),
            ),
        )
        run.rand(amount_bound).store(amt)
        run.getstatic("Bank", "accounts").load(src).aload()
        with run.sync():
            run.const(hold_cycles).sleep()
            run.getstatic("Bank", "accounts").load(dst).aload()
            with run.sync():
                run.getstatic("Bank", "balances").load(src)
                run.getstatic("Bank", "balances").load(src).aload()
                run.load(amt).sub()
                run.astore()
                run.getstatic("Bank", "balances").load(dst)
                run.getstatic("Bank", "balances").load(dst).aload()
                run.load(amt).add()
                run.astore()

    run.for_range(t, lambda: run.load(0), one_transfer)
    run.ret()
    cls.add_method(run.build())

    def setup(vm: "JVM") -> None:
        locks = vm.new_array(accounts)
        for k in range(accounts):
            locks.put(k, vm.new_object("Bank"))
        vm.set_static("Bank", "accounts", locks)
        vm.set_static("Bank", "balances", vm.new_array(accounts, 100))

    return Workload(
        name="bank",
        classdef=cls,
        setup=setup,
        spawns=[
            ("run", [transfers], 1 + (k % 3) * 4, f"teller-{k}")
            for k in range(4)
        ],
    )


# ----------------------------------------------------------- bounded buffer
def build_bounded_buffer(
    *,
    capacity: int = 4,
    items_per_producer: int = 20,
    producers: int = 2,
    consumers: int = 2,
) -> Workload:
    """Producer/consumer over wait/notify.

    ``count`` tracks buffer occupancy; ``produced``/``consumed`` count
    totals.  Each consumer takes ``producers * items / consumers`` items so
    the program terminates.  The wait calls make the enclosing sections
    non-revocable, so this workload doubles as a JMM-rule stress test.
    """
    total = producers * items_per_producer
    if total % consumers:
        raise ValueError("consumers must evenly divide total items")
    per_consumer = total // consumers

    cls = ClassDef(
        "Buffer",
        fields=[
            FieldDef("lock", "ref", is_static=True),
            FieldDef("slots", "ref", is_static=True),
            FieldDef("count", "int", is_static=True),
            FieldDef("produced", "int", is_static=True),
            FieldDef("consumed", "int", is_static=True),
        ],
    )

    put = Asm("produce", argc=1)  # arg: item count
    n = put.local()
    put.for_range(n, lambda: put.load(0), lambda: _produce_one(put, capacity))
    put.ret()
    cls.add_method(put.build())

    take = Asm("consume", argc=1)
    m = take.local()
    take.for_range(m, lambda: take.load(0), lambda: _consume_one(take))
    take.ret()
    cls.add_method(take.build())

    def setup(vm: "JVM") -> None:
        vm.set_static("Buffer", "lock", vm.new_object("Buffer"))
        vm.set_static("Buffer", "slots", vm.new_array(capacity))

    spawns = [
        ("produce", [items_per_producer], 3, f"producer-{k}")
        for k in range(producers)
    ] + [
        ("consume", [per_consumer], 7, f"consumer-{k}")
        for k in range(consumers)
    ]
    return Workload(
        name="bounded-buffer", classdef=cls, setup=setup, spawns=spawns
    )


def _produce_one(a: Asm, capacity: int) -> None:
    a.getstatic("Buffer", "lock")
    with a.sync():
        # while (count == capacity) lock.wait();
        a.while_(
            lambda: a.getstatic("Buffer", "count").const(capacity).ge(),
            lambda: a.getstatic("Buffer", "lock").wait_(),
        )
        a.getstatic("Buffer", "slots")
        a.getstatic("Buffer", "count")
        a.getstatic("Buffer", "produced")
        a.astore()  # slots[count] = produced
        a.getstatic("Buffer", "count").const(1).add()
        a.putstatic("Buffer", "count")
        a.getstatic("Buffer", "produced").const(1).add()
        a.putstatic("Buffer", "produced")
        a.getstatic("Buffer", "lock").notifyall()


def _consume_one(a: Asm) -> None:
    a.getstatic("Buffer", "lock")
    with a.sync():
        # while (count == 0) lock.wait();
        a.while_(
            lambda: a.getstatic("Buffer", "count").const(0).le(),
            lambda: a.getstatic("Buffer", "lock").wait_(),
        )
        a.getstatic("Buffer", "count").const(1).sub()
        a.putstatic("Buffer", "count")
        a.getstatic("Buffer", "consumed").const(1).add()
        a.putstatic("Buffer", "consumed")
        a.getstatic("Buffer", "lock").notifyall()


# -------------------------------------------------------------- philosophers
def build_philosophers(
    n: int = 5, *, rounds: int = 6, think_cycles: int = 1_500,
    eat_iters: int = 60,
) -> Workload:
    """Dining philosophers, naive version: everyone picks the left fork
    then the right fork — the classic circular deadlock, resolvable by
    revocation on the rollback VM.

    ``meals`` counts completed eat phases; a run that completes must show
    exactly ``n * rounds`` meals regardless of how many revocations it
    took (transparency).
    """
    if n < 2:
        raise ValueError("need at least two philosophers")
    cls = ClassDef(
        "Philosophers",
        fields=[
            FieldDef("forks", "ref", is_static=True),
            FieldDef("meals", "int", is_static=True),
        ],
    )
    run = Asm("run", argc=2)  # (left index, right index)
    left, right = run.arg(0), run.arg(1)
    r = run.local()
    i = run.local()

    def dine() -> None:
        run.const(think_cycles).sleep()  # think
        run.getstatic("Philosophers", "forks").load(left).aload()
        with run.sync():
            run.const(think_cycles // 3).sleep()  # reach for the right fork
            run.getstatic("Philosophers", "forks").load(right).aload()
            with run.sync():
                run.for_range(i, lambda: run.const(eat_iters), lambda: (
                    run.getstatic("Philosophers", "meals"),
                    run.pop(),
                ))
                run.getstatic("Philosophers", "meals")
                run.const(1).add()
                run.putstatic("Philosophers", "meals")

    run.for_range(r, lambda: run.const(rounds), dine)
    run.ret()
    cls.add_method(run.build())

    def setup(vm: "JVM") -> None:
        forks = vm.new_array(n)
        for k in range(n):
            forks.put(k, vm.new_object("Philosophers"))
        vm.set_static("Philosophers", "forks", forks)

    return Workload(
        name=f"philosophers-{n}",
        classdef=cls,
        setup=setup,
        spawns=[
            ("run", [k, (k + 1) % n], 2 + (k % 4), f"phil-{k}")
            for k in range(n)
        ],
    )
