"""Command-line figure regeneration: ``python -m repro.bench``.

Examples::

    python -m repro.bench 5a                 # Figure 5, panel (a)
    python -m repro.bench 6b --reps 5        # more repetitions
    python -m repro.bench 7c --csv out.csv   # export the series
    python -m repro.bench all                # every panel (slow)
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import FigurePanel, all_panels, run_panel
from repro.bench.report import panel_json, render_panel, write_csv


def _parse_panel(text: str) -> FigurePanel:
    text = text.strip().lower()
    if len(text) != 2 or text[0] not in "5678" or text[1] not in "abc":
        raise argparse.ArgumentTypeError(
            f"expected a figure panel like '5a' or '8c', got {text!r}"
        )
    return FigurePanel(int(text[0]), text[1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figure panels.",
    )
    parser.add_argument(
        "panel",
        help="figure panel (e.g. 5a, 6b, 8c) or 'all'",
    )
    parser.add_argument("--reps", type=int, default=2,
                        help="paired-seed repetitions (default 2)")
    parser.add_argument("--seed", type=int, default=0x5EED)
    parser.add_argument("--csv", metavar="PATH",
                        help="also write the series to a CSV file")
    parser.add_argument("--json", action="store_true",
                        help="print JSON instead of the table/chart")
    args = parser.parse_args(argv)

    panels = (
        all_panels() if args.panel == "all"
        else [_parse_panel(args.panel)]
    )
    for panel in panels:
        result = run_panel(panel, repetitions=args.reps, seed=args.seed)
        if args.json:
            print(panel_json(result))
        else:
            print(render_panel(result))
        if args.csv:
            write_csv(result, args.csv)
            print(f"series written to {args.csv}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
