"""Command-line figure regeneration: ``python -m repro.bench``.

Examples::

    python -m repro.bench 5a                 # Figure 5, panel (a)
    python -m repro.bench 6b --reps 5        # more repetitions
    python -m repro.bench 7c --csv out.csv   # export the series
    python -m repro.bench all                # every panel (slow)
    REPRO_BENCH_JOBS=4 python -m repro.bench all   # parallel workers
    python -m repro.bench all --fleet local:4      # loopback worker fleet
    python -m repro.bench --host-perf        # interpreter wall-clock baseline
    python -m repro.bench 5a --host-perf     # host-perf on one panel only

Runs execute through :mod:`repro.bench.parallel`: ``--jobs`` (or
``REPRO_BENCH_JOBS``) sets the worker count and results are memoized in a
content-addressed on-disk cache unless ``--no-cache`` (or
``REPRO_BENCH_CACHE=0``) is given.  The measured report on **stdout** is
byte-identical for every jobs/cache setting; host-side execution stats
(wall clock, cache hits) print on **stderr**.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench.figures import FigurePanel, all_panels, run_panel
from repro.bench.parallel import ResultCache, RunEngine
from repro.fleet.cli import (
    add_fleet_args,
    resolve_fleet_engine,
    run_fleet_worker,
)
from repro.bench.report import (
    panel_json,
    render_engine_stats,
    render_panel,
    write_csv,
)


def _parse_panel(text: str) -> FigurePanel:
    text = text.strip().lower()
    if len(text) != 2 or text[0] not in "5678" or text[1] not in "abc":
        raise argparse.ArgumentTypeError(
            f"expected a figure panel like '5a' or '8c', got {text!r}"
        )
    return FigurePanel(int(text[0]), text[1])


def _default_reps() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_REPS", "2")))
    except ValueError:
        return 2


def _host_perf(args) -> int:
    """``--host-perf``: interpreter wall-clock baseline (BENCH_interp.json).

    The JSON report goes to stdout *and* the output file; progress lines
    go to stderr (the measurement takes minutes at full scale).
    """
    from repro.bench.hostperf import (
        DEFAULT_OUTPUT,
        measure_host_perf,
        write_host_perf,
    )

    panels = None
    if args.panel is not None and args.panel != "all":
        panels = [_parse_panel(args.panel)]
    report = measure_host_perf(
        panels,
        repetitions=args.reps,
        seed=args.seed,
        progress=lambda line: print(line, file=sys.stderr),
    )
    out = args.output or DEFAULT_OUTPUT
    write_host_perf(report, out)
    print(json.dumps(report, indent=2))
    print(f"host-perf report written to {out}", file=sys.stderr)
    return 0


def _observe_panel(panel: FigurePanel, args, engine: RunEngine) -> None:
    """``--profile``/``--trace-out``: observability capture of the
    panel's rollback cell, cached through the same run engine."""
    from repro.obs.capture import ObsSpec, capture_with_engine
    from repro.obs.export import render_profile_dict

    spec = ObsSpec(
        scenario=f"fig{panel.figure}{panel.panel}",
        mode="rollback",
        seed=args.seed,
    )
    artifact = capture_with_engine(spec, engine=engine)
    tag = f"[{panel.figure}{panel.panel}]"
    if args.profile:
        profile = render_profile_dict(
            artifact["profile"], artifact["clock"]
        )
        print(f"{tag} cycle profile (mode=rollback):", file=sys.stderr)
        print(profile, file=sys.stderr)
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            fh.write(artifact["chrome_json"])
        print(
            f"{tag} chrome trace written to {args.trace_out} "
            "(open at https://ui.perfetto.dev)",
            file=sys.stderr,
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figure panels.",
    )
    parser.add_argument(
        "panel",
        nargs="?",
        default=None,
        help="figure panel (e.g. 5a, 6b, 8c) or 'all' "
             "(optional with --host-perf: defaults to the full suite)",
    )
    parser.add_argument(
        "--host-perf", action="store_true",
        help="measure host wall-clock of both interpreters (fast vs "
             "reference) over the selected panels and write the "
             "repro.bench.host-perf/1 report (see repro.bench.hostperf); "
             "runs serially and uncached regardless of --jobs/cache flags",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="host-perf report path (default BENCH_interp.json)",
    )
    parser.add_argument(
        "--reps", type=int, default=_default_reps(),
        help="paired-seed repetitions (default REPRO_BENCH_REPS or 2)",
    )
    parser.add_argument("--seed", type=int, default=0x5EED)
    parser.add_argument("--csv", metavar="PATH",
                        help="also write the series to a CSV file")
    parser.add_argument("--json", action="store_true",
                        help="print JSON instead of the table/chart")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default REPRO_BENCH_JOBS or cpu count; "
             "1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="result cache location (default REPRO_BENCH_CACHE_DIR or "
             ".repro-bench-cache)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="after the panel report, print a cycle profile of the "
             "panel's rollback cell (see repro.obs) to stderr",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="export a Perfetto-openable Chrome trace of the panel's "
             "rollback cell to PATH (implies an obs capture; cached "
             "through the same engine as the benchmark runs)",
    )
    add_fleet_args(parser)
    args = parser.parse_args(argv)

    if args.fleet == "worker":
        return run_fleet_worker(args)
    if args.host_perf:
        return _host_perf(args)
    if args.panel is None:
        parser.error("a figure panel (or 'all') is required")

    engine = RunEngine.from_env()
    if args.jobs is not None:
        engine = RunEngine(jobs=max(1, args.jobs), cache=engine.cache)
    if args.no_cache:
        engine = RunEngine(jobs=engine.jobs, cache=None)
    elif args.cache_dir is not None:
        engine = RunEngine(
            jobs=engine.jobs, cache=ResultCache(args.cache_dir)
        )
    fleet = resolve_fleet_engine(args, engine.cache)
    if fleet is not None:
        engine = fleet

    panels = (
        all_panels() if args.panel == "all"
        else [_parse_panel(args.panel)]
    )
    if (args.profile or args.trace_out) and len(panels) > 1:
        parser.error("--profile/--trace-out need a single panel, not 'all'")
    try:
        for panel in panels:
            result = run_panel(
                panel, repetitions=args.reps, seed=args.seed, engine=engine
            )
            if args.json:
                print(panel_json(result))
            else:
                print(render_panel(result))
            # Execution stats go to stderr: stdout must stay
            # byte-identical across jobs/cache/fleet settings (the
            # determinism contract).
            if result.stats is not None:
                stats = render_engine_stats(result.stats)
                print(f"[{panel.figure}{panel.panel}] {stats}",
                      file=sys.stderr)
            if args.csv:
                write_csv(result, args.csv)
                print(f"series written to {args.csv}", file=sys.stderr)
            if args.profile or args.trace_out:
                _observe_panel(panel, args, engine)
        if len(panels) > 1:
            print(f"[total] {engine.stats.render()}", file=sys.stderr)
    finally:
        engine.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
