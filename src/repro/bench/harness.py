"""Measurement harness (paper §4.1 methodology).

    "To measure the total elapsed time of high-priority threads we take the
    first time-stamp at the beginning of the run() method of every high
    priority thread and the second time-stamp at the end ... We compute the
    total elapsed time for all high-priority threads by calculating the
    time elapsed from the earliest time-stamp of the first set to the
    latest time-stamp of the second set."

The paper repeats each benchmark six times in one VM invocation, discards
the warm-up iteration and reports the mean of five with 90% confidence
intervals.  Our VM has no JIT warm-up; the analogous repetition is across
*seeds* (different random arrival patterns), summarized the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.bench.microbench import (
    HIGH_PRIORITY,
    MicrobenchConfig,
    setup_microbench_vm,
)
from repro.util.rng import derive_seed
from repro.util.stats import Summary, summarize
from repro.vm.clock import CostModel
from repro.vm.vmcore import JVM, VMOptions


@dataclass(frozen=True)
class RunResult:
    """Metrics from one VM invocation of the micro-benchmark.

    Instances cross process boundaries in the parallel engine and live in
    the on-disk result cache, so every field (including the raw
    ``metrics`` mapping) must stay plain picklable data.
    """

    mode: str
    config: MicrobenchConfig
    high_elapsed: int
    overall_elapsed: int
    total_cycles: int
    rollbacks: int
    undo_logged: int
    undo_restored: int
    context_switches: int
    metrics: dict[str, Any] = field(repr=False, default_factory=dict)
    #: cycle attribution (``repro.obs`` profiler snapshot: tracks, total,
    #: per-method table) when the run was made with ``profile=True``
    profile: Optional[dict[str, Any]] = field(repr=False, default=None)


def run_microbench(
    config: MicrobenchConfig,
    mode: str = "unmodified",
    *,
    options: Optional[VMOptions] = None,
    cost_model: Optional[CostModel] = None,
    profile: bool = False,
) -> RunResult:
    """Run one configuration on one VM mode and extract the paper's metrics.

    ``profile=True`` attaches the virtual-cycle profiler
    (:mod:`repro.obs.profile`) and stores its snapshot — exact per-track
    and per-method cycle attribution — on the result.
    """
    if options is None:
        options = VMOptions(mode=mode, seed=config.seed)
    else:
        options = options.with_(mode=mode, seed=config.seed)
    if cost_model is not None:
        options = options.with_(cost_model=cost_model)
    if profile:
        options = options.with_(profile=True)
    vm = JVM(options)
    setup_microbench_vm(vm, config)
    vm.run()

    high = [t for t in vm.threads if t.priority == HIGH_PRIORITY]
    low = [t for t in vm.threads if t.priority != HIGH_PRIORITY]
    if not high:
        raise ValueError("configuration spawned no high-priority threads")
    high_elapsed = max(t.end_time for t in high) - min(
        t.start_time for t in high
    )
    everyone = high + low
    overall = max(t.end_time for t in everyone) - min(
        t.start_time for t in everyone
    )
    m = vm.metrics()
    support = m.get("support", {})
    profile_data: Optional[dict[str, Any]] = None
    if vm.profiler is not None:
        profile_data = vm.profiler.snapshot()
    return RunResult(
        mode=mode,
        config=config,
        high_elapsed=high_elapsed,
        overall_elapsed=overall,
        total_cycles=vm.clock.now,
        rollbacks=support.get("revocations_completed", 0),
        undo_logged=support.get("undo_entries_logged", 0),
        undo_restored=support.get("undo_entries_restored", 0),
        context_switches=m["context_switches"],
        metrics=m,
        profile=profile_data,
    )


@dataclass(frozen=True)
class ComparisonResult:
    """Paired runs of one configuration across VM modes and seeds."""

    config: MicrobenchConfig
    modes: tuple[str, ...]
    #: mode -> per-seed RunResults
    runs: dict[str, list[RunResult]] = field(repr=False, default_factory=dict)

    def summary(self, mode: str, metric: str = "high_elapsed") -> Summary:
        return summarize([getattr(r, metric) for r in self.runs[mode]])

    def speedup(self, metric: str = "high_elapsed",
                baseline: str = "unmodified",
                treatment: str = "rollback") -> float:
        """baseline/treatment mean ratio (> 1: treatment is faster)."""
        base = self.summary(baseline, metric).mean
        treat = self.summary(treatment, metric).mean
        return base / treat if treat else float("inf")


def comparison_specs(
    config: MicrobenchConfig,
    modes: tuple[str, ...] = ("unmodified", "rollback"),
    *,
    repetitions: int = 3,
    options: Optional[VMOptions] = None,
    cost_model: Optional[CostModel] = None,
) -> list:
    """Enumerate the (rep x mode) run matrix in deterministic order.

    Seed pairing matters: both VMs see the same random arrival pattern in
    repetition *k*, so mode differences are not arrival noise.
    """
    from dataclasses import replace

    from repro.bench.parallel import RunSpec

    specs = []
    for rep in range(repetitions):
        seed = derive_seed(config.seed, "rep", rep)
        rep_config = replace(config, seed=seed)
        for mode in modes:
            specs.append(
                RunSpec(
                    config=rep_config,
                    mode=mode,
                    options=options,
                    cost_model=cost_model,
                )
            )
    return specs


def reduce_comparison(
    config: MicrobenchConfig,
    modes: tuple[str, ...],
    results: list[RunResult],
) -> ComparisonResult:
    """Fold matrix-ordered RunResults back into a ComparisonResult."""
    runs: dict[str, list[RunResult]] = {m: [] for m in modes}
    for i, result in enumerate(results):
        runs[modes[i % len(modes)]].append(result)
    return ComparisonResult(config=config, modes=tuple(modes), runs=runs)


def compare_modes(
    config: MicrobenchConfig,
    modes: tuple[str, ...] = ("unmodified", "rollback"),
    *,
    repetitions: int = 3,
    options: Optional[VMOptions] = None,
    cost_model: Optional[CostModel] = None,
    engine=None,
) -> ComparisonResult:
    """Run ``config`` under every mode with paired per-repetition seeds.

    All runs flow through a :class:`repro.bench.parallel.RunEngine`; the
    default is the serial uncached engine, so library callers and tests
    see the historical in-process behaviour unless they opt in.
    """
    from repro.bench.parallel import RunEngine, execute_spec, spec_key

    if engine is None:
        engine = RunEngine(jobs=1)
    specs = comparison_specs(
        config,
        modes,
        repetitions=repetitions,
        options=options,
        cost_model=cost_model,
    )
    results = engine.map(execute_spec, specs, key_fn=spec_key)
    return reduce_comparison(config, modes, results)
