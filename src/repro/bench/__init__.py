"""The evaluation harness (paper §4).

* :mod:`repro.bench.microbench` — the paper's micro-benchmark program
  generator (threads contending on one lock, interleaved reads/writes).
* :mod:`repro.bench.harness` — runs one configuration on a VM mode and
  extracts the paper's two metrics (high-priority elapsed, overall
  elapsed); repeats across seeds with 90% confidence intervals.
* :mod:`repro.bench.figures` — sweep definitions regenerating every panel
  of Figures 5–8 plus the extension/ablation experiments.
* :mod:`repro.bench.report` — text rendering of series and panels.
* :mod:`repro.bench.parallel` — the run engine: fans the (config, mode,
  seed) matrix out to worker processes and memoizes results in a
  content-addressed on-disk cache; serial and parallel reports are
  byte-identical.
* :mod:`repro.bench.workloads` — additional guest programs (deadlock
  pairs, bank transfers, bounded buffers, medium-thread inversion).
"""

from repro.bench.microbench import (
    HIGH_PRIORITY,
    LOW_PRIORITY,
    MicrobenchConfig,
    build_microbench_class,
    setup_microbench_vm,
)
from repro.bench.harness import (
    ComparisonResult,
    RunResult,
    compare_modes,
    run_microbench,
)
from repro.bench.figures import (
    FigurePanel,
    PanelResult,
    all_panels,
    run_panel,
    sweep_write_ratios,
)
from repro.bench.parallel import (
    EngineStats,
    ResultCache,
    RunEngine,
    RunSpec,
)
from repro.bench.report import render_panel, render_series

__all__ = [
    "EngineStats",
    "ResultCache",
    "RunEngine",
    "RunSpec",
    "HIGH_PRIORITY",
    "LOW_PRIORITY",
    "MicrobenchConfig",
    "build_microbench_class",
    "setup_microbench_vm",
    "ComparisonResult",
    "RunResult",
    "compare_modes",
    "run_microbench",
    "FigurePanel",
    "PanelResult",
    "all_panels",
    "run_panel",
    "sweep_write_ratios",
    "render_panel",
    "render_series",
]
