"""Text rendering of benchmark results — the paper's plots, in a terminal.

Each reproduced panel prints as a table (write ratio vs normalized elapsed
time for both VMs, with 90% CI half-widths) followed by an ASCII chart
whose shape can be compared against the paper's gnuplot panels directly.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.figures import PanelResult
from repro.util.fmt import ascii_chart, format_table


def render_series(
    write_ratios: Sequence[int],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
) -> str:
    headers = ["write%"] + list(series)
    rows = [
        [pct] + [series[name][i] for name in series]
        for i, pct in enumerate(write_ratios)
    ]
    table = format_table(headers, rows)
    chart = ascii_chart(
        [float(p) for p in write_ratios],
        series,
        title=title,
        y_label="normalized elapsed time (unmodified @ 0% writes = 1.0)",
    )
    return f"{table}\n\n{chart}"


def render_panel(result: PanelResult, *, with_ci: bool = True) -> str:
    """Render one panel the way the paper plots it."""
    panel = result.panel
    modified = result.series("rollback")
    unmodified = result.series("unmodified")
    headers = ["write%", "MODIFIED", "UNMODIFIED"]
    if with_ci:
        headers += ["±mod(90%)", "±unmod(90%)"]
        ci_mod = result.ci_series("rollback")
        ci_unmod = result.ci_series("unmodified")
    rows = []
    for i, pct in enumerate(result.write_ratios):
        row: list[object] = [pct, modified[i], unmodified[i]]
        if with_ci:
            row += [ci_mod[i], ci_unmod[i]]
        rows.append(row)
    table = format_table(headers, rows)
    chart = ascii_chart(
        [float(p) for p in result.write_ratios],
        {"MODIFIED": modified, "UNMODIFIED": unmodified},
        title=panel.title,
        y_label="normalized elapsed time",
    )
    gain = result.mean_speedup()
    summary = (
        f"mean speedup of the modified VM across the sweep: {gain:.2f}x "
        f"({(gain - 1) * 100:+.0f}% {'gain' if gain >= 1 else 'loss'})"
    )
    return f"{panel.title}\n\n{table}\n\n{chart}\n\n{summary}\n"


def render_engine_stats(stats) -> str:
    """Host-side execution summary: totals plus the per-run wall spread.

    Rendered separately from :func:`render_panel` (callers print it on
    stderr) so the measured report stays byte-identical no matter how the
    runs were scheduled or cached.
    """
    lines = [stats.render()]
    executed = [w for w in stats.run_walls if w > 0.0]
    if executed:
        mean = sum(executed) / len(executed)
        lines.append(
            f"per-run wall: min {min(executed):.3f}s / mean {mean:.3f}s / "
            f"max {max(executed):.3f}s over {len(executed)} executed run(s)"
        )
    # Per-worker breakdown (fleet/pool imbalance); empty for plain
    # serial runs so historical stderr output is unchanged.
    lines.extend(stats.render_workers())
    return "\n".join(lines)


def panel_rows(result: PanelResult) -> list[dict]:
    """The panel's data as records (one per write ratio), ready for CSV or
    JSON export — both metrics, both VMs, with CI half-widths."""
    rows = []
    for i, pct in enumerate(result.write_ratios):
        row: dict = {"figure": result.panel.figure,
                     "panel": result.panel.panel,
                     "write_pct": pct}
        for metric in ("high_elapsed", "overall_elapsed"):
            for mode in ("rollback", "unmodified"):
                label = ("modified" if mode == "rollback" else "unmodified")
                key = f"{label}_{metric}"
                row[key] = result.series(mode, metric)[i]
                row[key + "_ci90"] = result.ci_series(mode, metric)[i]
        rows.append(row)
    return rows


def write_csv(result: PanelResult, path) -> None:
    """Write the panel's normalized series to a CSV file."""
    import csv

    rows = panel_rows(result)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def panel_json(result: PanelResult) -> str:
    """The panel as a JSON document (metadata + records)."""
    import json

    return json.dumps(
        {
            "title": result.panel.title,
            "figure": result.panel.figure,
            "panel": result.panel.panel,
            "metric": result.panel.metric,
            "mean_speedup": result.mean_speedup(),
            "rows": panel_rows(result),
        },
        indent=2,
    )
