"""Host-performance baseline: measure both interpreters, emit a report.

The figure benchmarks report *virtual* time — deterministic, identical
for every interpreter.  This module measures the orthogonal quantity:
how much **host** wall clock the simulator burns producing those virtual
histories, per interpreter (``VMOptions.interp``).  It is the evidence
artifact for the predecoded fast interpreter: the committed
``BENCH_interp.json`` at the repo root records the measured speedup of
``interp="fast"`` over ``interp="reference"`` on the full Figures 5–8
suite, and ``benchmarks/test_interp_speed.py`` uses it as a soft
regression baseline.

Methodology
-----------

* Runs execute **serially and uncached** (``RunEngine(jobs=1,
  cache=None)``): pool scheduling and cache hits would corrupt the wall
  clock each interpreter is being billed for.
* Figures 7/8 reuse the very same runs as 5/6 (only the plotted metric
  differs), so the "full fig5–fig8 suite" is the six distinct sweeps
  5a..5c and 6a..6c (:data:`DEFAULT_PANELS`).
* Guest instruction totals come from the runs' own metrics and must be
  identical across interpreters — the report records both totals so a
  parity breach is visible right in the artifact
  (``guest_instructions_match``).

Report schema (``repro.bench.host-perf/1``)::

    {
      "schema": "repro.bench.host-perf/1",
      "panels": ["5a", ...],          # distinct sweeps measured
      "repetitions": 2,               # paired seeds per configuration
      "write_ratios": [0, 20, ...],
      "seed": 24301,
      "scale": 1.0,                   # REPRO_BENCH_SCALE at measure time
      "interps": {
        "<interp>": {
          "runs": 144,                # VM invocations measured
          "host_wall_s": 123.4,       # summed per-run wall clock
          "guest_instructions": 9876543,
          "ips": 80036.0              # guest instructions / host second
        }, ...
      },
      "guest_instructions_match": true,
      "speedup_fast_vs_reference": 2.4   # reference/fast host wall ratio
    }

``host_wall_s`` is the sum of per-run wall clocks (``EngineStats
.run_wall``), not the enclosing loop's elapsed time, so report assembly
and result reduction are excluded from the billed time.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.bench.figures import (
    WRITE_RATIOS,
    FigurePanel,
    bench_scale,
    run_panel,
)
from repro.bench.parallel import EngineStats, RunEngine
from repro.vm.vmcore import VMOptions

SCHEMA = "repro.bench.host-perf/1"

#: Default artifact location (repo root, committed).
DEFAULT_OUTPUT = "BENCH_interp.json"

#: The distinct run matrices behind Figures 5-8 (7/8 replot 5/6's runs).
DEFAULT_PANELS = (
    FigurePanel(5, "a"), FigurePanel(5, "b"), FigurePanel(5, "c"),
    FigurePanel(6, "a"), FigurePanel(6, "b"), FigurePanel(6, "c"),
)

INTERPS = ("reference", "fast")


def measure_interp(
    interp: str,
    panels: Sequence[FigurePanel] = DEFAULT_PANELS,
    *,
    repetitions: int = 2,
    seed: int = 0x5EED,
    write_ratios: tuple[int, ...] = WRITE_RATIOS,
    progress=None,
) -> EngineStats:
    """Run the panel suite on one interpreter; return the summed stats.

    Serial and uncached by construction — wall clock is the measurement.
    """
    engine = RunEngine(jobs=1, cache=None)
    options = VMOptions(interp=interp)
    for panel in panels:
        run_panel(
            panel, repetitions=repetitions, write_ratios=write_ratios,
            seed=seed, options=options, engine=engine,
        )
        if progress is not None:
            progress(
                f"[host-perf] {interp}: {panel.figure}{panel.panel} done "
                f"({engine.last_stats.host_wall:.1f}s)"
            )
    return engine.stats


def measure_host_perf(
    panels: Optional[Sequence[FigurePanel]] = None,
    *,
    repetitions: int = 2,
    seed: int = 0x5EED,
    write_ratios: tuple[int, ...] = WRITE_RATIOS,
    interps: Sequence[str] = INTERPS,
    progress=None,
) -> dict:
    """Measure every interpreter and assemble the schema/1 report."""
    if panels is None:
        panels = DEFAULT_PANELS
    per_interp: dict[str, EngineStats] = {}
    for interp in interps:
        per_interp[interp] = measure_interp(
            interp, panels, repetitions=repetitions, seed=seed,
            write_ratios=write_ratios, progress=progress,
        )

    report = {
        "schema": SCHEMA,
        "panels": [f"{p.figure}{p.panel}" for p in panels],
        "repetitions": repetitions,
        "write_ratios": list(write_ratios),
        "seed": seed,
        "scale": bench_scale(),
        "interps": {
            interp: {
                "runs": stats.runs,
                "host_wall_s": round(stats.run_wall, 3),
                "guest_instructions": stats.guest_instructions,
                "ips": round(stats.ips(), 1),
            }
            for interp, stats in per_interp.items()
        },
    }
    totals = {s.guest_instructions for s in per_interp.values()}
    report["guest_instructions_match"] = len(totals) == 1
    ref = per_interp.get("reference")
    fast = per_interp.get("fast")
    if ref is not None and fast is not None and fast.run_wall:
        report["speedup_fast_vs_reference"] = round(
            ref.run_wall / fast.run_wall, 2
        )
    return report


def write_host_perf(report: dict, path: str = DEFAULT_OUTPUT) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_host_perf(path: str = DEFAULT_OUTPUT) -> Optional[dict]:
    """The committed baseline, or None when absent/unreadable/foreign."""
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(report, dict) or report.get("schema") != SCHEMA:
        return None
    return report
