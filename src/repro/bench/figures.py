"""Sweep definitions for every figure in the paper's evaluation.

The paper's evaluation consists of Figures 5–8, each with three panels:

========  =======================  ==========================  ============
figure    metric                   high-priority inner loop    panels
========  =======================  ==========================  ============
Fig. 5    high-priority elapsed    100K ("small")              a: 2+8,
Fig. 6    high-priority elapsed    500K ("large")              b: 5+5,
Fig. 7    overall elapsed          100K ("small")              c: 8+2
Fig. 8    overall elapsed          500K ("large")              (high+low)
========  =======================  ==========================  ============

Each panel sweeps the write ratio over {0, 20, 40, 60, 80, 100}% and plots
the modified VM against the unmodified VM, both normalized to the
unmodified VM at 100% reads.  Figures 7/8 reuse the very same runs as 5/6
(only the metric differs), so :func:`run_panel` measures one sweep and
:class:`PanelResult` serves both figures.

Environment knob: ``REPRO_BENCH_SCALE`` multiplies the work parameters
(iterations, sections) for quick smoke runs (< 1) or higher fidelity (> 1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.bench.harness import (
    ComparisonResult,
    comparison_specs,
    reduce_comparison,
)
from repro.bench.microbench import MicrobenchConfig
from repro.util.stats import Summary
from repro.vm.vmcore import VMOptions

WRITE_RATIOS = (0, 20, 40, 60, 80, 100)

#: panel letter -> (high_threads, low_threads) — paper §4.1
THREAD_MIXES = {"a": (2, 8), "b": (5, 5), "c": (8, 2)}

#: scaled stand-ins for the paper's inner-loop iteration counts
ITERS_SMALL = 120   # "100K"
ITERS_LARGE = 600   # "500K"
ITERS_LOW = 600     # low-priority threads always run the 500K-scale loop


def bench_scale() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    except ValueError:
        return 1.0


@dataclass(frozen=True)
class FigurePanel:
    """Identity of one panel: which figure, which thread mix."""

    figure: int          # 5, 6, 7 or 8
    panel: str           # "a" | "b" | "c"

    def __post_init__(self) -> None:
        if self.figure not in (5, 6, 7, 8):
            raise ValueError("figure must be 5..8")
        if self.panel not in THREAD_MIXES:
            raise ValueError("panel must be 'a', 'b' or 'c'")

    @property
    def metric(self) -> str:
        """Figures 5/6 plot high-priority elapsed; 7/8 overall elapsed."""
        return "high_elapsed" if self.figure in (5, 6) else "overall_elapsed"

    @property
    def iters_high(self) -> int:
        """Figures 5/7 use the 100K-scale loop; 6/8 the 500K-scale loop."""
        small = self.figure in (5, 7)
        return ITERS_SMALL if small else ITERS_LARGE

    @property
    def mix(self) -> tuple[int, int]:
        return THREAD_MIXES[self.panel]

    @property
    def title(self) -> str:
        h, low = self.mix
        metric = (
            "high-priority elapsed" if self.metric == "high_elapsed"
            else "overall elapsed"
        )
        scale = "100K" if self.figure in (5, 7) else "500K"
        return (
            f"Figure {self.figure}({self.panel}): {metric}, "
            f"{h} high + {low} low, {scale}-scale iterations"
        )

    def base_config(self, seed: int = 0x5EED) -> MicrobenchConfig:
        h, low = self.mix
        cfg = MicrobenchConfig(
            high_threads=h,
            low_threads=low,
            iters_high=self.iters_high,
            iters_low=ITERS_LOW,
            seed=seed,
        )
        scale = bench_scale()
        return cfg if scale == 1.0 else cfg.scaled(scale)


def all_panels() -> list[FigurePanel]:
    return [
        FigurePanel(figure, panel)
        for figure in (5, 6, 7, 8)
        for panel in ("a", "b", "c")
    ]


@dataclass
class PanelResult:
    """One measured sweep: both metrics for both VMs over write ratios."""

    panel: FigurePanel
    write_ratios: tuple[int, ...]
    comparisons: list[ComparisonResult] = field(repr=False)
    #: host-side execution observability (wall clock, cache hits) for the
    #: sweep that produced this panel; never feeds the rendered series,
    #: so serial and parallel reports stay byte-identical
    stats: Optional[object] = field(default=None, repr=False, compare=False)

    def _summaries(self, mode: str, metric: str) -> list[Summary]:
        return [c.summary(mode, metric) for c in self.comparisons]

    def series(
        self, mode: str, metric: Optional[str] = None
    ) -> list[float]:
        """Normalized series as plotted in the paper: every point divided
        by the unmodified VM's mean at 0% writes (100% reads)."""
        metric = metric or self.panel.metric
        baseline = self._summaries("unmodified", metric)[0].mean
        return [
            s.mean / baseline for s in self._summaries(mode, metric)
        ]

    def ci_series(
        self, mode: str, metric: Optional[str] = None
    ) -> list[float]:
        """Normalized 90% CI half-widths for the same series."""
        metric = metric or self.panel.metric
        baseline = self._summaries("unmodified", metric)[0].mean
        return [
            s.ci_halfwidth / baseline for s in self._summaries(mode, metric)
        ]

    def mean_speedup(self, metric: Optional[str] = None) -> float:
        """Average unmodified/modified ratio across the sweep (>1 = the
        rollback VM wins; the paper reports 78% average gain overall)."""
        metric = metric or self.panel.metric
        ratios = [c.speedup(metric) for c in self.comparisons]
        return sum(ratios) / len(ratios)


def sweep_write_ratios(
    base: MicrobenchConfig,
    *,
    write_ratios: tuple[int, ...] = WRITE_RATIOS,
    repetitions: int = 3,
    modes: tuple[str, ...] = ("unmodified", "rollback"),
    options: Optional[VMOptions] = None,
    engine=None,
) -> list[ComparisonResult]:
    """Run the write-ratio sweep for one thread mix.

    The whole (write ratio x repetition x mode) matrix is enumerated up
    front and handed to one engine ``map`` call, so a parallel engine
    overlaps runs *across* write ratios, not just within one.
    """
    from repro.bench.parallel import RunEngine, execute_spec, spec_key

    if engine is None:
        engine = RunEngine(jobs=1)
    modes = tuple(modes)
    per_ratio = len(modes) * repetitions
    specs = []
    for pct in write_ratios:
        specs.extend(
            comparison_specs(
                replace(base, write_pct=pct),
                modes,
                repetitions=repetitions,
                options=options,
            )
        )
    results = engine.map(execute_spec, specs, key_fn=spec_key)
    return [
        reduce_comparison(
            replace(base, write_pct=pct),
            modes,
            results[i * per_ratio:(i + 1) * per_ratio],
        )
        for i, pct in enumerate(write_ratios)
    ]


def run_panel(
    panel: FigurePanel,
    *,
    repetitions: int = 3,
    write_ratios: tuple[int, ...] = WRITE_RATIOS,
    seed: int = 0x5EED,
    options: Optional[VMOptions] = None,
    engine=None,
) -> PanelResult:
    """Measure one figure panel (and implicitly its Figure-7/8 sibling).

    ``engine`` selects execution strategy only (serial, pooled, cached);
    the measured numbers are identical for every choice.
    """
    from repro.bench.parallel import RunEngine

    if engine is None:
        engine = RunEngine(jobs=1)
    comparisons = sweep_write_ratios(
        panel.base_config(seed),
        write_ratios=write_ratios,
        repetitions=repetitions,
        options=options,
        engine=engine,
    )
    return PanelResult(
        panel=panel, write_ratios=tuple(write_ratios),
        comparisons=comparisons,
        stats=engine.last_stats,
    )
