"""The paper's micro-benchmark (§4.1), as a generated guest program.

    "The micro-benchmark executes several low and high-priority threads
    contending on the same lock. ... Every thread executes 100 synchronized
    sections.  Each synchronized section contains an inner loop executing
    an interleaved sequence of read and write operations. ... We fixed the
    number of iterations of the inner loop for low-priority threads at
    500K, and varied it for the high-priority threads (100K and 500K).
    ... Our benchmark also includes a short random pause time (on average
    equal to a single thread quantum ...) right before an entry to the
    synchronized section, to ensure random arrival of threads at the
    monitors guarding the sections."

Scaling: virtual-time simulation makes absolute counts meaningless; what
the figures depend on is (a) the 5:1 / 1:1 ratio between low- and
high-priority inner loops, (b) sections spanning several scheduling quanta
so inversions actually arise, and (c) the write-ratio sweep.  The defaults
(``iters_low=600`` standing in for 500K, ``iters_high`` 120 or 600 for
100K/500K, 12 sections for 100) preserve all three; every knob is a config
field so the ablation benches can push them around.

The generated ``run(iters)`` method is identical for all threads — "all
threads are compiled identically, with write barriers inserted to log
updates, and special exception handlers injected to restart synchronized
sections"; only the spawn priority and the iteration-count argument differ.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.vm.assembler import Asm
from repro.vm.classfile import ClassDef, FieldDef

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vmcore import JVM

HIGH_PRIORITY = 10
LOW_PRIORITY = 1

BENCH_CLASS = "Bench"


@dataclass(frozen=True)
class MicrobenchConfig:
    """One micro-benchmark configuration (one point on a figure's x axis)."""

    high_threads: int = 2
    low_threads: int = 8
    iters_high: int = 120
    iters_low: int = 600
    sections: int = 12
    write_pct: int = 50          # 0..100, paper's x axis
    array_size: int = 64         # shared data footprint
    #: The paper's pause averages one scheduling quantum, whose role is to
    #: "ensure random arrival of threads at the monitors".  Randomizing
    #: arrival *phase* requires the pause to be on the order of a section;
    #: the paper's quantum is (~1-2 sections) but ours is compressed, so
    #: the default tracks the 500K-scale section length instead.
    pause_mean: int = 20_000
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if not (0 <= self.write_pct <= 100):
            raise ValueError("write_pct must be within [0, 100]")
        if min(
            self.high_threads + self.low_threads,
            self.iters_high,
            self.iters_low,
            self.sections,
            self.array_size,
        ) <= 0:
            raise ValueError("all size parameters must be positive")

    def scaled(self, factor: float) -> "MicrobenchConfig":
        """Scale the work knobs (iterations, sections) by ``factor``."""
        return replace(
            self,
            iters_high=max(1, round(self.iters_high * factor)),
            iters_low=max(1, round(self.iters_low * factor)),
            sections=max(1, round(self.sections * factor)),
        )

    @property
    def total_threads(self) -> int:
        return self.high_threads + self.low_threads


def build_microbench_class(config: MicrobenchConfig) -> ClassDef:
    """Generate the benchmark class for one configuration.

    ``run(iters)``::

        for (s = 0; s < SECTIONS; s++) {
            pause(~quantum);                    // random arrival
            synchronized (lock) {
                for (i = 0; i < iters; i++) {
                    if (i % 100 < WRITE_PCT) shared[i % A] = i;   // write
                    else                     tmp = shared[i % A]; // read
                }
            }
        }
    """
    cls = ClassDef(
        BENCH_CLASS,
        fields=[
            FieldDef("lock", "ref", is_static=True),
            FieldDef("shared", "ref", is_static=True),
        ],
    )
    run = Asm("run", argc=1)
    iters_arg = run.arg(0)
    s = run.local("s")
    i = run.local("i")
    tmp = run.local("tmp")

    def write_op() -> None:
        run.getstatic(BENCH_CLASS, "shared")
        run.load(i).const(config.array_size).mod()
        run.load(i)
        run.astore()

    def read_op() -> None:
        run.getstatic(BENCH_CLASS, "shared")
        run.load(i).const(config.array_size).mod()
        run.aload()
        run.store(tmp)

    def op_body() -> None:
        # The interleaving test is emitted even for the 0% and 100%
        # endpoints so every sweep point pays an identical per-iteration
        # instruction budget — the figures' x axis must vary only the
        # read/write mix, not the amount of work per iteration.
        run.if_then(
            lambda: run.load(i).const(100).mod()
            .const(config.write_pct).lt(),
            write_op,
            read_op,
        )

    def section_body() -> None:
        run.pause(config.pause_mean)
        run.getstatic(BENCH_CLASS, "lock")
        with run.sync():
            run.for_range(i, lambda: run.load(iters_arg), op_body)

    run.for_range(s, lambda: run.const(config.sections), section_body)
    run.ret()
    cls.add_method(run.build())
    return cls


def setup_microbench_vm(vm: "JVM", config: MicrobenchConfig) -> None:
    """Load the benchmark class, wire the shared state, spawn the threads.

    High-priority threads are spawned first (spawn order does not matter:
    the random pre-section pause randomizes arrival, per the paper).
    """
    vm.load(build_microbench_class(config))
    vm.set_static(BENCH_CLASS, "lock", vm.new_object(BENCH_CLASS))
    vm.set_static(
        BENCH_CLASS, "shared", vm.new_array(config.array_size, 0)
    )
    for h in range(config.high_threads):
        vm.spawn(
            BENCH_CLASS,
            "run",
            args=[config.iters_high],
            priority=HIGH_PRIORITY,
            name=f"high-{h}",
        )
    for low in range(config.low_threads):
        vm.spawn(
            BENCH_CLASS,
            "run",
            args=[config.iters_low],
            priority=LOW_PRIORITY,
            name=f"low-{low}",
        )
