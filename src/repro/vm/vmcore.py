"""The virtual machine facade.

A :class:`JVM` bundles the heap, clock, scheduler, interpreter, native
registry and runtime support into one runnable machine.  The ``mode``
option selects which system from the paper's evaluation you get:

``"unmodified"``
    the paper's baseline: stock VM, untransformed bytecode, blocking
    monitors with prioritized entry queues, no barriers, no revocation.

``"rollback"``
    the paper's contribution: classes pass through the bytecode
    transformer at load time (write barriers, rollback scopes, sync-method
    wrapping) and the revocation runtime is installed.

``"inheritance"`` / ``"ceiling"``
    the classical avoidance protocols the paper compares against
    conceptually (§5), implemented in :mod:`repro.core.policies` as
    further baselines for the extension benchmarks.

Typical use::

    vm = JVM(VMOptions(mode="rollback", seed=7))
    vm.load(my_classdef)
    vm.spawn("Bench", "run", args=[0], priority=10, name="high-0")
    vm.run()
    print(vm.clock.now, vm.metrics())
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.errors import (
    LinkError,
    UncaughtGuestException,
    VMStateError,
)
from repro.util.rng import DeterministicRng
from repro.vm import bytecode as bc
from repro.vm.classfile import ClassDef, FieldDef, MethodDef
from repro.vm.clock import CostModel, VirtualClock
from repro.vm.heap import Heap, VMObject
from repro.vm.interpreter import Interpreter
from repro.vm.monitors import Monitor
from repro.vm.native import NativeRegistry
from repro.vm.scheduler import (
    BaseScheduler,
    PriorityScheduler,
    RoundRobinScheduler,
)
from repro.vm.support import NullSupport, RuntimeSupport
from repro.vm.threads import ThreadState, VMThread
from repro.vm.tracing import Tracer

MODES = ("unmodified", "rollback", "inheritance", "ceiling")

#: Guest exception classes available on every VM.
BUILTIN_EXCEPTIONS = (
    "Throwable",
    "Exception",
    "Error",
    "RuntimeException",
    "ArithmeticException",
    "NullPointerException",
    "ArrayIndexOutOfBoundsException",
    "NegativeArraySizeException",
    "IllegalMonitorStateException",
    "StackOverflowError",
    "InterruptedException",
)


@dataclass
class VMOptions:
    """Configuration of one virtual machine instance."""

    mode: str = "unmodified"
    scheduler: str = "round-robin"  # or "priority"
    prioritized_queues: bool = True
    #: False (default, faithful to the paper's Jikes platform): a release
    #: wakes the preferred waiter but leaves the monitor free, so runnable
    #: threads reaching monitorenter first can barge in.  True: direct
    #: ownership handoff (stronger blocking baseline; abl-handoff bench).
    direct_handoff: bool = False
    cost_model: CostModel = field(default_factory=CostModel)
    seed: int = 0x5EED
    #: inversion detection: "acquire", "periodic", or "both" (§1: "either at
    #: lock acquisition, or periodically in the background")
    detection: str = "acquire"
    periodic_interval: int = 20_000
    #: cost-aware revocation (extension; paper §4.2 observes that "if the
    #: number of write operations within a synchronized section is
    #: sufficiently large, the overhead of logging and rollbacks may start
    #: outweighing potential benefit"): deny revocation when more than
    #: this many undo-log entries would have to be restored.  0 = always
    #: revoke (the paper's behaviour).
    max_rollback_entries: int = 0
    #: livelock guard: after this many consecutive revocations of one
    #: thread's section, grant it a revocation-free grace window
    livelock_threshold: int = 3
    livelock_grace: int = 20_000
    #: robustness plane (extension): after this many revocations of one
    #: *section site* — a (thread, sync_id) pair — without an intervening
    #: commit, the site is demoted one rung on the degradation ladder
    #: (revocable -> priority-inheritance -> non-revocable).  0 disables.
    revocation_retry_budget: int = 8
    #: per-site exponential backoff: after a site's n-th consecutive
    #: revocation, further revocations of it are denied for
    #: ``revocation_backoff << (n-1)`` cycles.  0 disables (the
    #: thread-level livelock grace above stays the only damper).
    revocation_backoff: int = 0
    #: starvation watchdog: every N scheduler slices, flag threads whose
    #: revocation count grew by ``watchdog_revocations`` or more with no
    #: committed section since the previous scan.  0 disables the scan.
    watchdog_interval: int = 128
    watchdog_revocations: int = 6
    #: verify heap/log/section invariants after every rollback (slow;
    #: fault-injection campaigns run with this on)
    audit_rollbacks: bool = False
    #: deterministic fault-injection plan (:class:`repro.faults.FaultPlan`)
    faults: Any = None
    #: 0 = unlimited; otherwise StarvationError past this many cycles
    max_cycles: int = 0
    barrier_elision: bool = True
    trace: bool = False
    #: also trace every guest heap read/write as ``mem_read``/``mem_write``
    #: events (location tuples from :func:`repro.vm.heap.location_of`).
    #: High volume — meant for streaming consumers such as the lockset
    #: pass (:mod:`repro.check.lockset`); requires ``trace=True``.
    trace_memory: bool = False
    raise_on_uncaught: bool = True
    #: raise DeadlockError instead of revoking when a wait-for cycle forms
    #: (forces rollback mode to behave like the baseline for deadlocks)
    resolve_deadlocks: bool = True
    #: interpreter engine: "fast" (predecoded basic-block dispatch,
    #: :mod:`repro.vm.fastinterp`) or "reference" (instruction-at-a-time,
    #: the differential oracle).  Both produce byte-identical virtual
    #: clocks, traces, schedules and fingerprints; the reference engine is
    #: auto-selected when ``trace_memory`` needs per-access events.
    interp: str = "fast"
    #: attach the virtual-cycle profiler (:mod:`repro.obs.profile`):
    #: per-track/per-method cycle attribution whose totals equal the final
    #: virtual clock exactly.  Purely observational — a profiled run's
    #: schedule, trace and fingerprint are byte-identical to an
    #: unprofiled one.
    profile: bool = False

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.scheduler not in ("round-robin", "priority"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.detection not in ("acquire", "periodic", "both"):
            raise ValueError(f"unknown detection mode {self.detection!r}")
        if self.interp not in ("fast", "reference"):
            raise ValueError(f"unknown interpreter {self.interp!r}")

    @property
    def modified(self) -> bool:
        """True when the load-time transformer and revocation runtime run."""
        return self.mode == "rollback"

    @property
    def effective_interp(self) -> str:
        """The engine actually installed: per-access memory tracing needs
        per-instruction events, which forces the reference path."""
        if self.trace and self.trace_memory:
            return "reference"
        return self.interp

    def with_(self, **changes) -> "VMOptions":
        return replace(self, **changes)


def _build_support(options: VMOptions) -> RuntimeSupport:
    if options.mode == "unmodified":
        return NullSupport()
    # Imported here: repro.core depends on repro.vm, not vice versa.
    from repro.core.policies import make_support

    return make_support(options.mode)


class JVM:
    """One virtual machine: load classes, spawn threads, run to quiescence."""

    def __init__(self, options: Optional[VMOptions] = None, **kwargs):
        if options is None:
            options = VMOptions(**kwargs)
        elif kwargs:
            options = options.with_(**kwargs)
        self.options = options
        self.cost_model = options.cost_model
        self.clock = VirtualClock()
        self.heap = Heap()
        self.natives = NativeRegistry()
        self.tracer = Tracer(enabled=options.trace)
        self.rng = DeterministicRng(options.seed)
        self.classes: dict[str, ClassDef] = {}
        self.threads: list[VMThread] = []
        self.current_thread: Optional[VMThread] = None
        self.uncaught: list[tuple[VMThread, Any]] = []
        self.support: RuntimeSupport = _build_support(options)
        self.support.attach(self)
        self.profiler = None
        if options.profile:
            # Imported here: repro.obs depends on repro.vm, not vice versa.
            from repro.obs.profile import CycleProfiler, ProfilingSupport

            self.profiler = CycleProfiler()
            self.clock.listener = self.profiler
            # Installed before the interpreter is constructed: it captures
            # vm.support once, and the proxy must be what it sees.
            self.support = ProfilingSupport(self.support, self.profiler)
        #: post-slice observers called as ``hook(vm)`` after every slice
        #: (counter-track samplers live here)
        self.slice_hooks: list = []
        self.fault_plane = None
        if options.faults is not None:
            from repro.faults.plane import FaultPlane

            self.fault_plane = FaultPlane(self, options.faults)
        if options.effective_interp == "fast":
            # Imported here: fastinterp pulls in the predecoder, which most
            # reference-engine users (and docs builds) never need.
            from repro.vm.fastinterp import FastInterpreter

            self.interpreter: Interpreter = FastInterpreter(self)
        else:
            self.interpreter = Interpreter(self)
        self.scheduler: BaseScheduler = (
            PriorityScheduler(self)
            if options.scheduler == "priority"
            else RoundRobinScheduler(self)
        )
        self._next_tid = 0
        self._ran = False
        self._next_periodic_scan = options.periodic_interval
        self._elision_done = False
        for name in BUILTIN_EXCEPTIONS:
            self._load_linked(
                ClassDef(name, fields=[FieldDef("message", "str")])
            )

    # ------------------------------------------------------------- loading
    def load(self, classdef: ClassDef) -> ClassDef:
        """Load a class: transform (modified VM), verify, link, register."""
        if classdef.name in self.classes:
            raise LinkError(f"class {classdef.name!r} already loaded")
        # Always copy: the same ClassDef is routinely loaded into several
        # VMs (modified vs unmodified comparison runs) and both the
        # transformer and the linker mutate instructions.
        classdef = classdef.copy()
        if self.options.modified:
            from repro.core.transform import transform_class

            classdef = transform_class(classdef)
        return self._load_linked(classdef)

    def _load_linked(self, classdef: ClassDef) -> ClassDef:
        classdef.verify()
        for method in classdef.methods.values():
            self._link_method(method)
        self.classes[classdef.name] = classdef
        self.heap.register_class(classdef)
        return classdef

    def _link_method(self, method: MethodDef) -> None:
        """Assign instruction costs and mark yield points.

        Yield points go on loop back-edges and method invocations,
        mirroring where the Jikes RVM compilers insert them (footnote 4).
        """
        cm = self.cost_model
        method.invalidate_decoded()  # linking invalidates any predecode
        for pc, ins in enumerate(method.code):
            ins.cost = cm.instruction_cost(ins.op)
            if ins.op == bc.INVOKE:
                callee = ins.a[1] if isinstance(ins.a, tuple) else ""
                if callee.endswith("$impl"):
                    # The paper inlines the renamed original method into its
                    # wrapper; no invoke cost, no prologue yield point.
                    ins.cost = 0
                    ins.ypoint = False
                else:
                    ins.ypoint = True
            elif bc.is_branch(ins.op) and isinstance(ins.a, int):
                ins.ypoint = bc.is_backward_branch(ins, pc)

    # ------------------------------------------------------------ resolution
    def classdef(self, name: str) -> ClassDef:
        try:
            return self.classes[name]
        except KeyError:
            raise LinkError(f"class {name!r} not loaded") from None

    def resolve_method(self, class_name: str, method_name: str) -> MethodDef:
        return self.classdef(class_name).method(method_name)

    def resolve_native(self, name: str):
        return self.natives.resolve(name)

    def register_native(self, name: str, fn) -> None:
        self.natives.register(name, fn)

    @property
    def console(self) -> list[str]:
        return self.natives.console

    # -------------------------------------------------------------- threads
    def spawn(
        self,
        class_name: str,
        method_name: str,
        args: list | tuple = (),
        *,
        priority: int = 5,
        name: Optional[str] = None,
    ) -> VMThread:
        """Create and start a guest thread running ``class.method(args)``."""
        if self._ran:
            raise VMStateError("cannot spawn threads after run() completed")
        method = self.resolve_method(class_name, method_name)
        if method.argc != len(args):
            raise LinkError(
                f"{method.qualified_name()} takes {method.argc} args, "
                f"got {len(args)}"
            )
        tid = self._next_tid
        self._next_tid += 1
        thread = VMThread(
            tid,
            name or f"thread-{tid}",
            method,
            list(args),
            priority=priority,
            rng=self.rng.spawn("thread", tid),
        )
        self.threads.append(thread)
        thread.start()
        self.scheduler.make_ready(thread)
        self.trace("spawn", thread, priority=priority)
        return thread

    # ------------------------------------------------------------------ run
    def run(self) -> "JVM":
        """Drive every spawned thread to termination."""
        if self._ran:
            raise VMStateError("run() already completed for this VM")
        self.begin_run()
        self.scheduler.run()
        return self.finish_run()

    def begin_run(self) -> None:
        """One-time pre-run work (load-time barrier elision); idempotent.

        Split out of :meth:`run` so checkpoint-driven steppers
        (:mod:`repro.check.dpor`) can own the ``scheduler.step()`` loop
        while keeping the exact semantics of a plain ``run()``.
        """
        if self.options.modified and self.options.barrier_elision:
            self._run_barrier_elision()

    def finish_run(self) -> "JVM":
        """Mark the run complete and surface the first uncaught guest
        exception (honouring ``options.raise_on_uncaught``)."""
        self._ran = True
        if self.uncaught and self.options.raise_on_uncaught:
            thread, exc = self.uncaught[0]
            raise UncaughtGuestException(
                thread.name,
                exc.classdef.name,
                str(exc.fields.get("message", "")),
            )
        return self

    def _run_barrier_elision(self) -> None:
        if self._elision_done:
            return
        from repro.core.transform import elide_barriers

        elide_barriers(self.classes.values())
        self._elision_done = True

    def after_slice(self) -> None:
        """Scheduler callback after every execution slice."""
        if self.options.detection in ("periodic", "both"):
            if self.clock.now >= self._next_periodic_scan:
                self.support.periodic_scan()
                self._next_periodic_scan = (
                    self.clock.now + self.options.periodic_interval
                )
        if self.fault_plane is not None:
            self.fault_plane.on_slice_end()
        for hook in self.slice_hooks:
            hook(self)

    # ------------------------------------------------------------- services
    def charge(
        self,
        thread: Optional[VMThread],
        cycles: int,
        kind: Optional[str] = None,
    ) -> None:
        """Advance virtual time for runtime work done on a thread's behalf.

        ``kind`` labels the cycles for the profiler (e.g. ``"rollback"``
        for undo-log restores); unlabeled charges inherit the current
        scheduling context's category.
        """
        prof = self.profiler
        if prof is not None and kind is not None:
            prev = prof.push_category(kind)
            self.clock.advance(cycles)
            prof.pop_category(prev)
            prof.note_mechanism(thread, kind, cycles)
        else:
            self.clock.advance(cycles)
        if thread is not None:
            thread.cycles_executed += cycles
            thread.quantum_used += cycles

    def make_guest_exception(self, class_name: str, message: str) -> VMObject:
        try:
            classdef = self.classdef(class_name)
        except LinkError:
            classdef = self.classdef("RuntimeException")
        obj = self.heap.allocate(classdef)
        if "message" in obj.fields:
            obj.fields["message"] = message
        return obj

    def credit_blocked(self, thread: VMThread) -> int:
        """Close ``thread``'s open blocked interval at the current clock
        and mirror the credit into the profiler's blocked attribution.
        The single funnel for every un-block path (grants, wakes,
        revocation wakes) — spans, metrics and the profiler all agree
        because they all read this one moment."""
        cycles = thread.credit_blocked(self.clock.now)
        if cycles and self.profiler is not None:
            self.profiler.note_blocked(thread.name, cycles)
        return cycles

    def record_uncaught(self, thread: VMThread, exc: VMObject) -> None:
        self.uncaught.append((thread, exc))
        self.trace("uncaught", thread, exc=exc.classdef.name)

    def trace(self, kind: str, thread: Optional[VMThread], **details) -> None:
        if not self.tracer.enabled:
            return
        clean = {}
        for k, v in details.items():
            if isinstance(v, VMThread):
                clean[k] = v.name
            elif isinstance(v, Monitor):
                clean[k] = repr(v.obj)
            else:
                clean[k] = v
        self.tracer.record(
            self.clock.now, kind, thread.name if thread else None, **clean
        )

    # ------------------------------------------------------------ host access
    def new_object(self, class_name: str) -> VMObject:
        """Host-side allocation (for wiring up thread arguments)."""
        return self.heap.allocate(self.classdef(class_name))

    def new_array(self, length: int, fill: Any = 0):
        return self.heap.allocate_array(length, fill)

    def get_static(self, class_name: str, field_name: str) -> Any:
        return self.heap.get_static((class_name, field_name))

    def set_static(self, class_name: str, field_name: str, value: Any) -> None:
        self.heap.put_static((class_name, field_name), value)

    def thread_named(self, name: str) -> VMThread:
        for t in self.threads:
            if t.name == name:
                return t
        raise VMStateError(f"no thread named {name!r}")

    # -------------------------------------------------------------- metrics
    def metrics(self) -> dict[str, Any]:
        """Aggregate execution metrics (both VMs report the same schema)."""
        per_thread = {}
        for t in self.threads:
            per_thread[t.name] = {
                "priority": t.priority,
                "state": t.state.value,
                "start_time": t.start_time,
                "end_time": t.end_time,
                "cycles_executed": t.cycles_executed,
                "instructions": t.instructions_executed,
                "blocked_cycles": t.blocked_cycles,
                "revocations": t.revocations,
            }
        support_metrics = {}
        collect = getattr(self.support, "collect_metrics", None)
        if callable(collect):
            support_metrics = collect()
        return {
            "mode": self.options.mode,
            "elapsed_cycles": self.clock.now,
            "context_switches": self.scheduler.context_switches,
            "slices": self.scheduler.slices,
            "watchdog_trips": self.scheduler.watchdog_trips,
            "threads": per_thread,
            "support": support_metrics,
            "trace": {
                "events": len(self.tracer.events),
                "dropped": self.tracer.dropped,
                "sink_errors": self.tracer.sink_errors,
            },
        }

    def all_terminated(self) -> bool:
        return all(
            t.state is ThreadState.TERMINATED for t in self.threads
        )
