"""The guest heap: objects, arrays and static variables.

Every guest object carries a *header* slot for its monitor (inflated lazily
on first synchronization, as in Jikes RVM's lock nursery) and a stable
object id used by the undo log and the JMM dependency tracker to key heap
locations.

Statics live in a per-heap table keyed by ``(class_name, field_name)``; the
paper's undo-log entry for a static store records "the offset of the static
variable in the global symbol table and the old value" (§3.1.2) — our key
plays the role of that offset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import GuestRuntimeError, LinkError
from repro.vm.classfile import ClassDef, FieldDef
from repro.vm.values import NULL

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.monitors import Monitor


class VMObject:
    """An instance of a guest class.

    Field storage is a plain dict (name -> value), pre-populated with JVM
    default values at allocation so reads of unwritten fields are defined.
    """

    __slots__ = ("oid", "classdef", "fields", "monitor")

    def __init__(self, oid: int, classdef: ClassDef):
        self.oid = oid
        self.classdef = classdef
        self.fields: dict[str, Any] = {
            f.name: f.default() for f in classdef.instance_fields()
        }
        self.monitor: "Monitor | None" = None

    def get(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise LinkError(
                f"{self.classdef.name} has no instance field {name!r}"
            ) from None

    def put(self, name: str, value: Any) -> Any:
        """Store ``value`` and return the previous value (for undo logging)."""
        fields = self.fields
        if name not in fields:
            raise LinkError(
                f"{self.classdef.name} has no instance field {name!r}"
            )
        old = fields[name]
        fields[name] = value
        return old

    def field_def(self, name: str) -> FieldDef:
        return self.classdef.field(name)

    def __repr__(self) -> str:
        return f"<{self.classdef.name}#{self.oid}>"


class VMArray:
    """A guest array of untyped slots."""

    __slots__ = ("oid", "storage", "monitor")

    def __init__(self, oid: int, length: int, fill: Any = 0):
        if length < 0:
            raise GuestRuntimeError(
                f"negative array length {length}",
                guest_class="NegativeArraySizeException",
            )
        self.oid = oid
        self.storage: list[Any] = [fill] * length
        self.monitor: "Monitor | None" = None

    def __len__(self) -> int:
        return len(self.storage)

    def get(self, index: int) -> Any:
        if not (0 <= index < len(self.storage)):
            raise GuestRuntimeError(
                f"array index {index} out of bounds [0, {len(self.storage)})",
                guest_class="ArrayIndexOutOfBoundsException",
            )
        return self.storage[index]

    def put(self, index: int, value: Any) -> Any:
        """Store and return the previous value (for undo logging)."""
        if not (0 <= index < len(self.storage)):
            raise GuestRuntimeError(
                f"array index {index} out of bounds [0, {len(self.storage)})",
                guest_class="ArrayIndexOutOfBoundsException",
            )
        old = self.storage[index]
        self.storage[index] = value
        return old

    def snapshot(self) -> list[Any]:
        return list(self.storage)

    def __repr__(self) -> str:
        return f"<array#{self.oid} len={len(self.storage)}>"


class Heap:
    """Allocator plus the statics table.

    ``Class`` objects: for every loaded class the heap materializes one
    :class:`VMObject` of the built-in ``Class`` classdef; synchronized
    *static* methods lock it, as the JVM locks ``Foo.class``.
    """

    _CLASS_CLASSDEF = ClassDef("Class")

    def __init__(self) -> None:
        self._next_oid = 1
        self.statics: dict[tuple[str, str], Any] = {}
        self._static_defs: dict[tuple[str, str], FieldDef] = {}
        self.class_objects: dict[str, VMObject] = {}
        self.objects_allocated = 0
        self.arrays_allocated = 0

    def _oid(self) -> int:
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def register_class(self, classdef: ClassDef) -> VMObject:
        """Install a class's statics and create its ``Class`` object."""
        for f in classdef.static_fields():
            key = (classdef.name, f.name)
            self.statics[key] = f.default()
            self._static_defs[key] = f
        cls_obj = VMObject(self._oid(), self._CLASS_CLASSDEF)
        self.class_objects[classdef.name] = cls_obj
        return cls_obj

    def class_object(self, class_name: str) -> VMObject:
        try:
            return self.class_objects[class_name]
        except KeyError:
            raise LinkError(f"class {class_name!r} not loaded") from None

    def allocate(self, classdef: ClassDef) -> VMObject:
        self.objects_allocated += 1
        return VMObject(self._oid(), classdef)

    def allocate_array(self, length: int, fill: Any = 0) -> VMArray:
        self.arrays_allocated += 1
        return VMArray(self._oid(), length, fill)

    # ------------------------------------------------------------- statics
    def static_def(self, class_name: str, field_name: str) -> FieldDef:
        try:
            return self._static_defs[(class_name, field_name)]
        except KeyError:
            raise LinkError(
                f"no static field {class_name}.{field_name}"
            ) from None

    def get_static(self, key: tuple[str, str]) -> Any:
        try:
            return self.statics[key]
        except KeyError:
            raise LinkError(f"no static field {key[0]}.{key[1]}") from None

    def put_static(self, key: tuple[str, str], value: Any) -> Any:
        """Store and return the previous value (for undo logging)."""
        statics = self.statics
        if key not in statics:
            raise LinkError(f"no static field {key[0]}.{key[1]}")
        old = statics[key]
        statics[key] = value
        return old

    def iter_statics(self) -> Iterator[tuple[tuple[str, str], Any]]:
        return iter(self.statics.items())


def location_of(container: VMObject | VMArray | tuple[str, str], slot) -> tuple:
    """Canonical key of a heap location for undo-log / JMM bookkeeping.

    * instance field -> ``("f", oid, field_name)``
    * array element  -> ``("a", oid, index)``
    * static field   -> ``("s", class_name, field_name)``
    """
    if isinstance(container, VMObject):
        return ("f", container.oid, slot)
    if isinstance(container, VMArray):
        return ("a", container.oid, slot)
    cls, fname = container
    return ("s", cls, fname)


NULL_REF_MESSAGE = "null reference dereferenced"


def require_ref(value: Any, what: str = "reference"):
    """Raise the guest-level NPE analogue on ``null`` / non-reference."""
    if value is NULL:
        raise GuestRuntimeError(
            f"{NULL_REF_MESSAGE} ({what})",
            guest_class="NullPointerException",
        )
    if not isinstance(value, (VMObject, VMArray)):
        raise GuestRuntimeError(
            f"expected a {what}, got {value!r}",
            guest_class="NullPointerException",
        )
    return value
