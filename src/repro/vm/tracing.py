"""Structured execution tracing.

When enabled (``VMOptions.trace=True``) the VM records every scheduling,
synchronization, revocation and JMM event as a :class:`TraceEvent`.  Tests
assert on these traces (e.g. "no default handlers ran during a rollback",
"the high-priority thread acquired the monitor immediately after the
revocation"); examples print them to narrate executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One event: virtual time, kind, acting thread, free-form details."""

    time: int
    kind: str
    thread: Optional[str]
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = [f"[{self.time:>10}]", self.kind]
        if self.thread is not None:
            parts.append(f"thread={self.thread}")
        for k, v in self.details.items():
            parts.append(f"{k}={v}")
        return " ".join(parts)


class Tracer:
    """Append-only event log with query helpers.

    Besides the stored log, the tracer supports *streaming sinks*:
    callables registered with :meth:`add_sink` receive every event as it
    is recorded.  Sinks let online analyses (the Eraser-style lockset
    pass in :mod:`repro.check.lockset`) consume high-volume event streams
    without buffering them; set ``store=False`` to stream only and keep
    memory flat regardless of run length."""

    def __init__(self, enabled: bool = False, capacity: int = 1_000_000):
        self.enabled = enabled
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.dropped = 0
        #: sinks detached because they raised (observability must never
        #: take down the run it is observing)
        self.sink_errors = 0
        #: keep events in :attr:`events` (sinks still fire when False)
        self.store = True
        self._sinks: list = []

    def add_sink(self, sink) -> None:
        """Register a callable invoked with each recorded TraceEvent."""
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        self._sinks.remove(sink)

    def record(
        self, time: int, kind: str, thread_name: Optional[str], **details
    ) -> None:
        if not self.enabled:
            return
        event = TraceEvent(time, kind, thread_name, details)
        if self._sinks:
            broken = None
            for sink in self._sinks:
                try:
                    sink(event)
                except Exception:
                    # A faulty sink must not abort the VM run: detach it
                    # and count the detachment so summaries can report it.
                    if broken is None:
                        broken = []
                    broken.append(sink)
            if broken:
                for sink in broken:
                    self._sinks.remove(sink)
                self.sink_errors += len(broken)
        if not self.store:
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    # -------------------------------------------------------------- queries
    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        want = set(kinds)
        return [e for e in self.events if e.kind in want]

    def for_thread(self, name: str) -> list[TraceEvent]:
        return [e for e in self.events if e.thread == name]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def first(self, kind: str) -> Optional[TraceEvent]:
        for e in self.events:
            if e.kind == kind:
                return e
        return None

    def last(self, kind: str) -> Optional[TraceEvent]:
        for e in reversed(self.events):
            if e.kind == kind:
                return e
        return None

    def between(self, start: int, end: int) -> list[TraceEvent]:
        return [e for e in self.events if start <= e.time < end]

    def render(self, events: Iterable[TraceEvent] | None = None) -> str:
        return "\n".join(str(e) for e in (events or self.events))
