"""Interactive inspection: step a VM slice by slice and look inside it.

The :class:`Inspector` drives the same scheduler entry point the normal
run loop uses, one scheduling decision at a time, so a debugging session
observes exactly the execution a plain ``vm.run()`` would produce::

    vm = JVM(VMOptions(mode="rollback", trace=True))
    ...load/spawn...
    insp = Inspector(vm)
    insp.run_until_event("rollback_begin")     # stop at the first rollback
    print(insp.stack_trace(vm.thread_named("low")))
    print(insp.disassemble_around(vm.thread_named("low")))
    insp.finish()                              # drive the rest to completion
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import VMStateError
from repro.vm.bytecode import disassemble
from repro.vm.threads import ThreadState, VMThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vmcore import JVM


class Inspector:
    """Slice-stepping controller for one :class:`~repro.vm.vmcore.JVM`.

    Construct it *instead of* calling ``vm.run()``; call :meth:`finish`
    (or step to exhaustion) to complete the run.  The VM is marked as run
    once the inspector drains it, so the usual one-shot rules apply.
    """

    def __init__(self, vm: "JVM"):
        if vm._ran:
            raise VMStateError("this VM already completed run()")
        self.vm = vm
        self._exhausted = False
        if vm.options.modified and vm.options.barrier_elision:
            vm._run_barrier_elision()

    # --------------------------------------------------------------- driving
    def step_slice(self, n: int = 1) -> list[tuple[Optional[str], str]]:
        """Execute up to ``n`` scheduling decisions.

        Returns the executed steps as ``(thread name or None, reason)``
        pairs; fewer than ``n`` entries means the VM ran out of work.
        """
        steps: list[tuple[Optional[str], str]] = []
        for _ in range(n):
            result = self._step()
            if result is None:
                break
            thread, reason = result
            steps.append((thread.name if thread else None, reason))
        return steps

    def run_until(
        self,
        predicate: Callable[["JVM"], bool],
        *,
        max_slices: int = 1_000_000,
    ) -> bool:
        """Step until ``predicate(vm)`` holds.  Returns False when the VM
        finished (or the slice budget ran out) without satisfying it."""
        for _ in range(max_slices):
            if predicate(self.vm):
                return True
            if self._step() is None:
                return predicate(self.vm)
        return False

    def run_until_event(self, kind: str, **match) -> bool:
        """Step until a trace event of ``kind`` (with matching detail
        key/values) has been recorded.  Requires tracing."""
        if not self.vm.tracer.enabled:
            raise VMStateError(
                "run_until_event needs VMOptions(trace=True)"
            )

        def seen(vm: "JVM") -> bool:
            for e in vm.tracer.of_kind(kind):
                if all(e.details.get(k) == v for k, v in match.items()):
                    return True
            return False

        return self.run_until(seen)

    def finish(self) -> "JVM":
        """Drive the remaining work to completion (like ``vm.run()``)."""
        while self._step() is not None:
            pass
        return self.vm

    def _step(self):
        if self._exhausted:
            return None
        result = self.vm.scheduler.step()
        if result is None:
            self._exhausted = True
            self.vm._ran = True
            if self.vm.uncaught and self.vm.options.raise_on_uncaught:
                from repro.errors import UncaughtGuestException

                thread, exc = self.vm.uncaught[0]
                raise UncaughtGuestException(
                    thread.name,
                    exc.classdef.name,
                    str(exc.fields.get("message", "")),
                )
        return result

    @property
    def finished(self) -> bool:
        return self._exhausted

    # ------------------------------------------------------------ inspection
    def stack_trace(self, thread: VMThread) -> str:
        """Render the thread's call stack, innermost frame first."""
        lines = [
            f"{thread.name} [{thread.state.value}] "
            f"prio={thread.priority}"
            + (f" (eff {thread.effective_priority})"
               if thread.effective_priority != thread.priority else "")
        ]
        for frame in reversed(thread.frames):
            ins = (
                frame.code[frame.pc] if frame.pc < len(frame.code) else "?"
            )
            lines.append(
                f"  at {frame.method.qualified_name()} pc={frame.pc}: "
                f"{ins!r}"
            )
        if thread.sections:
            lines.append(
                "  sections: "
                + " > ".join(repr(s) for s in thread.sections)
            )
        if thread.blocked_on is not None:
            lines.append(f"  blocked on {thread.blocked_on!r}")
        return "\n".join(lines)

    def disassemble_around(
        self, thread: VMThread, *, window: int = 4
    ) -> str:
        """Disassembly of the current frame around its pc."""
        if not thread.frames:
            return f"{thread.name}: no frames"
        frame = thread.frames[-1]
        lo = max(0, frame.pc - window)
        hi = min(len(frame.code), frame.pc + window + 1)
        lines = []
        for pc in range(lo, hi):
            marker = "->" if pc == frame.pc else "  "
            lines.append(f"{marker} {pc:>4}: {frame.code[pc]!r}")
        return "\n".join(lines)

    def locals_of(self, thread: VMThread) -> list:
        """Snapshot of the current frame's local variables."""
        if not thread.frames:
            return []
        return list(thread.frames[-1].locals)

    def operand_stack_of(self, thread: VMThread) -> list:
        if not thread.frames:
            return []
        return list(thread.frames[-1].stack)

    def threads_summary(self) -> str:
        """One line per thread: state, priority, position."""
        lines = []
        for t in self.vm.threads:
            pos = ""
            if t.frames and t.state is not ThreadState.TERMINATED:
                frame = t.frames[-1]
                pos = f" @ {frame.method.qualified_name()}:{frame.pc}"
            lines.append(
                f"{t.name:>12}  {t.state.value:<10} prio={t.priority}"
                f"{pos}"
            )
        return "\n".join(lines)

    def disassemble_method(self, class_name: str, method: str) -> str:
        return disassemble(self.vm.resolve_method(class_name, method).code)

    def disassemble_decoded(self, class_name: str, method: str) -> str:
        """Predecode view of a method: fused basic blocks with their
        batched costs, superinstruction counts, and the generated Python
        source of each block (see :mod:`repro.vm.predecode`).

        Predecodes on demand, so it works regardless of whether the fast
        interpreter has executed the method yet (and under the reference
        interpreter, where it shows what *would* fuse).
        """
        from repro.vm.predecode import predecode_method, render_decoded

        m = self.vm.resolve_method(class_name, method)
        return render_decoded(predecode_method(self.vm, m))
