"""Monitors: mutual exclusion, prioritized entry queues, wait sets.

Every guest object can act as a monitor (inflated lazily).  The monitor
header holds the fields the paper's detection algorithm reads (§4):

* ``owner`` and ``count`` — recursive ownership;
* ``deposited_priority`` — "a thread acquiring a monitor deposits its
  priority in the header of the monitor object";
* the **prioritized entry queue** — "when a thread releases a monitor,
  another thread is scheduled from the queue.  If it is a high-priority
  thread, it is allowed to acquire the monitor.  If it is a low-priority
  thread, it is allowed to run only if there are no other waiting
  high-priority threads."

Release policy is chosen *by the caller* per release (the VM passes its
options), keeping the monitor itself policy-free:

``handoff=False`` (the default VM behaviour, faithful to the paper's
platform): release frees the monitor and *wakes* the preferred waiter,
which must still be scheduled before it can re-attempt acquisition — so a
runnable thread that reaches ``monitorenter`` first can **barge** in.  On
Jikes RVM this is exactly why a high-priority thread could wait through
many low-priority sections and why revocation pays off so visibly.

``handoff=True`` (ablation): ownership transfers directly to the chosen
waiter before it runs, eliminating barging and strengthening the blocking
baseline (see the ``abl-handoff`` benchmark).

``prioritized`` selects the waiter: highest effective priority, FIFO
within a level (paper §4); plain FIFO when disabled (ablation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import GuestRuntimeError

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.heap import VMArray, VMObject
    from repro.vm.threads import VMThread


class Monitor:
    """Inflated monitor state for one guest object."""

    __slots__ = (
        "obj",
        "owner",
        "count",
        "deposited_priority",
        "entry_queue",
        "wait_set",
        "ceiling",
        "first_section",
        "acquisitions",
        "contended_acquisitions",
        "handoffs",
        "wakeups",
    )

    def __init__(self, obj: "VMObject | VMArray"):
        self.obj = obj
        self.owner: "VMThread | None" = None
        self.count = 0
        self.deposited_priority: int = -1
        #: waiting to *enter*: list of (thread, count_on_acquire)
        self.entry_queue: list[tuple["VMThread", int]] = []
        #: called wait(): list of (thread, saved_count)
        self.wait_set: list[tuple["VMThread", int]] = []
        self.ceiling: Optional[int] = None
        #: section record of the owner's outermost acquisition (set by the
        #: rollback runtime; None on the unmodified VM)
        self.first_section = None
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.handoffs = 0
        self.wakeups = 0

    # ------------------------------------------------------------ acquisition
    def try_acquire(self, thread: "VMThread") -> bool:
        """Uncontended or recursive acquisition; False when owned by another."""
        if self.owner is None:
            self.owner = thread
            self.count = 1
            self.deposited_priority = thread.effective_priority
            self.acquisitions += 1
            thread.held_monitors.append(self)
            return True
        if self.owner is thread:
            self.count += 1
            self.acquisitions += 1
            return True
        return False

    def enqueue(self, thread: "VMThread", count_on_acquire: int = 1) -> None:
        """Park ``thread`` on the entry queue (it must then block)."""
        if any(t is thread for t, _ in self.entry_queue):
            raise GuestRuntimeError(
                f"thread {thread.name!r} already queued on {self.obj!r}"
            )
        self.entry_queue.append((thread, count_on_acquire))
        self.contended_acquisitions += 1

    def remove_from_queue(self, thread: "VMThread") -> None:
        self.entry_queue = [
            (t, c) for t, c in self.entry_queue if t is not thread
        ]

    def is_queued(self, thread: "VMThread") -> bool:
        return any(t is thread for t, _ in self.entry_queue)

    def queued_count(self, thread: "VMThread") -> Optional[int]:
        """The recursion count this queued thread will restore on acquire."""
        for t, c in self.entry_queue:
            if t is thread:
                return c
        return None

    def _best_index(self, prioritized: bool) -> Optional[int]:
        if not self.entry_queue:
            return None
        if not prioritized:
            return 0
        best_i = 0
        best_p = self.entry_queue[0][0].effective_priority
        for i in range(1, len(self.entry_queue)):
            p = self.entry_queue[i][0].effective_priority
            if p > best_p:
                best_i, best_p = i, p
        return best_i

    def release(
        self,
        thread: "VMThread",
        *,
        prioritized: bool = True,
        handoff: bool = True,
    ) -> Optional["VMThread"]:
        """One level of release.

        On a full release with waiters queued, returns the preferred
        waiter.  With ``handoff`` it already owns the monitor (caller makes
        it runnable); without, the monitor is free and the waiter was
        merely *selected* — it stays queued, and the caller wakes it to
        retry (arriving threads may barge first).
        """
        if self.owner is not thread:
            raise GuestRuntimeError(
                f"thread {thread.name!r} released monitor {self.obj!r} "
                f"owned by "
                f"{self.owner.name if self.owner else 'nobody'!r}",
                guest_class="IllegalMonitorStateException",
            )
        self.count -= 1
        if self.count > 0:
            return None
        thread.held_monitors.remove(self)
        self.first_section = None
        self.owner = None
        self.deposited_priority = -1
        index = self._best_index(prioritized)
        if index is None:
            return None
        if handoff:
            waiter, count = self.entry_queue.pop(index)
            self.owner = waiter
            self.count = count
            self.deposited_priority = waiter.effective_priority
            self.acquisitions += 1
            self.handoffs += 1
            waiter.held_monitors.append(self)
            return waiter
        self.wakeups += 1
        return self.entry_queue[index][0]

    def wait_release(
        self,
        thread: "VMThread",
        *,
        prioritized: bool = True,
        handoff: bool = True,
    ) -> tuple[int, Optional["VMThread"]]:
        """Fully release for ``wait``: drops all recursion levels at once.

        Returns ``(saved_count, successor)``; the caller records
        ``saved_count`` in the wait set so reacquisition restores it.
        """
        if self.owner is not thread:
            raise GuestRuntimeError(
                f"wait/notify on monitor {self.obj!r} not owned by "
                f"{thread.name!r}",
                guest_class="IllegalMonitorStateException",
            )
        saved = self.count
        self.count = 1
        successor = self.release(
            thread, prioritized=prioritized, handoff=handoff
        )
        return saved, successor

    # -------------------------------------------------------------- wait set
    def add_waiter(self, thread: "VMThread", saved_count: int) -> None:
        self.wait_set.append((thread, saved_count))

    def remove_waiter(self, thread: "VMThread") -> Optional[int]:
        """Remove from the wait set, returning the saved recursion count."""
        for i, (t, c) in enumerate(self.wait_set):
            if t is thread:
                del self.wait_set[i]
                return c
        return None

    def notify_one(self) -> Optional[tuple["VMThread", int]]:
        """Move the longest-waiting thread from the wait set toward the
        entry queue.  Returns (thread, saved_count) or None."""
        if not self.wait_set:
            return None
        return self.wait_set.pop(0)

    def notify_all(self) -> list[tuple["VMThread", int]]:
        moved, self.wait_set = self.wait_set, []
        return moved

    def refresh_deposited(self) -> None:
        """Re-deposit the owner's *current* effective priority.

        Priority donations change the owner's effective priority after the
        deposit made at acquisition time; detection compares against the
        deposited value, so a stale deposit would keep reporting an
        inversion that inheritance already cured.
        """
        if self.owner is not None:
            self.deposited_priority = self.owner.effective_priority

    # ------------------------------------------------------------- inspection
    def is_locked(self) -> bool:
        return self.owner is not None

    def waiters(self) -> list["VMThread"]:
        return [t for t, _ in self.entry_queue]

    def highest_queued_priority(self) -> int:
        if not self.entry_queue:
            return -1
        return max(t.effective_priority for t, _ in self.entry_queue)

    def __repr__(self) -> str:
        owner = self.owner.name if self.owner else None
        return (
            f"Monitor({self.obj!r}, owner={owner!r}, count={self.count}, "
            f"queued={len(self.entry_queue)}, waiting={len(self.wait_set)})"
        )


def monitor_of(obj) -> Monitor:
    """Return the object's monitor, inflating it on first use."""
    mon = obj.monitor
    if mon is None:
        mon = Monitor(obj)
        obj.monitor = mon
    return mon
