"""Predecode: translate linked bytecode into fused basic-block closures.

The fast interpreter (:mod:`repro.vm.fastinterp`) spends almost all of its
host time decoding guest instructions one at a time through a long
``if/elif`` chain.  This module removes that cost for straight-line code:
at first execution of a method it discovers *fusable runs* — maximal
sequences of opcodes that can never flush the virtual clock, park the
thread, or emit a trace event — and compiles each run into one Python
function (a basic-block superinstruction).  The block carries its summed
static cycle cost and instruction count, so the interpreter charges a
whole block with two additions instead of one dispatch per instruction
(*basic-block cost batching*).

The entire method — every basic block plus the superblocks the trace
compiler (:mod:`repro.vm.tracecomp`) forms over its loops — is generated
as one Python module source and compiled in a single ``compile``/``exec``
pass (*method-level translation*).  The compiled code is keyed to the
per-VM :class:`MethodDef` copy together with its inline-cache cells, and
``MethodDef.invalidate_decoded`` drops blocks, superblocks, caches and
constant pool as one unit — there is no path on which a stale closure can
outlive a mutation of ``method.code``.

Semantics preservation is the hard requirement: the reference interpreter
(:class:`repro.vm.interpreter.Interpreter`) is the oracle and the parity
suite (``tests/test_interp_parity.py``) asserts byte-identical virtual
clocks, trace streams, schedules and checker fingerprints.  The design
invariants that make this safe:

* Blocks contain only ops from :data:`repro.vm.bytecode.FUSABLE_OPS` and
  never include a yield point.  Every clock flush, preemption check,
  revocation delivery, fault-injection probe and trace event therefore
  happens at exactly the pcs the reference uses.
* Cost batching is exact, not approximate: the block's static cost equals
  the sum the reference would accrue into its ``acc`` local between the
  same two flush points, and dynamic (write/read barrier) cycles are
  accumulated into a side cell the interpreter folds into ``acc`` after
  the block returns — mirroring the reference's ``acc +=
  support.before_store(...)`` lines.
* Guest exceptions thrown mid-block are repaired precisely: before every
  op that can raise a :class:`~repro.errors.GuestRuntimeError` the block
  stores that op's pc into a fault cell, and the interpreter subtracts
  the pre-charged cost/count of the not-executed block suffix before
  dispatching the exception.  The operand stack needs no repair because
  JVM exception dispatch clears it (handlers in the same frame) or
  discards the frame.
* Heap ops go through the *same* seams as the reference — ``require_ref``,
  ``VMObject.get/put``, ``Heap.get_static/put_static``,
  ``support.after_load/before_store`` — with per-site monomorphic inline
  cache cells replacing the reference's ``ins.c`` caches.
* Runs of consecutive barrier stores with no intervening raising op or
  read barrier are appended through one
  ``support.before_store_batch`` call (*batched write barriers*); the
  heap mutations themselves stay in place, only the logging/costing calls
  coalesce, and the batch is flushed before every point at which its
  effects could be observed (fault sites, read barriers, block exits).

Superinstruction patterns recognised during code generation:

* ``cmp+branch``: a comparison feeding a forward branch compiles to one
  conditional ``return`` with no intermediate 0/1 materialisation;
* ``const+div``/``const+mod``: division by a non-zero integer constant
  skips the zero-divisor test;
* ``alu+store``: a STORE whose value was computed in-block writes the
  local directly without touching the operand stack.

Predecoding is lazy (first execution of each method, after class loading,
transformation and barrier elision have settled) and cached on the
:class:`~repro.vm.classfile.MethodDef`, which is per-VM because
``JVM.load`` always copies class definitions.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import GuestRuntimeError, StarvationError
from repro.vm import bytecode as bc
from repro.vm.classfile import MethodDef
from repro.vm.heap import require_ref
from repro.vm.interpreter import Interpreter, _idiv, _imod


# --------------------------------------------------------------- helpers
# Runtime helpers referenced from generated code (short upper-case names
# keep the generated source readable in dumps and tracebacks).

def _mod_values(a, b):
    """MOD with an unknown divisor — replicates the reference arm."""
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise GuestRuntimeError(
                "integer remainder by zero",
                guest_class="ArithmeticException",
            )
        return _imod(a, b)
    return Interpreter._fmod(a, b)


def _div_values(a, b):
    """DIV with an unknown divisor — replicates the reference arm."""
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise GuestRuntimeError(
                "integer division by zero",
                guest_class="ArithmeticException",
            )
        return _idiv(a, b)
    return Interpreter._fdiv(a, b)


def _mod_const(a, b):
    """MOD by a known non-zero int constant: no zero test needed."""
    if isinstance(a, int):
        return _imod(a, b)
    return Interpreter._fmod(a, b)


def _div_const(a, b):
    """DIV by a known non-zero int constant: no zero test needed."""
    if isinstance(a, int):
        return _idiv(a, b)
    return Interpreter._fdiv(a, b)


def _mod_pos_const(a, k):
    """MOD by a known *positive* int constant, without the _idiv round trip.

    Java remainder takes the dividend's sign; Python ``%`` takes the
    divisor's, so correct the non-zero negative-dividend case.  Equivalent
    to ``_imod(a, k)`` for every int ``a`` when ``k > 0``.
    """
    if isinstance(a, int):
        r = a % k
        return r - k if r and a < 0 else r
    return Interpreter._fmod(a, k)


def _div_pos_const(a, k):
    """DIV by a known positive int constant (truncation toward zero)."""
    if isinstance(a, int):
        return a // k if a >= 0 else -((-a) // k)
    return Interpreter._fdiv(a, k)


_CMP_EXPR = {
    bc.LT: "<", bc.LE: "<=", bc.GT: ">", bc.GE: ">=",
}
_BIN_EXPR = {
    bc.ADD: "+", bc.SUB: "-", bc.MUL: "*", bc.AND: "&", bc.OR: "|",
    bc.XOR: "^", bc.SHL: "<<", bc.SHR: ">>",
}

#: Single-instruction runs of these ops are cheaper through the dispatch
#: chain than through a function call; only fuse them in company.
_SINGLETON_SKIP = bc.FUSABLE_PURE | bc.FUSABLE_BRANCH

_NOVAL = object()


class _Sym:
    """One symbolic operand-stack entry sitting above the real stack.

    ``expr`` is always a *pure, repeatable* Python expression (a literal,
    a constant-pool ref, a generated temp, or a ``locals_[i]`` read);
    ``deps`` lists the local slots the expression reads so STORE/IINC can
    materialise it first; ``val`` carries the Python value for literal
    constants (enables the const-divisor superinstruction).
    """

    __slots__ = ("expr", "deps", "val")

    def __init__(self, expr: str, deps: tuple = (), val: Any = _NOVAL):
        self.expr = expr
        self.deps = deps
        self.val = val


class BasicBlock:
    """A compiled fusable run ``[start, end)`` of one method's code."""

    __slots__ = (
        "start", "end", "cost", "count", "fn", "dynamic", "raising",
        "suffix_cost", "suffix_count", "source",
    )

    def __init__(self, start: int, end: int, cost: int, count: int,
                 fn, dynamic: bool, raising: bool,
                 suffix_cost: tuple, suffix_count: tuple, source: str):
        self.start = start
        self.end = end
        #: summed static cycle cost of all instructions in the run
        self.cost = cost
        #: number of guest instructions in the run
        self.count = count
        #: ``fn(stack, locals_, F, A, T) -> next pc`` (bound by the
        #: method-level compile after all sources are collected)
        self.fn = fn
        #: True when the block accrues dynamic barrier cycles into ``A[0]``
        self.dynamic = dynamic
        #: True when the block can raise a GuestRuntimeError (uses ``F[0]``)
        self.raising = raising
        #: ``suffix_cost[k]``: static cost of instructions *after* relative
        #: index ``k`` — subtracted when instruction ``start+k`` faults.
        self.suffix_cost = suffix_cost
        self.suffix_count = suffix_count
        #: generated Python source (debugging / ``Inspector`` dumps)
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BasicBlock [{self.start},{self.end}) cost={self.cost} "
            f"count={self.count} dynamic={self.dynamic} "
            f"raising={self.raising}>"
        )


class DecodedMethod:
    """Predecode result for one :class:`MethodDef`.

    ``blocks`` is indexed by pc: ``blocks[pc]`` is the :class:`BasicBlock`
    starting at ``pc`` or ``None`` when that pc executes through the
    interpreter's dispatch chain.  ``superblocks`` is likewise indexed by
    pc: ``superblocks[pc]`` is the :class:`~repro.vm.tracecomp.SuperBlock`
    anchored at the backward-GOTO yield point ``pc``, or ``None``.
    Missing blocks/superblocks are always safe — the fast interpreter
    retains the full reference chain as its fallback, so predecode
    coverage affects speed only, never behaviour.
    """

    __slots__ = ("method", "blocks", "block_list", "superinstructions",
                 "fused_instructions", "superblocks", "superblock_list")

    def __init__(self, method: MethodDef, blocks: list,
                 superinstructions: dict, superblocks: Optional[list] = None):
        self.method = method
        self.blocks = blocks
        self.block_list = [b for b in blocks if b is not None]
        #: pattern name -> number of fusions applied
        self.superinstructions = superinstructions
        self.fused_instructions = sum(b.count for b in self.block_list)
        if superblocks is None:
            superblocks = [None] * len(blocks)
        self.superblocks = superblocks
        self.superblock_list = [s for s in superblocks if s is not None]


def invalidate(method: MethodDef) -> None:
    """Drop a cached predecode (call after mutating ``method.code``)."""
    method.__dict__.pop("_decoded", None)


def predecode_method(vm, method: MethodDef) -> DecodedMethod:
    """Predecode ``method`` for ``vm``; cached on the MethodDef.

    Must run only after the method is linked into ``vm`` (costs and yield
    points assigned, transformer and barrier elision done) — the fast
    interpreter calls it lazily at first execution, which satisfies that.
    """
    cached = method.__dict__.get("_decoded")
    if cached is not None:
        return cached
    dm = _Predecoder(vm, method).build()
    method._decoded = dm
    return dm


# ------------------------------------------------------------ discovery
def find_leaders(method: MethodDef) -> set[int]:
    """Pcs where control can (re-)enter a method mid-body.

    Blocks must start at (or after) a leader and never span one: branch
    targets, exception/rollback handlers, rollback resume points, and the
    fall-through successor of every chain-executed instruction (the chain
    leaves ``frame.pc`` there on preemption, monitor re-entry, wait
    wake-up, invoke return, ...).
    """
    code = method.code
    leaders = {0}
    for pc, ins in enumerate(code):
        op = ins.op
        if bc.is_branch(op) and isinstance(ins.a, int):
            leaders.add(ins.a)
        if op == bc.ROLLBACK_HANDLER and isinstance(ins.b, int):
            leaders.add(ins.b)
        if op not in bc.FUSABLE_OPS or ins.ypoint:
            leaders.add(pc + 1)
    for entry in method.exc_table:
        leaders.add(entry.handler)
    return leaders


def find_runs(method: MethodDef, leaders: set[int],
              fuse_heap: bool = True) -> list[tuple[int, int]]:
    """Maximal fusable runs ``[start, end)``; branches only as terminators."""
    code = method.code
    n = len(code)
    runs = []
    pc = 0
    while pc < n:
        if not _fusable(code[pc], fuse_heap):
            pc += 1
            continue
        start = pc
        end = pc
        while end < n:
            ins = code[end]
            if end > start and end in leaders:
                break
            if not _fusable(ins, fuse_heap):
                break
            end += 1
            if ins.op in bc.FUSABLE_BRANCH:
                break  # branches terminate the run
        if end - start == 1 and code[start].op in _SINGLETON_SKIP:
            pc = end
            continue  # cheaper through the dispatch chain
        runs.append((start, end))
        pc = end
    return runs


def _fusable(ins, fuse_heap: bool) -> bool:
    op = ins.op
    if op not in bc.FUSABLE_OPS or ins.ypoint:
        return False
    if op in bc.FUSABLE_HEAP and not fuse_heap:
        return False
    if op in bc.FUSABLE_BRANCH and not isinstance(ins.a, int):
        return False  # unresolved label (never post-build, but be safe)
    return True


# -------------------------------------------------------------- code gen
class _Emitter:
    """Symbolic-stack code generator shared by the basic-block compiler
    and the superblock trace compiler (:mod:`repro.vm.tracecomp`).

    Two modes, differing only in cost accounting:

    ``"block"``
        Dynamic barrier/read-barrier cycles accrue into the ``A[0]`` side
        cell; static costs are *not* emitted — the interpreter charges
        the block's precomputed total up front and repairs faults through
        the suffix arrays.

    ``"super"``
        Static costs are charged lazily: accumulated at codegen time into
        ``pending_cost``/``pending_count`` and flushed into the generated
        ``acc``/``ic`` locals before any op that can raise (including
        that op's own cost, mirroring the reference's charge-before-
        execute order), at control-flow splits, and at iteration
        boundaries.  ``acc``/``ic`` therefore hold exactly the reference
        interpreter's unflushed accumulators at every point a guest
        exception can escape, with no repair table needed.  Dynamic
        cycles accrue into ``acc`` directly.

    In both modes consecutive barrier stores batch into one deferred
    ``before_store_batch`` call, flushed before any observation point.
    """

    def __init__(self, owner: "_Predecoder", mode: str):
        self.owner = owner
        self.mode = mode
        self.acc = "A[0]" if mode == "block" else "acc"
        self.lines: list[str] = []
        self.sym: list[_Sym] = []
        self.indent = 1
        self.tmp = 0
        self.raising = False
        self.dynamic = False
        self.pending_cost = 0
        self.pending_count = 0
        #: deferred (container, slot, old_value, volatile) expression
        #: 4-tuples for the batched write-barrier call
        self.batch: list[tuple[str, str, str, str]] = []

    # ------------------------------------------------------------ plumbing
    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def newtmp(self) -> str:
        name = f"t{self.tmp}"
        self.tmp += 1
        return name

    def pop(self) -> _Sym:
        if self.sym:
            return self.sym.pop()
        t = self.newtmp()
        self.emit(f"{t} = stack.pop()")
        return _Sym(t)

    def push(self, entry: _Sym) -> None:
        self.sym.append(entry)

    def push_tmp(self, expr: str) -> str:
        """Evaluate ``expr`` into a temp now; push the temp."""
        t = self.newtmp()
        self.emit(f"{t} = {expr}")
        self.sym.append(_Sym(t))
        return t

    def spill(self, local: int) -> None:
        """Materialise symbolic entries that read local ``local``."""
        for e in self.sym:
            if local in e.deps:
                t = self.newtmp()
                self.emit(f"{t} = {e.expr}")
                e.expr = t
                e.deps = ()
                e.val = _NOVAL

    def flush_stack(self) -> None:
        if not self.sym:
            return
        if len(self.sym) == 1:
            self.emit(f"stack.append({self.sym[0].expr})")
        else:
            exprs = ", ".join(e.expr for e in self.sym)
            self.emit(f"stack.extend(({exprs}))")
        del self.sym[:]

    # ------------------------------------------------------------- costing
    def charge(self, ins) -> None:
        """Accumulate ``ins``'s static cost (superblock mode only; block
        costs are charged by the interpreter from the block totals)."""
        if self.mode == "super":
            self.pending_cost += ins.cost
            self.pending_count += 1

    def flush_charges(self) -> None:
        """Emit the pending static charges into ``acc``/``ic``."""
        if self.pending_cost or self.pending_count:
            if self.pending_cost:
                self.emit(f"acc += {self.pending_cost}")
            self.emit(f"ic += {self.pending_count}")
            self.pending_cost = 0
            self.pending_count = 0

    def flush_batch(self) -> None:
        """Emit the deferred write-barrier batch (one call, in order)."""
        batch = self.batch
        if not batch:
            return
        self.dynamic = True
        if len(batch) == 1:
            c, s, o, v = batch[0]
            self.emit(f"{self.acc} += BS(T, {c}, {s}, {o}, {v})")
        else:
            entries = ", ".join(
                f"({c}, {s}, {o}, {v})" for c, s, o, v in batch
            )
            self.emit(f"{self.acc} += BSB(T, ({entries}))")
        del batch[:]

    def barrier_store(self, container: str, slot: str, old: str,
                      volatile: str) -> None:
        self.batch.append((container, slot, old, volatile))

    def read_barrier(self, container: str, slot: str, volatile: str) -> None:
        self.flush_batch()  # keep jmm write/read ordering exact
        self.dynamic = True
        self.emit(f"{self.acc} += AL(T, {container}, {slot}, {volatile})")

    def set_fault(self, pc: int) -> None:
        """Mark ``pc`` as the next possible guest-fault site.

        Flushes the barrier batch (the reference has already run those
        barriers when this op raises) and, in superblock mode, the
        pending static charges *including this op's own cost* — matching
        the reference's charge-before-execute order, so ``acc``/``ic``
        are exact at the raise."""
        self.flush_batch()
        if self.mode == "super":
            self.flush_charges()
        self.raising = True
        self.emit(f"F[0] = {pc}")

    # --------------------------------------------------------- cache cells
    def field_cache(self, obj_var: str, name_expr: str) -> str:
        """Monomorphic inline cache mirroring ``_field_def``."""
        j = self.owner._cell()
        cv = self.newtmp()
        self.emit(f"{cv} = C[{j}]")
        self.emit(
            f"if {cv} is None or {cv}[0] is not {obj_var}.classdef:"
        )
        self.emit(
            f"    {cv} = ({obj_var}.classdef, "
            f"{obj_var}.classdef.field({name_expr}))"
        )
        self.emit(f"    C[{j}] = {cv}")
        return cv

    def static_cache(self, key_ref: str) -> str:
        j = self.owner._cell()
        cv = self.newtmp()
        self.emit(f"{cv} = C[{j}]")
        self.emit(f"if {cv} is None:")
        self.emit(f"    {cv} = SD(*{key_ref})")
        self.emit(f"    C[{j}] = {cv}")
        return cv

    # -------------------------------------------------------------- opcodes
    def emit_op(self, pc: int, ins) -> None:
        """Generate code for one non-branch fusable op.

        Branches (and comparisons fused into them) are control flow and
        stay with the drivers: the block compiler turns them into
        ``return`` terminators, the superblock structurizer into nested
        ``if`` statements.
        """
        op = ins.op
        owner = self.owner

        if op == bc.CONST:
            expr, val = owner._const_expr(ins.a)
            self.push(_Sym(expr, (), val))
        elif op == bc.LOAD:
            self.push(_Sym(f"locals_[{ins.a}]", (ins.a,)))
        elif op == bc.STORE:
            fused = bool(self.sym)
            v = self.pop()
            self.spill(ins.a)
            self.emit(f"locals_[{ins.a}] = {v.expr}")
            if fused:
                owner._bump("alu+store")
        elif op == bc.IINC:
            self.spill(ins.a)
            self.emit(f"locals_[{ins.a}] += {ins.b}")
        elif op == bc.DUP:
            if self.sym:
                top = self.sym[-1]
                self.push(_Sym(top.expr, top.deps, top.val))
            else:
                t = self.newtmp()
                self.emit(f"{t} = stack[-1]")
                self.push(_Sym(t))
        elif op == bc.POP:
            if self.sym:
                self.sym.pop()
            else:
                self.emit("del stack[-1]")
        elif op == bc.SWAP:
            a = self.pop()
            b_ = self.pop()
            self.push(a)
            self.push(b_)
        elif op == bc.NOP:
            pass
        elif op in _BIN_EXPR:
            b_ = self.pop()
            a = self.pop()
            self.push_tmp(f"({a.expr}) {_BIN_EXPR[op]} ({b_.expr})")
        elif op == bc.NEG:
            v = self.pop()
            self.push_tmp(f"-({v.expr})")
        elif op == bc.NOT:
            v = self.pop()
            self.push_tmp(f"0 if ({v.expr}) else 1")
        elif op in _CMP_EXPR or op == bc.EQ or op == bc.NE:
            b_ = self.pop()
            a = self.pop()
            if op in _CMP_EXPR:
                cond = f"({a.expr}) {_CMP_EXPR[op]} ({b_.expr})"
                negated = False
            else:
                cond = f"GEQ({a.expr}, {b_.expr})"
                negated = op == bc.NE
            if negated:
                self.push_tmp(f"0 if {cond} else 1")
            else:
                self.push_tmp(f"1 if {cond} else 0")
        elif op == bc.DIV or op == bc.MOD:
            b_ = self.pop()
            a = self.pop()
            helper = "MOD" if op == bc.MOD else "DIV"
            if (b_.val is not _NOVAL and isinstance(b_.val, int)
                    and b_.val != 0):
                suffix = "P" if b_.val > 0 else "C"
                self.push_tmp(f"{helper}{suffix}({a.expr}, {b_.expr})")
                owner._bump("const+mod" if op == bc.MOD else "const+div")
            else:
                self.set_fault(pc)
                self.push_tmp(f"{helper}V({a.expr}, {b_.expr})")
        elif op == bc.TID:
            self.push(_Sym("T.tid"))

        # ---------------------------------------------------- heap ops
        elif op == bc.GETFIELD:
            o = self.pop()
            self.set_fault(pc)
            to = self.newtmp()
            self.emit(f"{to} = RR({o.expr}, 'object')")
            name_expr, _ = self.owner._const_expr(ins.a)
            cv = self.field_cache(to, name_expr)
            self.push_tmp(f"{to}.get({name_expr})")
            if owner.read_barriers:
                self.read_barrier(to, name_expr, f"{cv}[1].volatile")
        elif op == bc.PUTFIELD:
            v = self.pop()
            o = self.pop()
            self.set_fault(pc)
            to = self.newtmp()
            self.emit(f"{to} = RR({o.expr}, 'object')")
            name_expr, _ = self.owner._const_expr(ins.a)
            cv = self.field_cache(to, name_expr)
            if ins.barrier:
                told = self.newtmp()
                self.emit(f"{told} = {to}.put({name_expr}, {v.expr})")
                self.barrier_store(to, name_expr, told,
                                   f"{cv}[1].volatile")
            else:
                self.emit(f"{to}.put({name_expr}, {v.expr})")
        elif op == bc.ALOAD:
            idx = self.pop()
            arr = self.pop()
            self.set_fault(pc)
            ta = self.newtmp()
            self.emit(f"{ta} = RR({arr.expr}, 'array')")
            if owner.read_barriers:
                # the index expression is evaluated twice (get + AL);
                # pin it so both reads agree even for locals_ exprs
                ti = self.newtmp()
                self.emit(f"{ti} = {idx.expr}")
                self.push_tmp(f"{ta}.get({ti})")
                self.read_barrier(ta, ti, "False")
            else:
                self.push_tmp(f"{ta}.get({idx.expr})")
        elif op == bc.ASTORE:
            v = self.pop()
            idx = self.pop()
            arr = self.pop()
            self.set_fault(pc)
            ta = self.newtmp()
            self.emit(f"{ta} = RR({arr.expr}, 'array')")
            if ins.barrier:
                ti = self.newtmp()
                self.emit(f"{ti} = {idx.expr}")
                told = self.newtmp()
                self.emit(f"{told} = {ta}.put({ti}, {v.expr})")
                self.barrier_store(ta, ti, told, "False")
            else:
                self.emit(f"{ta}.put({idx.expr}, {v.expr})")
        elif op == bc.GETSTATIC:
            key_ref = owner._kref(ins.a)
            cv = self.static_cache(key_ref)
            self.push_tmp(f"GS({key_ref})")
            if owner.read_barriers:
                self.read_barrier(key_ref, f"{key_ref}[1]",
                                  f"{cv}.volatile")
        elif op == bc.PUTSTATIC:
            v = self.pop()
            key_ref = owner._kref(ins.a)
            cv = self.static_cache(key_ref)
            if ins.barrier:
                told = self.newtmp()
                self.emit(f"{told} = PS({key_ref}, {v.expr})")
                self.barrier_store(key_ref, f"{key_ref}[1]", told,
                                   f"{cv}.volatile")
            else:
                self.emit(f"PS({key_ref}, {v.expr})")
        elif op == bc.ARRAYLEN:
            arr = self.pop()
            self.set_fault(pc)
            ta = self.newtmp()
            self.emit(f"{ta} = RR({arr.expr}, 'array')")
            self.push_tmp(f"len({ta})")
        elif op == bc.NEW:
            j = owner._cell()
            cv = self.newtmp()
            name_expr, _ = owner._const_expr(ins.a)
            self.emit(f"{cv} = C[{j}]")
            self.emit(f"if {cv} is None:")
            self.emit(f"    {cv} = CDEF({name_expr})")
            self.emit(f"    C[{j}] = {cv}")
            self.push_tmp(f"ALLOC({cv})")
        elif op == bc.NEWARRAY:
            length = self.pop()
            self.set_fault(pc)
            fill_expr, _ = owner._const_expr(ins.a)
            self.push_tmp(f"NEWA({length.expr}, {fill_expr})")
        elif op == bc.CLASSREF:
            j = owner._cell()
            cv = self.newtmp()
            name_expr, _ = owner._const_expr(ins.a)
            self.emit(f"{cv} = C[{j}]")
            self.emit(f"if {cv} is None:")
            self.emit(f"    {cv} = CLSO({name_expr})")
            self.emit(f"    C[{j}] = {cv}")
            self.push(_Sym(cv))
        else:  # pragma: no cover - drivers filter non-fusable ops
            raise AssertionError(f"non-fusable op {op} in run")


# -------------------------------------------------------------- compiler
class _Predecoder:
    """Compiles one method's fusable runs into block closures and its
    eligible loops into superblocks, in one module-level compile."""

    def __init__(self, vm, method: MethodDef):
        self.vm = vm
        self.method = method
        self.read_barriers = vm.options.modified
        # trace_memory needs per-access events; the option normally forces
        # the reference interpreter, but stay safe if reached regardless.
        self.fuse_heap = not (vm.options.trace and vm.options.trace_memory)
        self.consts: list[Any] = []   # K: shared constant pool
        self.cells: list[Any] = []    # C: per-site inline-cache cells
        self.stats: dict[str, int] = {}
        heap = vm.heap
        support = vm.support

        def _newarray(length, fill):
            if not isinstance(length, int) or length < 0:
                raise GuestRuntimeError(
                    f"negative array size {length}",
                    guest_class="NegativeArraySizeException",
                )
            return heap.allocate_array(length, fill)

        self.ns = {
            "__builtins__": {},
            "len": len,
            "K": self.consts,
            "C": self.cells,
            "RR": require_ref,
            "GEQ": Interpreter._guest_eq,
            "MODV": _mod_values,
            "DIVV": _div_values,
            "MODC": _mod_const,
            "DIVC": _div_const,
            "MODP": _mod_pos_const,
            "DIVP": _div_pos_const,
            "GS": heap.get_static,
            "PS": heap.put_static,
            "SD": heap.static_def,
            "ALLOC": heap.allocate,
            "NEWA": _newarray,
            "CLSO": heap.class_object,
            "CDEF": vm.classdef,
            "AL": support.after_load,
            "BS": support.before_store,
            "BSB": support.before_store_batch,
            "CLK": vm.clock,
            "SERR": StarvationError,
            "GRE": GuestRuntimeError,
        }

    def build(self) -> DecodedMethod:
        from repro.vm.tracecomp import compile_superblocks

        method = self.method
        n = len(method.code)
        blocks: list[Optional[BasicBlock]] = [None] * n
        leaders = find_leaders(method)
        for start, end in find_runs(method, leaders, self.fuse_heap):
            blocks[start] = self._compile(start, end)
        superblocks: list = [None] * n
        for sb in compile_superblocks(self):
            superblocks[sb.anchor] = sb
        # Method-level translation: every block and superblock compiles in
        # one module-sized pass, so the whole method's generated code
        # shares one constant pool + cache-cell array and is dropped as
        # one unit by MethodDef.invalidate_decoded.
        sources = [b.source for b in blocks if b is not None]
        sources.extend(s.source for s in superblocks if s is not None)
        if sources:
            module = "\n".join(sources)
            filename = f"<decoded {method.qualified_name()}>"
            exec(compile(module, filename, "exec"), self.ns)
            for b in blocks:
                if b is not None:
                    b.fn = self.ns.pop(f"_b{b.start}")
            for s in superblocks:
                if s is not None:
                    s.fn = self.ns.pop(f"_s{s.anchor}")
        return DecodedMethod(method, blocks, self.stats, superblocks)

    # ---------------------------------------------------------- plumbing
    def _kref(self, value: Any) -> str:
        self.consts.append(value)
        return f"K[{len(self.consts) - 1}]"

    def _cell(self) -> int:
        self.cells.append(None)
        return len(self.cells) - 1

    def _const_expr(self, value: Any):
        """A literal expression when safely round-trippable, else K[i]."""
        if value is None:
            return "None", value
        if type(value) is bool or type(value) is int:
            return repr(value), value
        if type(value) is str and len(value) < 200:
            return repr(value), value
        return self._kref(value), value

    def _bump(self, pattern: str) -> None:
        self.stats[pattern] = self.stats.get(pattern, 0) + 1

    # ------------------------------------------------------------- codegen
    def _compile(self, start: int, end: int) -> BasicBlock:
        code = self.method.code
        em = _Emitter(self, "block")

        exit_pc: Optional[str] = None  # set when a branch terminator returns
        pc = start
        while pc < end:
            ins = code[pc]
            op = ins.op

            if op in _CMP_EXPR or op == bc.EQ or op == bc.NE:
                nxt = code[pc + 1] if pc + 1 < end else None
                if nxt is not None and nxt.op in (bc.IF, bc.IFNOT):
                    # cmp+branch superinstruction: one conditional return,
                    # no 0/1 materialisation.  The branch is the block
                    # terminator by construction.
                    b_ = em.pop()
                    a = em.pop()
                    if op in _CMP_EXPR:
                        cond = f"({a.expr}) {_CMP_EXPR[op]} ({b_.expr})"
                        negated = False
                    else:
                        cond = f"GEQ({a.expr}, {b_.expr})"
                        negated = op == bc.NE
                    taken, fall = nxt.a, pc + 2
                    if negated:
                        cond = f"not {cond}"
                    em.flush_batch()
                    em.flush_stack()
                    if nxt.op == bc.IF:
                        em.emit(f"return {taken} if {cond} else {fall}")
                    else:
                        em.emit(f"return {fall} if {cond} else {taken}")
                    self._bump("cmp+branch")
                    exit_pc = "fused"
                    pc += 2
                    break
                em.emit_op(pc, ins)
            elif op == bc.GOTO:
                em.flush_batch()
                em.flush_stack()
                em.emit(f"return {ins.a}")
                exit_pc = "fused"
                pc += 1
                break
            elif op == bc.IF or op == bc.IFNOT:
                v = em.pop()
                em.flush_batch()
                em.flush_stack()
                taken, fall = ins.a, pc + 1
                if op == bc.IF:
                    em.emit(f"return {taken} if {v.expr} else {fall}")
                else:
                    em.emit(f"return {fall} if {v.expr} else {taken}")
                exit_pc = "fused"
                pc += 1
                break
            else:
                em.emit_op(pc, ins)
            pc += 1

        if exit_pc is None:
            em.flush_batch()
            em.flush_stack()
            em.emit(f"return {end}")
        run = code[start:end]
        return self._finish(start, end, run, em)

    def _finish(self, start: int, end: int, run, em: _Emitter) -> BasicBlock:
        lines = em.lines
        if em.dynamic:
            lines.insert(0, "    A[0] = 0")
        name = f"_b{start}"
        body = "\n".join(lines)
        source = f"def {name}(stack, locals_, F, A, T):\n{body}\n"

        cost = sum(ins.cost for ins in run)
        count = len(run)
        # suffix arrays for mid-block fault repair: entry k holds the
        # cost/count of the instructions strictly after relative index k.
        suffix_cost = []
        suffix_count = []
        tail_cost = 0
        tail_count = 0
        for ins in reversed(run):
            suffix_cost.append(tail_cost)
            suffix_count.append(tail_count)
            tail_cost += ins.cost
            tail_count += 1
        suffix_cost.reverse()
        suffix_count.reverse()
        return BasicBlock(
            start, end, cost, count, None, em.dynamic, em.raising,
            tuple(suffix_cost), tuple(suffix_count), source,
        )


def render_decoded(dm: DecodedMethod) -> str:
    """Human-readable dump of a predecoded method (Inspector/debugging)."""
    out = [
        f"{dm.method.qualified_name()}: {len(dm.block_list)} blocks, "
        f"{dm.fused_instructions}/{len(dm.method.code)} instructions fused, "
        f"superinstructions={dm.superinstructions or {}}"
    ]
    for b in dm.block_list:
        out.append(
            f"-- block [{b.start},{b.end}) cost={b.cost} count={b.count}"
            f"{' dynamic' if b.dynamic else ''}"
            f"{' raising' if b.raising else ''}"
        )
        out.append(b.source.rstrip())
    for s in dm.superblock_list:
        out.append(
            f"-- superblock @{s.anchor} loop [{s.head},{s.anchor}]"
        )
        out.append(s.source.rstrip())
    return "\n".join(out)
