"""The class model: fields, methods, exception tables.

This is the unit the transformer (:mod:`repro.core.transform`) consumes and
produces, mirroring how the paper rewrites Java class files with BCEL.  A
:class:`ClassDef` is *loaded* into a :class:`repro.vm.vmcore.JVM`, which
resolves symbolic references, runs the transformer when the VM is in
"modified" mode, assigns instruction costs and marks yield points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import VerifyError
from repro.vm import bytecode as bc
from repro.vm.bytecode import Instruction
from repro.vm.values import default_value

#: Guest exception class name that catches everything (like java.lang.Throwable).
THROWABLE = "Throwable"

#: Sentinel exception-table type for the transformer-injected rollback scopes.
#: Deliberately unnameable from guest code (illegal class name).
ROLLBACK_TYPE = "<rollback>"

#: Exception-table type None means a catch-all *finally* style handler.


@dataclass(frozen=True)
class FieldDef:
    """An instance or static field.

    ``kind`` is one of ``int``/``float``/``ref``/``str``; ``volatile``
    fields follow the JLS visibility rule the paper discusses in §2.1
    (Figure 3): a volatile write happens-before every subsequent volatile
    read of the same variable, so revoking a section containing an observed
    volatile write is forbidden.
    """

    name: str
    kind: str = "int"
    volatile: bool = False
    is_static: bool = False

    def default(self):
        return default_value(self.kind)


@dataclass(frozen=True)
class ExceptionTableEntry:
    """One row of a method's exception table.

    Covers pcs in ``[start, end)``.  ``type`` is a guest class name,
    :data:`THROWABLE` (catches any guest exception), ``None`` (catch-all,
    used for finally blocks and for javac-style monitor-release handlers),
    or :data:`ROLLBACK_TYPE` (injected; only ever matched by the augmented
    dispatch during a revocation, and skipped by normal dispatch).
    """

    start: int
    end: int
    handler: int
    type: Optional[str] = THROWABLE

    def covers(self, pc: int) -> bool:
        return self.start <= pc < self.end

    def shifted(self, at: int, by: int) -> "ExceptionTableEntry":
        """Relocate after ``by`` instructions were inserted at pc ``at``.

        A pc *equal to* ``at`` stays put, so code inserted exactly at a
        range boundary extends the range (transformer semantics: a jump to
        a ``monitorenter`` must land on the injected ``SAVESTATE``).
        """

        def fix(pc: int) -> int:
            return pc + by if pc > at else pc

        return ExceptionTableEntry(
            fix(self.start), fix(self.end), fix(self.handler), self.type
        )


@dataclass
class MethodDef:
    """A method body.

    ``argc`` counts *all* incoming arguments including the receiver for
    instance methods (locals ``0 .. argc-1`` are populated from the operand
    stack of the caller).  ``synchronized`` methods are rewritten by the
    transformer into a wrapper acquiring the receiver's monitor (the class
    object for static methods) around a renamed ``$impl`` method, exactly as
    the paper does (§3.1.1); ``force_inline`` marks the renamed method so
    the cost model charges no invoke overhead for it, modelling the paper's
    inlining directive.
    """

    name: str
    argc: int = 0
    max_locals: int = 0
    code: list[Instruction] = field(default_factory=list)
    exc_table: list[ExceptionTableEntry] = field(default_factory=list)
    synchronized: bool = False
    is_static: bool = False
    force_inline: bool = False
    returns_value: bool = False
    #: number of SAVESTATE slots used (set by the transformer)
    state_slots: int = 0
    #: sync_id -> ScopeInfo for transformer-injected rollback scopes
    rollback_scopes: dict = field(default_factory=dict)
    #: class this method belongs to (set when added to a ClassDef)
    class_name: str = ""

    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.name}"

    def invalidate_decoded(self) -> None:
        """Drop the cached predecode result.

        The fast interpreter (:mod:`repro.vm.predecode`) caches its
        compiled basic blocks on the MethodDef at first execution; call
        this after any in-place mutation of ``code`` so stale blocks can
        never execute.  ``copy()`` never carries the cache.
        """
        self.__dict__.pop("_decoded", None)

    def copy(self) -> "MethodDef":
        """Independent copy (instructions included) for load-time rewriting.

        A ClassDef may be loaded into several VMs (e.g. the modified and
        unmodified VM of one benchmark comparison); loading always copies so
        link-time mutation (costs, yield points, barrier flags) of one VM
        never leaks into another.  Predecode state (``_decoded``) is
        deliberately not copied: it binds one VM's heap and runtime
        support, and the new copy is re-linked (and re-predecoded) by
        whichever VM loads it.
        """
        m = MethodDef(
            name=self.name,
            argc=self.argc,
            max_locals=self.max_locals,
            code=[ins.copy() for ins in self.code],
            exc_table=list(self.exc_table),
            synchronized=self.synchronized,
            is_static=self.is_static,
            force_inline=self.force_inline,
            returns_value=self.returns_value,
            state_slots=self.state_slots,
            rollback_scopes=dict(self.rollback_scopes),
        )
        m.class_name = self.class_name
        return m

    def verify(self) -> None:
        """Structural checks mirroring JVM bytecode verification.

        Raises :class:`VerifyError` on: empty body, fall-off-the-end,
        branch/handler targets outside the body, inverted exception ranges,
        bad local indices, or unmatched monitorenter/monitorexit sync ids.
        """
        code = self.code
        n = len(code)
        if n == 0:
            raise VerifyError(f"{self.qualified_name()}: empty body")
        last = code[-1]
        if last.op not in (bc.RETURN, bc.GOTO, bc.ATHROW, bc.ROLLBACK_HANDLER):
            raise VerifyError(
                f"{self.qualified_name()}: control may fall off the end "
                f"(last instruction {last!r})"
            )
        if self.max_locals < self.argc:
            raise VerifyError(
                f"{self.qualified_name()}: max_locals {self.max_locals} "
                f"< argc {self.argc}"
            )
        enters: dict[object, int] = {}
        exits: dict[object, int] = {}
        for pc, ins in enumerate(code):
            op = ins.op
            if bc.is_branch(op):
                if not isinstance(ins.a, int) or not (0 <= ins.a < n):
                    raise VerifyError(
                        f"{self.qualified_name()}@{pc}: branch target "
                        f"{ins.a!r} outside [0, {n})"
                    )
            elif op in (bc.LOAD, bc.STORE, bc.IINC):
                if not isinstance(ins.a, int) or not (
                    0 <= ins.a < self.max_locals
                ):
                    raise VerifyError(
                        f"{self.qualified_name()}@{pc}: local index "
                        f"{ins.a!r} outside [0, {self.max_locals})"
                    )
            elif op == bc.MONITORENTER:
                enters[ins.a] = enters.get(ins.a, 0) + 1
            elif op == bc.MONITOREXIT:
                exits[ins.a] = exits.get(ins.a, 0) + 1
            elif op == bc.ROLLBACK_HANDLER:
                if not isinstance(ins.b, int) or not (0 <= ins.b < n):
                    raise VerifyError(
                        f"{self.qualified_name()}@{pc}: rollback resume pc "
                        f"{ins.b!r} outside [0, {n})"
                    )
        for sync_id, count in enters.items():
            if sync_id is None:
                raise VerifyError(
                    f"{self.qualified_name()}: monitorenter without sync id"
                )
            if exits.get(sync_id, 0) < 1:
                raise VerifyError(
                    f"{self.qualified_name()}: sync id {sync_id!r} has "
                    f"{count} enter(s) but no exit"
                )
        for entry in self.exc_table:
            if not (0 <= entry.start < entry.end <= n):
                raise VerifyError(
                    f"{self.qualified_name()}: exception range "
                    f"[{entry.start}, {entry.end}) invalid for body of {n}"
                )
            if not (0 <= entry.handler < n):
                raise VerifyError(
                    f"{self.qualified_name()}: handler pc {entry.handler} "
                    f"outside [0, {n})"
                )


class ClassDef:
    """A loadable guest class: named fields and methods.

    There is no inheritance in the guest language (the paper's mechanism is
    orthogonal to it); exception "subtyping" is modelled by the
    :data:`THROWABLE` catch-all type.
    """

    def __init__(
        self,
        name: str,
        fields: list[FieldDef] | None = None,
        methods: list[MethodDef] | None = None,
    ):
        if not name or name.startswith("<"):
            raise VerifyError(f"illegal class name {name!r}")
        self.name = name
        self.fields: dict[str, FieldDef] = {}
        self.methods: dict[str, MethodDef] = {}
        for f in fields or []:
            self.add_field(f)
        for m in methods or []:
            self.add_method(m)

    def add_field(self, f: FieldDef) -> FieldDef:
        if f.name in self.fields:
            raise VerifyError(f"{self.name}: duplicate field {f.name!r}")
        self.fields[f.name] = f
        return f

    def add_method(self, m: MethodDef) -> MethodDef:
        if m.name in self.methods:
            raise VerifyError(f"{self.name}: duplicate method {m.name!r}")
        m.class_name = self.name
        self.methods[m.name] = m
        return m

    def field(self, name: str) -> FieldDef:
        try:
            return self.fields[name]
        except KeyError:
            raise VerifyError(f"{self.name}: no field {name!r}") from None

    def method(self, name: str) -> MethodDef:
        try:
            return self.methods[name]
        except KeyError:
            raise VerifyError(f"{self.name}: no method {name!r}") from None

    def instance_fields(self) -> list[FieldDef]:
        return [f for f in self.fields.values() if not f.is_static]

    def static_fields(self) -> list[FieldDef]:
        return [f for f in self.fields.values() if f.is_static]

    def verify(self) -> None:
        for m in self.methods.values():
            m.verify()

    def copy(self) -> "ClassDef":
        """Independent deep-enough copy (see :meth:`MethodDef.copy`)."""
        c = ClassDef(self.name)
        for f in self.fields.values():
            c.add_field(f)  # FieldDefs are frozen; safe to share
        for m in self.methods.values():
            c.add_method(m.copy())
        return c

    def __repr__(self) -> str:
        return (
            f"ClassDef({self.name!r}, fields={list(self.fields)}, "
            f"methods={list(self.methods)})"
        )
