"""Native method registry.

Native methods are host Python callables ``fn(vm, thread, args) -> value``
invoked by the ``NATIVE`` bytecode.  Their effects happen outside the guest
heap, so they can never be revoked: the runtime support marks every
enclosing synchronized section non-revocable before the call (paper §2.2 —
"calling a native method within a monitor also forces non-revocability of
the monitor (and all of its enclosing monitors if it is nested)").

A small standard library is pre-registered on every VM: console output
(captured, not printed, so benchmarks stay quiet and tests can assert on
it), string building, and an abort primitive.
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

from repro.errors import GuestRuntimeError, LinkError

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.threads import VMThread
    from repro.vm.vmcore import JVM

NativeFn = Callable[["JVM", "VMThread", list], Any]


class NativeRegistry:
    """Name -> callable mapping with a captured console."""

    def __init__(self) -> None:
        self._natives: dict[str, NativeFn] = {}
        self.console: list[str] = []
        self._register_stdlib()

    def register(self, name: str, fn: NativeFn) -> None:
        if name in self._natives:
            raise LinkError(f"native {name!r} already registered")
        self._natives[name] = fn

    def resolve(self, name: str) -> NativeFn:
        try:
            return self._natives[name]
        except KeyError:
            raise LinkError(f"no native method {name!r}") from None

    # ------------------------------------------------------------- stdlib
    def _register_stdlib(self) -> None:
        # Module-level functions, not closures: native tables travel
        # inside VM snapshots, which must stay picklable.
        self._natives["println"] = _native_println
        self._natives["printTime"] = _native_print_time
        self._natives["abort"] = _native_abort
        self._natives["identityHashCode"] = _native_identity_hash


def _native_println(vm: "JVM", thread: "VMThread", args: list) -> None:
    vm.natives.console.append(" ".join(_to_text(a) for a in args))
    return None


def _native_print_time(vm: "JVM", thread: "VMThread", args: list) -> None:
    vm.natives.console.append(
        f"[{vm.clock.now}] " + " ".join(_to_text(a) for a in args)
    )
    return None


def _native_abort(vm: "JVM", thread: "VMThread", args: list) -> None:
    message = " ".join(_to_text(a) for a in args) or "abort()"
    raise GuestRuntimeError(message, guest_class="Error")


def _native_identity_hash(vm: "JVM", thread: "VMThread", args: list) -> int:
    (ref,) = args
    return getattr(ref, "oid", 0)


def _to_text(value: Any) -> str:
    from repro.vm.values import NULL

    if value is NULL:
        return "null"
    return str(value)
