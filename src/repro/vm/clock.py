"""Virtual time and the cycle cost model.

The paper measures wall-clock elapsed time on an 800 MHz Pentium III; we
measure *virtual cycles* on a deterministic clock.  Every bytecode carries a
cost assigned at link time from a :class:`CostModel`; the running thread's
costs accumulate into the global :class:`VirtualClock`.  Because the
evaluation reports *normalized* elapsed times (each panel normalized to the
unmodified VM at 100% reads), only cost *ratios* matter for reproducing the
figures' shape — the model makes those ratios explicit and tunable
(benchmarks sweep them in the ablation suite).

Cost intuition (a ~1 GHz in-order machine running compiled Java):

* simple stack ops / arithmetic: ~1 cycle
* heap accesses: a few cycles (cache hit)
* monitor enter/exit: tens of cycles (CAS + queue bookkeeping)
* method invoke: call/prologue overhead
* write barrier: fast path = in-sync check (paper §1); slow path = log
  append of (ref, offset, old value) (paper §3.1.2)
* rollback: fixed dispatch cost + per-log-entry restore cost
* context switch: scheduler + register save/restore
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.vm import bytecode as bc


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged by the interpreter and runtime."""

    simple: int = 1          # stack/arith/branch/local ops
    heap_access: int = 4     # field/array/static read or write
    allocation: int = 20     # NEW / NEWARRAY
    monitor_fast: int = 15   # uncontended monitorenter/monitorexit
    monitor_slow: int = 60   # enqueue/dequeue on contention
    invoke: int = 10         # call + frame setup (0 for force_inline)
    native: int = 30         # native trampoline
    thread_op: int = 30      # wait/notify/sleep bookkeeping
    barrier_fast: int = 1    # "am I inside a synchronized section?" test
    barrier_slow: int = 3    # undo-log append
    read_barrier: int = 1    # JMM dependency-map lookup (modified VM only)
    savestate_base: int = 4  # SAVESTATE fixed cost
    savestate_word: int = 1  # per saved stack/local word
    rollback_base: int = 80  # revocation dispatch + handler transfer
    rollback_entry: int = 3  # per undo-log entry restored
    context_switch: int = 120
    #: Calibrated so a 500K-scale benchmark section spans ~2 quanta, the
    #: geometry of the paper's platform (Jikes' ~10-20ms time slice vs
    #: ~6-12ms sections); larger quanta make sections effectively atomic
    #: on the uniprocessor and contention vanishes.
    quantum: int = 8_000

    def __post_init__(self) -> None:
        # Linking and predecoding look costs up per opcode; membership
        # chains per call showed up in profiles, so the table is derived
        # once here.  The dataclass is frozen, hence object.__setattr__;
        # replace()/scaled() re-run this, and the table is not a field so
        # equality/hashing/cache keys still see only the named costs.
        table = tuple(self._static_cost(op) for op in range(bc._MAX_OP))
        object.__setattr__(self, "_cost_table", table)

    def _static_cost(self, op: int) -> int:
        """Cost-class rules (evaluated once per opcode at table build)."""
        if op in (bc.GETFIELD, bc.PUTFIELD, bc.GETSTATIC, bc.PUTSTATIC,
                  bc.ALOAD, bc.ASTORE, bc.ARRAYLEN):
            return self.heap_access
        if op in (bc.NEW, bc.NEWARRAY):
            return self.allocation
        if op in (bc.MONITORENTER, bc.MONITOREXIT):
            return self.monitor_fast
        if op == bc.INVOKE:
            return self.invoke
        if op == bc.NATIVE:
            return self.native
        if op in (bc.WAIT, bc.TIMED_WAIT, bc.NOTIFY, bc.NOTIFYALL, bc.SLEEP):
            return self.thread_op
        if op == bc.SAVESTATE:
            return self.savestate_base
        if op in (bc.DEBUG, bc.NOP, bc.ROLLBACK_HANDLER, bc.RESTORESTATE):
            return 0
        return self.simple

    def instruction_cost(self, op: int) -> int:
        """Static per-opcode cost (barrier/rollback costs are dynamic)."""
        table = self._cost_table
        return table[op] if 0 <= op < len(table) else self.simple

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly scale all costs except the quantum (ablation helper)."""
        fields = {
            name: max(0, round(getattr(self, name) * factor))
            for name in (
                "simple", "heap_access", "allocation", "monitor_fast",
                "monitor_slow", "invoke", "native", "thread_op",
                "barrier_fast", "barrier_slow", "read_barrier",
                "savestate_base", "savestate_word", "rollback_base",
                "rollback_entry", "context_switch",
            )
        }
        return replace(self, **fields)


@dataclass
class VirtualClock:
    """Monotonic virtual cycle counter."""

    now: int = 0
    _events: int = field(default=0, repr=False)
    #: optional observer called with every advance delta (the virtual-cycle
    #: profiler).  Because *every* cycle passes through here, an attached
    #: listener's per-track attribution sums to ``now`` exactly, by
    #: construction.  Excluded from equality/repr: it is instrumentation,
    #: not clock state.
    listener: object = field(default=None, repr=False, compare=False)

    def advance(self, cycles: int) -> int:
        if cycles < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now += cycles
        self._events += 1
        if self.listener is not None:
            self.listener(cycles)
        return self.now

    def commit_batch(self, cycles: int, events: int) -> int:
        """Fold a superblock's accumulated flushes into the clock at once.

        Equivalent to the ``events`` separate :meth:`advance` calls a
        block-at-a-time execution would have made summing to ``cycles``
        (the trace compiler tracks both exactly).  Callers must ensure no
        ``listener`` is attached — the superblock dispatch guard refuses
        to enter fused code when one is installed, because a listener
        needs the individual per-flush deltas.
        """
        if cycles < 0 or events < 0:
            raise ValueError("cannot commit a negative batch")
        self.now += cycles
        self._events += events
        return self.now

    def advance_to(self, time: int) -> int:
        """Jump forward to ``time`` (used when all threads are asleep)."""
        if time > self.now:
            delta = time - self.now
            self.now = time
            self._events += 1
            if self.listener is not None:
                self.listener(delta)
        return self.now

    @property
    def events(self) -> int:
        """Number of advance operations (a determinism fingerprint)."""
        return self._events
