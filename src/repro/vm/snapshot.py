"""Deep deterministic VM checkpoints (snapshot / restore).

A snapshot captures *everything the guest can observe*: heap objects,
arrays and statics, thread stacks (frames, operand stacks, saved-state
slots), monitors (owners, entry queues, wait sets), scheduler queues and
sleepers, the virtual clock, per-thread and global RNG state, the runtime
support layer (undo logs, section records, JMM dependency map, site
degradation ladders), the fault plane, and the stored trace.  Restoring a
snapshot yields an *independent* VM positioned at exactly the captured
point: driving it forward produces byte-identical clocks, traces, metrics
and final-state fingerprints to a from-zero replay of the same schedule
(pinned by ``tests/test_vm_snapshot.py`` under both interpreters).

The schedule checker's DPOR engine (:mod:`repro.check.dpor`) checkpoints
at scheduler decision points so explored prefixes resume from snapshots
instead of replaying from cycle zero; the same machinery is the seed of a
time-travel debugger over the observability plane's spans.

What a snapshot deliberately does **not** capture:

* **External observers** — the scheduler decision hook, tracer sinks,
  post-slice hooks, and any non-profiler clock listener.  They reference
  host-side analyses whose state is not part of the VM; callers reinstall
  what they need on the restored VM.  (The cycle profiler *is* VM state:
  it is carried across and re-wired as the clock listener on restore.)
* **Predecode caches** — the fast interpreter's compiled basic blocks
  are host-side closures bound to one VM's runtime; they are dropped on
  both sides and rebuilt deterministically on next execution, which is
  observably free (virtual costs were assigned at link time).

Snapshots are copy-on-capture: the master copy inside a
:class:`VMSnapshot` is never executed, and every :func:`restore_vm` call
produces a fresh independent VM, so one checkpoint can seed any number of
divergent continuations.  Stored trace events are immutable and shared
structurally between the original VM, the snapshot, and every restore —
checkpointing stays O(live state), not O(execution history).
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vmcore import JVM


class VMSnapshot:
    """One frozen checkpoint of a :class:`~repro.vm.vmcore.JVM`.

    Treat instances as opaque: the master copy inside is quiescent and
    must only ever be cloned by :func:`restore_vm`, never run.
    """

    __slots__ = ("_master", "_events", "clock_now", "clock_events",
                 "slices", "decisions")

    def __init__(self, master: "JVM", events: tuple) -> None:
        self._master = master
        self._events = events
        #: capture-time identity, handy for assertions and debug output
        self.clock_now = master.clock.now
        self.clock_events = master.clock.events
        self.slices = master.scheduler.slices
        self.decisions = master.scheduler.decisions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VMSnapshot(clock={self.clock_now}, slices={self.slices}, "
            f"decisions={self.decisions}, events={len(self._events)})"
        )


def _drop_decoded(vm: "JVM") -> None:
    """Invalidate every method's predecode cache (host-side closures)."""
    for classdef in vm.classes.values():
        for method in classdef.methods.values():
            method.invalidate_decoded()


def snapshot_vm(vm: "JVM") -> VMSnapshot:
    """Capture a deep deterministic checkpoint of ``vm``.

    The VM must be at a quiescent point between scheduler steps (no slice
    in flight): ``vm.current_thread`` is None there and every mutation is
    parked in heap/thread/scheduler state.  The original VM is returned to
    service untouched (observers reattached, trace log back in place).
    """
    if vm.current_thread is not None:
        raise ValueError(
            "snapshot_vm requires a quiescent VM (between scheduler "
            "steps); a slice is currently executing"
        )
    scheduler = vm.scheduler
    tracer = vm.tracer
    # Detach everything a snapshot must not capture. Trace events are
    # swapped out and shared structurally (TraceEvent is frozen).
    hook, scheduler.decision_hook = scheduler.decision_hook, None
    sinks, tracer._sinks = tracer._sinks, []
    slice_hooks, vm.slice_hooks = vm.slice_hooks, []
    listener, vm.clock.listener = vm.clock.listener, None
    events, tracer.events = tracer.events, []
    _drop_decoded(vm)
    try:
        master = copy.deepcopy(vm)
    finally:
        scheduler.decision_hook = hook
        tracer._sinks = sinks
        vm.slice_hooks = slice_hooks
        vm.clock.listener = listener
        tracer.events = events
    return VMSnapshot(master, tuple(events))


def restore_vm(snapshot: VMSnapshot) -> "JVM":
    """Materialize an independent runnable VM from ``snapshot``.

    Each call clones the frozen master, so restoring the same checkpoint
    twice yields two fully isolated continuations.  External observers
    (decision hook, tracer sinks, slice hooks) come back empty; the
    profiler, when present, is re-wired as the clock listener.
    """
    vm = copy.deepcopy(snapshot._master)
    vm.tracer.events = list(snapshot._events)
    if vm.profiler is not None:
        vm.clock.listener = vm.profiler
    return vm
