"""Guest value model.

The simulated VM manipulates a small set of value kinds, mapped onto host
Python values for speed:

===========  =======================================
guest kind   host representation
===========  =======================================
``int``      :class:`int` (arbitrary precision; the cost model, not the
             bit width, models machine arithmetic)
``float``    :class:`float`
``null``     :data:`NULL` (the module-level singleton)
``ref``      :class:`repro.vm.heap.VMObject` / :class:`~repro.vm.heap.VMArray`
``str``      :class:`str` — constants only, for native I/O and exception
             messages; guest code cannot mutate strings
===========  =======================================

Guest booleans are ints (0/1) exactly as in real JVM bytecode.
"""

from __future__ import annotations

from typing import Any


class _Null:
    """The guest ``null`` reference.

    A dedicated singleton (not Python ``None``) so that accidental host
    ``None`` leaking into guest state is caught by tests instead of silently
    behaving like a guest value.
    """

    __slots__ = ()
    _instance: "_Null | None" = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "null"

    def __bool__(self) -> bool:
        return False


NULL = _Null()


def is_reference(value: Any) -> bool:
    """True for heap references and ``null`` (the JVM ``a``-kinds)."""
    # Import here to avoid a cycle: heap imports values for defaults.
    from repro.vm.heap import VMArray, VMObject

    return value is NULL or isinstance(value, (VMObject, VMArray))


def truthy(value: Any) -> bool:
    """Branch condition semantics for ``IF``: zero, ``null`` and ``0.0``
    are false; everything else is true."""
    if value is NULL:
        return False
    return bool(value)


_DEFAULTS = {
    "int": 0,
    "float": 0.0,
    "ref": NULL,
    "str": "",
}


def default_value(kind: str) -> Any:
    """JVM default initialization for a field of the given kind."""
    try:
        return _DEFAULTS[kind]
    except KeyError:
        raise ValueError(f"unknown field kind {kind!r}") from None


def kind_of(value: Any) -> str:
    """Classify a host value into its guest kind (used by the verifier)."""
    from repro.vm.heap import VMArray, VMObject

    if value is NULL or isinstance(value, (VMObject, VMArray)):
        return "ref"
    if isinstance(value, bool):
        return "int"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    raise TypeError(f"host value {value!r} is not a legal guest value")
