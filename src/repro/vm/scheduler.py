"""Thread schedulers.

:class:`RoundRobinScheduler` reproduces the paper's platform: "The Jikes RVM
does not include a priority scheduler; threads are scheduled in a
round-robin fashion" (§4).  Thread priorities still matter — through the
prioritized monitor queues and through the inversion-detection algorithm —
exactly as in the paper's evaluation.

:class:`PriorityScheduler` is a strict-priority preemptive scheduler
(highest effective priority runs; round-robin within a level), provided as
an extension so the priority-inheritance and priority-ceiling baselines can
be exercised in their natural habitat and so classic unbounded priority
inversion (the medium-thread scenario from §1) can be demonstrated.

Both schedulers share the event loop: run the chosen thread for a slice,
wake sleepers when the ready set drains, and — when *nothing* can run —
detect wait-for cycles and hand them to the runtime support for resolution
(the paper's deadlock-breaking revocation, §1).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.errors import DeadlockError, ScheduleError
from repro.vm.interpreter import PREEMPTED, YIELDED
from repro.vm.threads import ThreadState, VMThread

if TYPE_CHECKING:  # pragma: no cover
    from typing import Callable

    from repro.vm.vmcore import JVM


def find_wait_cycle(threads: list[VMThread]) -> Optional[list[VMThread]]:
    """Find one cycle in the wait-for graph (thread -> owner of the monitor
    it blocks on).  Returns the cycle's threads in wait-for order, or None.
    """
    visiting: dict[int, int] = {}  # tid -> position on current path
    for root in threads:
        if root.state is not ThreadState.BLOCKED:
            continue
        path: list[VMThread] = []
        visiting.clear()
        t: Optional[VMThread] = root
        while t is not None and t.state is ThreadState.BLOCKED:
            if t.tid in visiting:
                return path[visiting[t.tid]:]
            visiting[t.tid] = len(path)
            path.append(t)
            mon = t.blocked_on
            t = mon.owner if mon is not None else None
    return None


class BaseScheduler:
    """Shared event loop; subclasses define the ready-set policy."""

    name = "base"

    def __init__(self, vm: "JVM") -> None:
        self.vm = vm
        #: (wake_time, seq, thread) min-heap; entries may be stale
        self._sleepers: list[tuple[int, int, VMThread]] = []
        self._sleep_seq = 0
        self._last: Optional[VMThread] = None
        self.slices = 0
        self.context_switches = 0
        #: scheduling decisions taken through the decision hook
        self.decisions = 0
        #: pluggable decision hook: called with the ordered list of READY
        #: candidate threads (the order the default policy would consider
        #: them) and must return the *tid* of the thread to run next.
        #: ``None`` (the default) keeps the built-in policy.  Schedule
        #: exploration (:mod:`repro.check`) installs a controller here to
        #: enumerate interleavings; any exception the hook raises
        #: propagates out of :meth:`step`, and a tid outside the candidate
        #: set raises :class:`repro.errors.ScheduleError`.
        self.decision_hook: Optional["Callable[[list[VMThread]], int]"] = None
        #: tid -> (revocations, sections_committed) at the last watchdog scan
        self._watchdog_snap: dict[int, tuple[int, int]] = {}
        #: threads flagged by the starvation watchdog over the whole run
        self.watchdog_trips = 0

    # ------------------------------------------------------------ ready set
    def make_ready(self, thread: VMThread) -> None:
        raise NotImplementedError

    def _pick_next(self) -> Optional[VMThread]:
        raise NotImplementedError

    def has_ready(self) -> bool:
        raise NotImplementedError

    def ready_candidates(self) -> list[VMThread]:
        """READY threads in the order the default policy would pick them.

        The first element is what :meth:`_pick_next` would return.  Stale
        queue entries are skipped and duplicates collapsed; the queue
        itself is not consumed."""
        raise NotImplementedError

    def _take(self, thread: VMThread) -> None:
        """Remove ``thread`` (a current ready candidate) from the queue so
        it can be dispatched, mirroring what ``_pick_next`` does when it
        pops."""
        raise NotImplementedError

    def _pick_hooked(self) -> Optional[VMThread]:
        """Pick the next thread through :attr:`decision_hook`."""
        candidates = self.ready_candidates()
        if not candidates:
            return None
        self.decisions += 1
        chosen_tid = self.decision_hook(candidates)
        for t in candidates:
            if t.tid == chosen_tid:
                self._take(t)
                self.vm.trace(
                    "schedule_choice",
                    t,
                    decision=self.decisions,
                    candidates=tuple(c.tid for c in candidates),
                )
                return t
        raise ScheduleError(chosen_tid, [t.tid for t in candidates])

    # ------------------------------------------------------------- sleepers
    def add_sleeper(self, thread: VMThread, wake_time: int) -> None:
        thread.wakeup_time = wake_time
        self._sleep_seq += 1
        heapq.heappush(self._sleepers, (wake_time, self._sleep_seq, thread))

    def remove_sleeper(self, thread: VMThread) -> None:
        """Lazy cancellation: mark so a pending heap entry is skipped."""
        thread.wakeup_time = -1

    def _wake_due_sleepers(self) -> None:
        now = self.vm.clock.now
        while self._sleepers and self._sleepers[0][0] <= now:
            wake_time, _, thread = heapq.heappop(self._sleepers)
            if thread.wakeup_time != wake_time:
                continue  # stale (cancelled or re-armed)
            thread.wakeup_time = -1
            if thread.state is ThreadState.SLEEPING:
                self.make_ready(thread)
            elif thread.state is ThreadState.WAITING:
                self._timeout_waiter(thread)

    def _timeout_waiter(self, thread: VMThread) -> None:
        """A timed wait expired: leave the wait set and reacquire.

        The thread joins the entry queue; when the monitor is already free
        it is made runnable immediately so the WAIT instruction's retry
        path can complete (or lose a barge race and block, in no-handoff
        mode)."""
        mon = thread.waiting_on
        if mon is None:
            return
        saved = mon.remove_waiter(thread)
        if saved is None:
            return  # already notified; the notify path owns the transition
        self.vm.trace("wait_timeout", thread, mon=mon)
        mon.enqueue(thread, saved)
        thread.blocked_on = mon
        if mon.owner is None:
            self.make_ready(thread)
        else:
            thread.state = ThreadState.BLOCKED

    def pending_wake_time(self) -> int:
        """Earliest sleeper wake-up, or a sentinel far future.

        The interpreter polls this at yield points so a due wake-up
        preempts the running thread promptly (Jikes' timer tick firing at
        the next yield point), instead of waiting out the whole quantum.
        """
        t = self._next_sleeper_time()
        return t if t is not None else (1 << 62)

    def _next_sleeper_time(self) -> Optional[int]:
        while self._sleepers:
            wake_time, _, thread = self._sleepers[0]
            if thread.wakeup_time != wake_time:
                heapq.heappop(self._sleepers)
                continue
            return wake_time
        return None

    # ------------------------------------------------------------ main loop
    def run(self) -> None:
        """Drive all live threads to termination (or raise)."""
        while self.step():
            pass

    def step(self) -> Optional[tuple[VMThread, str]]:
        """One scheduling decision: run a single slice (or advance idle
        time / resolve a stall).  Returns ``(thread, reason)`` for an
        executed slice, ``(None, ...)``-style truthy placeholders are not
        used — idle/stall handling returns ``(None, "idle")`` — and None
        when every live thread has terminated.  The debugger steps the VM
        through this same entry point the run loop uses."""
        vm = self.vm
        self._wake_due_sleepers()
        if self.decision_hook is not None:
            thread = self._pick_hooked()
        else:
            thread = self._pick_next()
        if thread is None:
            if self._advance_idle():
                return (None, "idle")
            if self._resolve_stall():
                return (None, "stall-resolved")
            return None
        prof = vm.profiler
        if self._last is not None and self._last is not thread:
            if prof is not None:
                prof.set_context(thread.name, "switch")
            vm.clock.advance(vm.cost_model.context_switch)
            self.context_switches += 1
        self._last = thread
        vm.current_thread = thread
        if prof is not None:
            prof.set_context(thread.name, "guest")
        self.slices += 1
        reason = vm.interpreter.run_slice(thread)
        vm.current_thread = None
        if prof is not None:
            # "(vm)"/"vm" mirror repro.obs.profile.VM_TRACK/CAT_VM;
            # literal here so the VM layer never imports the obs layer.
            prof.set_context("(vm)", "vm")
        if reason is PREEMPTED or reason is YIELDED:
            self.make_ready(thread)
        vm.after_slice()
        interval = vm.options.watchdog_interval
        if interval and self.slices % interval == 0:
            self._watchdog_scan()
        return (thread, reason)

    def _advance_idle(self) -> bool:
        """Nothing ready: jump virtual time to the next sleeper."""
        wake = self._next_sleeper_time()
        if wake is None:
            return False
        prof = self.vm.profiler
        if prof is not None:
            prof.set_context("(vm)", "idle")
        self.vm.clock.advance_to(wake)
        if prof is not None:
            prof.set_context("(vm)", "vm")
        self._wake_due_sleepers()
        return True

    def _resolve_stall(self) -> bool:
        """No thread can run.  Either every live thread is gone (done), or
        we are deadlocked/stalled; try the support's resolution hook."""
        live = [t for t in self.vm.threads if t.is_live()]
        if not live:
            return False
        cycle = find_wait_cycle(live)
        if cycle is not None:
            self.vm.trace("deadlock", None, cycle=[t.name for t in cycle])
            if self.vm.support.resolve_deadlock(cycle):
                return True
            raise DeadlockError([t.name for t in cycle])
        blocked = [t.name for t in live if t.state is ThreadState.BLOCKED]
        waiting = [t.name for t in live if t.state is ThreadState.WAITING]
        raise DeadlockError(
            blocked + waiting,
            reason="stall: blocked threads "
            f"{blocked} / waiting threads {waiting} with no runnable "
            "notifier",
        )

    def _watchdog_scan(self) -> None:
        """Starvation/livelock watchdog (slice-count based, deterministic).

        A thread whose revocation count grew by ``watchdog_revocations`` or
        more since the previous scan, while its committed-section count
        stayed flat, is burning cycles without making forward progress —
        the revocation storm the paper's livelock discussion (§1) warns
        about.  The runtime support decides the remedy (degrading the hot
        section site); the scheduler only detects and reports.
        """
        vm = self.vm
        threshold = vm.options.watchdog_revocations
        snap = self._watchdog_snap
        for t in vm.threads:
            if not t.is_live():
                snap.pop(t.tid, None)
                continue
            prev = snap.get(t.tid)
            cur = (t.revocations, t.sections_committed)
            snap[t.tid] = cur
            if prev is None:
                continue
            if cur[1] == prev[1] and cur[0] - prev[0] >= threshold:
                self.watchdog_trips += 1
                vm.trace(
                    "starvation", t, revocations=cur[0] - prev[0]
                )
                vm.support.on_starvation(t)

    def on_priority_changed(self, thread: VMThread) -> None:
        """A thread's *effective* priority changed (inheritance donation or
        ceiling boost).  Round-robin ignores priorities; the priority
        scheduler re-keys the thread."""
        return None

    def wake_for_revocation(self, thread: VMThread) -> None:
        """Make an off-CPU thread runnable so it can process a pending
        revocation request (deadlock victims; sleepers holding monitors)."""
        if thread.state is ThreadState.BLOCKED and thread.blocked_on:
            thread.blocked_on.remove_from_queue(thread)
            thread.blocked_on = None
            # The park ends here, not at some later re-acquire: credit the
            # blocked interval so metrics (and the profiler's blocked
            # attribution) cover revocation wakes exactly like grants.
            self.vm.credit_blocked(thread)
            self.make_ready(thread)
        elif thread.state is ThreadState.SLEEPING:
            self.remove_sleeper(thread)
            self.make_ready(thread)
        # RUNNING/READY threads reach a yield point on their own; WAITING
        # threads do not hold the contested monitor (wait released it) and
        # their enclosing sections were marked non-revocable at wait().


class RoundRobinScheduler(BaseScheduler):
    """Quantum-based round robin over all ready threads (the Jikes model)."""

    name = "round-robin"

    def __init__(self, vm: "JVM") -> None:
        super().__init__(vm)
        self._ready: deque[VMThread] = deque()

    def make_ready(self, thread: VMThread) -> None:
        thread.state = ThreadState.READY
        self._ready.append(thread)

    def _pick_next(self) -> Optional[VMThread]:
        while self._ready:
            t = self._ready.popleft()
            if t.state is ThreadState.READY:
                return t
        return None

    def has_ready(self) -> bool:
        return any(t.state is ThreadState.READY for t in self._ready)

    def ready_candidates(self) -> list[VMThread]:
        seen: set[int] = set()
        out: list[VMThread] = []
        for t in self._ready:
            if t.state is ThreadState.READY and t.tid not in seen:
                seen.add(t.tid)
                out.append(t)
        return out

    def _take(self, thread: VMThread) -> None:
        self._ready.remove(thread)


class PriorityScheduler(BaseScheduler):
    """Strict-priority preemptive scheduler (extension).

    The highest effective priority runs; FIFO within one level.  When a
    thread becomes ready with higher effective priority than the running
    thread, the running thread is flagged and preempted at its next yield
    point (pseudo-preemption is preserved).
    """

    name = "priority"

    def __init__(self, vm: "JVM") -> None:
        super().__init__(vm)
        # (-prio, seq, stamp, thread); entries whose stamp no longer
        # matches the thread's sched_stamp are stale and skipped
        self._ready: list[tuple[int, int, int, VMThread]] = []
        self._seq = 0

    def _push(self, thread: VMThread) -> None:
        self._seq += 1
        heapq.heappush(
            self._ready,
            (-thread.effective_priority, self._seq, thread.sched_stamp,
             thread),
        )

    def _maybe_preempt_running(self, thread: VMThread) -> None:
        running = self.vm.current_thread
        if (
            running is not None
            and running.state is ThreadState.RUNNING
            and thread.effective_priority > running.effective_priority
        ):
            running.preempt_requested = True

    def make_ready(self, thread: VMThread) -> None:
        thread.state = ThreadState.READY
        thread.sched_stamp += 1
        self._push(thread)
        self._maybe_preempt_running(thread)

    def on_priority_changed(self, thread: VMThread) -> None:
        if thread.state is ThreadState.READY:
            # re-key: invalidate the old entry, push a fresh one
            thread.sched_stamp += 1
            self._push(thread)
            self._maybe_preempt_running(thread)

    def _pick_next(self) -> Optional[VMThread]:
        while self._ready:
            _neg_prio, _seq, stamp, t = heapq.heappop(self._ready)
            if t.state is not ThreadState.READY:
                continue
            if stamp != t.sched_stamp:
                continue  # superseded by a re-key
            return t
        return None

    def has_ready(self) -> bool:
        return any(
            t.state is ThreadState.READY and stamp == t.sched_stamp
            for _, _, stamp, t in self._ready
        )

    def ready_candidates(self) -> list[VMThread]:
        seen: set[int] = set()
        out: list[VMThread] = []
        for _neg_prio, _seq, stamp, t in sorted(self._ready):
            if (
                t.state is ThreadState.READY
                and stamp == t.sched_stamp
                and t.tid not in seen
            ):
                seen.add(t.tid)
                out.append(t)
        return out

    def _take(self, thread: VMThread) -> None:
        # lazy removal: bump the stamp so the queued entry goes stale
        thread.sched_stamp += 1
