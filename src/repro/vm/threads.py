"""Green threads, frames, and the rollback control-flow signal.

Threads here mirror Jikes RVM's model: user-level ("green") threads
multiplexed on one virtual CPU, context-switched **only at yield points**.
A thread's call stack is a list of :class:`Frame`; each frame owns its
operand stack, locals, and the per-frame saved-state slots that the
transformer's ``SAVESTATE`` instruction populates (paper §3.1.1: "inject
bytecode to save the values on the operand stack just before each
rollback-scope's monitorenter opcode").

:class:`RollbackSignal` is the host-level representation of the paper's
*rollback exception*: it is "thrown internally by the VM" and is only ever
caught by the transformer-injected handlers — the augmented dispatch in the
interpreter ignores every other handler, including finally blocks (§3.1.2).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Optional

from repro.util.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.classfile import MethodDef
    from repro.vm.monitors import Monitor


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"        # parked on a monitor entry queue
    WAITING = "waiting"        # in a wait set (Object.wait)
    SLEEPING = "sleeping"      # SLEEP / PAUSE / timed wait timeout
    TERMINATED = "terminated"


class RollbackSignal(Exception):
    """The internal rollback exception (paper §3.1.1).

    ``target`` is the synchronized-section record being revoked.  Normal
    guest exception dispatch never sees this signal; only exception-table
    entries of type :data:`repro.vm.classfile.ROLLBACK_TYPE` match it.
    """

    def __init__(self, target: Any):
        self.target = target
        super().__init__(f"rollback -> {target!r}")


class SavedState:
    """Snapshot taken by ``SAVESTATE``: operand stack + locals.

    Values are guest scalars/references; we copy the containers, not the
    referenced objects — object *contents* are restored by the undo log,
    while this snapshot restores the frame so re-execution of the section
    observes the same local state as the first execution.
    """

    __slots__ = ("stack", "locals")

    def __init__(self, stack: list, locals_: list):
        self.stack = list(stack)
        self.locals = list(locals_)

    def restore_into(self, frame: "Frame") -> None:
        frame.stack[:] = self.stack
        frame.locals[:] = self.locals


class Frame:
    """One method activation."""

    __slots__ = ("method", "code", "pc", "locals", "stack", "saved_states",
                 "depth")

    def __init__(self, method: "MethodDef", args: list, depth: int):
        self.method = method
        self.code = method.code
        self.pc = 0
        self.locals: list[Any] = list(args) + [0] * (
            method.max_locals - len(args)
        )
        self.stack: list[Any] = []
        #: slot -> SavedState, populated by SAVESTATE
        self.saved_states: dict[int, SavedState] = {}
        self.depth = depth

    def __repr__(self) -> str:
        return f"Frame({self.method.qualified_name()}@{self.pc})"


class VMThread:
    """A guest thread.

    Priorities are small ints (higher = more urgent; the benchmark uses
    ``LOW_PRIORITY=1`` / ``HIGH_PRIORITY=10``).  ``effective_priority``
    folds in priority-inheritance donations and priority-ceiling boosts so
    the schedulers and prioritized monitor queues see one number.
    """

    __slots__ = (
        "tid", "name", "priority", "inherited_priority", "ceiling_boost",
        "state", "frames", "entry_method", "entry_args", "rng",
        "pending_handoff", "revocation_request", "active_rollback",
        "wakeup_time",
        "blocked_on", "waiting_on", "held_monitors", "sections",
        "undo_log", "result", "uncaught", "quantum_used", "sched_stamp",
        "preempt_requested", "revocations", "consecutive_revocations",
        "grace_until", "sections_committed",
        # metrics
        "start_time", "end_time", "cycles_executed", "blocked_since",
        "blocked_cycles", "instructions_executed",
    )

    def __init__(
        self,
        tid: int,
        name: str,
        entry_method: "MethodDef",
        entry_args: list,
        priority: int = 5,
        rng: Optional[DeterministicRng] = None,
    ):
        self.tid = tid
        self.name = name
        self.priority = priority
        self.inherited_priority = -1
        self.ceiling_boost = -1
        self.state = ThreadState.NEW
        self.entry_method = entry_method
        self.entry_args = list(entry_args)
        self.frames: list[Frame] = []
        self.rng = rng or DeterministicRng(0xACE0 + tid)
        #: monitor acquired for us by a releasing thread's direct handoff
        self.pending_handoff: "Monitor | None" = None
        #: section record to revoke at the next yield point
        self.revocation_request = None
        #: in-flight RollbackSignal while unwinding through handlers
        self.active_rollback = None
        self.wakeup_time = 0
        self.blocked_on: "Monitor | None" = None
        self.waiting_on: "Monitor | None" = None
        self.held_monitors: list["Monitor"] = []
        #: active synchronized-section records, outermost first
        self.sections: list = []
        #: per-thread sequential undo buffer (modified VM only)
        self.undo_log = None
        self.result: Any = None
        self.uncaught: Any = None
        self.quantum_used = 0
        #: bumped on every (re)queueing so stale scheduler entries die
        self.sched_stamp = 0
        self.preempt_requested = False
        self.revocations = 0
        self.consecutive_revocations = 0
        #: outermost sections committed (the watchdog's forward-progress
        #: signal: revocations growing while this stays flat = livelock)
        self.sections_committed = 0
        #: livelock guard: while now < grace_until this thread may not be
        #: revoked again (set after repeated revocations)
        self.grace_until = 0
        self.start_time: Optional[int] = None
        self.end_time: Optional[int] = None
        self.cycles_executed = 0
        self.blocked_since: Optional[int] = None
        self.blocked_cycles = 0
        self.instructions_executed = 0

    # ----------------------------------------------------------- priorities
    @property
    def effective_priority(self) -> int:
        p = self.priority
        if self.inherited_priority > p:
            p = self.inherited_priority
        if self.ceiling_boost > p:
            p = self.ceiling_boost
        return p

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Push the entry frame; the scheduler makes the thread READY."""
        if self.state is not ThreadState.NEW:
            raise RuntimeError(f"thread {self.name!r} already started")
        self.frames.append(Frame(self.entry_method, self.entry_args, 0))
        self.state = ThreadState.READY

    @property
    def current_frame(self) -> Frame:
        return self.frames[-1]

    def is_live(self) -> bool:
        return self.state not in (ThreadState.NEW, ThreadState.TERMINATED)

    def credit_blocked(self, now: int) -> int:
        """Close an open blocked interval at ``now``; returns the cycles
        credited (0 when no interval was open).  Every un-block path must
        route through here so ``blocked_cycles`` and the profiler's
        blocked attribution stay in exact agreement."""
        if self.blocked_since is None:
            return 0
        cycles = now - self.blocked_since
        self.blocked_cycles += cycles
        self.blocked_since = None
        return cycles

    def innermost_section(self):
        return self.sections[-1] if self.sections else None

    def in_synchronized_section(self) -> bool:
        return bool(self.sections)

    def section_for_monitor(self, monitor: "Monitor"):
        """Outermost active section that first acquired ``monitor``."""
        for section in self.sections:
            if section.monitor is monitor and not section.recursive:
                return section
        return None

    def elapsed(self) -> int:
        """Virtual run() duration; valid once the thread terminated."""
        if self.start_time is None or self.end_time is None:
            raise RuntimeError(f"thread {self.name!r} has not finished")
        return self.end_time - self.start_time

    def __repr__(self) -> str:
        return (
            f"VMThread({self.name!r}, prio={self.priority}"
            f"{'/' + str(self.effective_priority) if self.effective_priority != self.priority else ''}, "
            f"{self.state.value})"
        )
