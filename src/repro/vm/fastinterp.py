"""The predecoded threaded-dispatch interpreter (the default hot path).

:class:`FastInterpreter` executes the same guest semantics as the
reference :class:`~repro.vm.interpreter.Interpreter`, with one structural
change in the inner loop: before dispatching an instruction it consults
the method's predecoded block table (:mod:`repro.vm.predecode`).  When the
current pc starts a compiled basic block, the whole straight-line run
executes through one Python call — block cost and instruction count are
charged with two additions (*basic-block cost batching*) instead of one
dispatch per instruction.  Any pc without a block falls through to a
verbatim copy of the reference dispatch chain, so predecode coverage can
only affect speed, never behaviour.

Parity contract (enforced by ``tests/test_interp_parity.py``): virtual
clock values *and* advance-event counts, trace streams, schedules, and
checker fingerprints are byte-identical to the reference interpreter.
The invariants that guarantee it:

* blocks never contain yield points or clock-flushing ops, so ``flush()``
  runs at exactly the reference's program points;
* a block's static cost equals the sum the reference would accumulate
  into ``acc`` across the same instructions, and dynamic barrier cycles
  are returned through the ``A[0]`` cell and folded into ``acc`` after
  the block call;
* when a block raises a guest exception mid-run, the fault cell ``F[0]``
  holds the faulting pc and the pre-charged cost/count of the unexecuted
  suffix is subtracted before the exception dispatch sees ``frame.pc``.

The reference interpreter remains available via
``VMOptions(interp="reference")`` and is auto-selected when per-access
memory tracing (``trace_memory``) needs per-instruction events.
"""

from __future__ import annotations

from repro.errors import GuestRuntimeError, ReproError, StarvationError
from repro.vm import bytecode as bc
from repro.vm.heap import location_of, require_ref
from repro.vm.interpreter import (
    BLOCKED,
    Interpreter,
    MAX_FRAME_DEPTH,
    PREEMPTED,
    SLEEPING,
    TERMINATED,
    WAITING,
    YIELDED,
    _idiv,
    _imod,
)
from repro.vm.monitors import monitor_of
from repro.vm.predecode import predecode_method
from repro.vm.threads import Frame, SavedState, ThreadState, VMThread


class FastInterpreter(Interpreter):
    """Reference semantics + predecoded basic-block dispatch."""

    def _decoded_for(self, method):
        dm = method.__dict__.get("_decoded")
        if dm is None:
            dm = predecode_method(self.vm, method)
        return dm

    # NOTE: this is the reference Interpreter._execute loop with the block
    # preamble inserted at the top of the dispatch; every chain arm below
    # is kept verbatim so uncompiled pcs behave identically.  The parity
    # suite diffs the two loops' observable behaviour on every policy.
    def _execute(self, thread: VMThread) -> str:
        vm = self.vm
        clock = self.clock
        support = self.support
        scheduler = vm.scheduler
        pending_wake = scheduler.pending_wake_time
        quantum = self.cost_model.quantum
        cm = self.cost_model
        read_barriers = self.read_barriers
        trace_mem = self._trace_mem
        max_cycles = vm.options.max_cycles
        faults = vm.fault_plane
        profiler = vm.profiler
        F = [0]  # fault cell: pc of the op a block was executing when it raised
        # dynamic-cost cells: A[0] carries barrier cycles accrued inside a
        # block; superblocks use both cells to hand back the partial
        # iteration's unflushed (cycles, instructions) on a trace exit.
        A = [0, 0]

        while True:  # outer loop: re-entered on frame switch / exceptions
            frame = thread.frames[-1]
            code = frame.code
            dm = self._decoded_for(frame.method)
            blocks = dm.blocks
            supers = dm.superblocks
            pc = frame.pc
            stack = frame.stack
            locals_ = frame.locals
            acc = 0      # unflushed cycles
            icount = 0   # unflushed instruction count

            def flush() -> None:
                nonlocal acc, icount
                if profiler is not None and (acc or icount):
                    profiler.on_flush(thread, frame, acc, icount)
                clock.advance(acc)
                thread.cycles_executed += acc
                thread.quantum_used += acc
                thread.instructions_executed += icount
                acc = 0
                icount = 0

            try:
                while True:
                    # ------------------------- predecoded block dispatch
                    b = blocks[pc]
                    if b is not None:
                        acc += b.cost
                        icount += b.count
                        try:
                            pc = b.fn(stack, locals_, F, A, thread)
                        except GuestRuntimeError:
                            # repair the pre-charge: drop the cost/count of
                            # the instructions after the faulting one, keep
                            # any barrier cycles accrued before the fault,
                            # and resume exception dispatch at its pc.
                            fpc = F[0] if b.raising else b.start
                            k = fpc - b.start
                            acc -= b.suffix_cost[k]
                            icount -= b.suffix_count[k]
                            if b.dynamic:
                                acc += A[0]
                            pc = fpc
                            raise
                        if b.dynamic:
                            acc += A[0]
                        continue

                    ins = code[pc]
                    op = ins.op

                    if ins.ypoint:
                        # inlined flush(): this is the hottest flush site
                        # (every loop back-edge) and closure/nonlocal
                        # overhead is measurable here
                        if profiler is not None and (acc or icount):
                            profiler.on_flush(thread, frame, acc, icount)
                        clock.advance(acc)
                        thread.cycles_executed += acc
                        thread.quantum_used += acc
                        thread.instructions_executed += icount
                        acc = 0
                        icount = 0
                        if max_cycles and clock.now > max_cycles:
                            raise StarvationError(max_cycles)
                        if thread.revocation_request is not None:
                            sig = support.check_yield(thread)
                            if sig is not None:
                                thread.active_rollback = sig  # type: ignore[attr-defined]
                                frame.pc = pc
                                self._relinquish_pending_handoff(thread)
                                self._unwind_to_handler(thread)
                                break  # re-enter outer loop on new frame/pc
                        if faults is not None and thread.active_rollback is None:
                            injected = faults.on_yield_point(thread)
                            if injected is not None:
                                # Dispatched exactly like any guest fault:
                                # through the exception tables, never
                                # through rollback scopes.
                                raise GuestRuntimeError(
                                    "injected fault", guest_class=injected
                                )
                        if (
                            thread.quantum_used >= quantum
                            or thread.preempt_requested
                            or pending_wake() <= clock.now
                        ):
                            frame.pc = pc
                            thread.preempt_requested = False
                            return PREEMPTED

                        # -------------------- superblock trace dispatch
                        # Entered only once every hoisted yield-point
                        # check is provably constant for the whole run
                        # (see repro.vm.tracecomp); the accumulators are
                        # zero here (just flushed), so the trace owns all
                        # charging until it hands back through A/F.
                        sb = supers[pc]
                        if (
                            sb is not None
                            and thread.revocation_request is None
                            and profiler is None
                            and clock.listener is None
                            and (faults is None or faults.yield_quiet())
                        ):
                            try:
                                r = sb.fn(stack, locals_, F, A, thread,
                                          pending_wake())
                            except GuestRuntimeError:
                                # completed iterations are committed; the
                                # partial one continues as if the chain
                                # had been accumulating it all along.
                                acc = A[0]
                                icount = A[1]
                                pc = F[0]
                                raise
                            if r >= 0:
                                # branch out of the loop: resume normal
                                # dispatch at the exit target with the
                                # partial iteration's unflushed charges.
                                acc = A[0]
                                icount = A[1]
                                pc = r
                                continue
                            # preemption or due wake-up at the back edge
                            frame.pc = pc
                            thread.preempt_requested = False
                            return PREEMPTED

                    acc += ins.cost
                    icount += 1

                    # ---------------------------------------- hot opcodes
                    if op == bc.LOAD:
                        stack.append(locals_[ins.a])
                        pc += 1
                    elif op == bc.CONST:
                        stack.append(ins.a)
                        pc += 1
                    elif op == bc.STORE:
                        locals_[ins.a] = stack.pop()
                        pc += 1
                    elif op == bc.IINC:
                        locals_[ins.a] += ins.b
                        pc += 1
                    elif op == bc.GOTO:
                        pc = ins.a
                    elif op == bc.IF:
                        v = stack.pop()
                        pc = ins.a if v else pc + 1
                    elif op == bc.IFNOT:
                        v = stack.pop()
                        pc = pc + 1 if v else ins.a
                    elif op == bc.ADD:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] + b_
                        pc += 1
                    elif op == bc.SUB:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] - b_
                        pc += 1
                    elif op == bc.MUL:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] * b_
                        pc += 1
                    elif op == bc.LT:
                        b_ = stack.pop()
                        stack[-1] = 1 if stack[-1] < b_ else 0
                        pc += 1
                    elif op == bc.GE:
                        b_ = stack.pop()
                        stack[-1] = 1 if stack[-1] >= b_ else 0
                        pc += 1
                    elif op == bc.MOD:
                        b_ = stack.pop()
                        a_ = stack.pop()
                        if isinstance(a_, int) and isinstance(b_, int):
                            if b_ == 0:
                                raise GuestRuntimeError(
                                    "integer remainder by zero",
                                    guest_class="ArithmeticException",
                                )
                            stack.append(_imod(a_, b_))
                        else:
                            stack.append(self._fmod(a_, b_))
                        pc += 1

                    # ------------------------------------------ heap access
                    elif op == bc.GETFIELD:
                        obj = require_ref(stack.pop(), "object")
                        fd = self._field_def(ins, obj)
                        stack.append(obj.get(ins.a))
                        if read_barriers:
                            acc += support.after_load(
                                thread, obj, ins.a, fd.volatile
                            )
                        if trace_mem:
                            vm.trace(
                                "mem_read", thread,
                                loc=location_of(obj, ins.a),
                            )
                        pc += 1
                    elif op == bc.PUTFIELD:
                        val = stack.pop()
                        obj = require_ref(stack.pop(), "object")
                        fd = self._field_def(ins, obj)
                        old = obj.put(ins.a, val)
                        if ins.barrier:
                            acc += support.before_store(
                                thread, obj, ins.a, old, fd.volatile
                            )
                        if trace_mem:
                            vm.trace(
                                "mem_write", thread,
                                loc=location_of(obj, ins.a),
                            )
                        pc += 1
                    elif op == bc.ALOAD:
                        idx = stack.pop()
                        arr = require_ref(stack.pop(), "array")
                        stack.append(arr.get(idx))
                        if read_barriers:
                            acc += support.after_load(thread, arr, idx, False)
                        if trace_mem:
                            vm.trace(
                                "mem_read", thread,
                                loc=location_of(arr, idx),
                            )
                        pc += 1
                    elif op == bc.ASTORE:
                        val = stack.pop()
                        idx = stack.pop()
                        arr = require_ref(stack.pop(), "array")
                        old = arr.put(idx, val)
                        if ins.barrier:
                            acc += support.before_store(
                                thread, arr, idx, old, False
                            )
                        if trace_mem:
                            vm.trace(
                                "mem_write", thread,
                                loc=location_of(arr, idx),
                            )
                        pc += 1
                    elif op == bc.GETSTATIC:
                        fd = ins.c or self._static_def(ins)
                        stack.append(vm.heap.get_static(ins.a))
                        if read_barriers:
                            acc += support.after_load(
                                thread, ins.a, ins.a[1], fd.volatile
                            )
                        if trace_mem:
                            vm.trace(
                                "mem_read", thread,
                                loc=location_of(ins.a, ins.a[1]),
                            )
                        pc += 1
                    elif op == bc.PUTSTATIC:
                        fd = ins.c or self._static_def(ins)
                        old = vm.heap.put_static(ins.a, stack.pop())
                        if ins.barrier:
                            acc += support.before_store(
                                thread, ins.a, ins.a[1], old, fd.volatile
                            )
                        if trace_mem:
                            vm.trace(
                                "mem_write", thread,
                                loc=location_of(ins.a, ins.a[1]),
                            )
                        pc += 1
                    elif op == bc.ARRAYLEN:
                        arr = require_ref(stack.pop(), "array")
                        stack.append(len(arr))
                        pc += 1
                    elif op == bc.NEW:
                        classdef = ins.c or self._classdef(ins)
                        stack.append(vm.heap.allocate(classdef))
                        pc += 1
                    elif op == bc.CLASSREF:
                        obj = ins.c
                        if obj is None:
                            obj = vm.heap.class_object(ins.a)
                            ins.c = obj
                        stack.append(obj)
                        pc += 1
                    elif op == bc.NEWARRAY:
                        length = stack.pop()
                        if not isinstance(length, int) or length < 0:
                            raise GuestRuntimeError(
                                f"negative array size {length}",
                                guest_class="NegativeArraySizeException",
                            )
                        stack.append(vm.heap.allocate_array(length, ins.a))
                        pc += 1

                    # -------------------------------------------- monitors
                    elif op == bc.MONITORENTER:
                        mon = monitor_of(require_ref(stack[-1], "monitor"))
                        if thread.pending_handoff is mon:
                            thread.pending_handoff = None
                            thread.blocked_on = None
                            stack.pop()
                            acc += support.on_monitor_entered(
                                thread, mon, frame, ins.a, False
                            )
                            vm.trace("acquire", thread, mon=mon, handoff=True)
                            pc += 1
                        elif mon.try_acquire(thread):
                            recursive = mon.count > 1
                            if not recursive and mon.is_queued(thread):
                                # woken waiter winning the retry race
                                mon.count = mon.queued_count(thread)
                                mon.remove_from_queue(thread)
                            thread.blocked_on = None
                            stack.pop()
                            acc += support.on_monitor_entered(
                                thread, mon, frame, ins.a, recursive
                            )
                            vm.trace("acquire", thread, mon=mon,
                                     recursive=recursive)
                            pc += 1
                        else:
                            acc += cm.monitor_slow
                            acc += support.on_contended_acquire(thread, mon)
                            if not mon.is_queued(thread):
                                mon.enqueue(thread)
                            thread.blocked_on = mon
                            thread.state = ThreadState.BLOCKED
                            thread.blocked_since = clock.now + acc
                            frame.pc = pc
                            flush()
                            vm.trace("block", thread, mon=mon)
                            return BLOCKED
                    elif op == bc.MONITOREXIT:
                        mon = monitor_of(require_ref(stack.pop(), "monitor"))
                        acc += support.on_monitor_exited(
                            thread, mon, frame, ins.a
                        )
                        successor = mon.release(
                            thread, prioritized=self._prioritized,
                            handoff=self._handoff,
                        )
                        if successor is not None:
                            acc += cm.monitor_slow
                            self._post_release(mon, successor)
                        acc += support.on_handoff(thread, mon, successor)
                        vm.trace("release", thread, mon=mon,
                                 successor=successor)
                        pc += 1

                    # ----------------------------------------------- calls
                    elif op == bc.INVOKE:
                        mdef = ins.c or self._method_def(ins)
                        argc = ins.b
                        if argc:
                            args = stack[-argc:]
                            del stack[-argc:]
                        else:
                            args = []
                        if len(thread.frames) >= MAX_FRAME_DEPTH:
                            raise GuestRuntimeError(
                                "call stack exhausted",
                                guest_class="StackOverflowError",
                            )
                        # The caller parks ON the invoke (the JVM attributes
                        # in-callee exceptions to the call site's pc, so
                        # exception ranges ending at the invoke still cover
                        # it); RETURN advances past it.
                        frame.pc = pc
                        thread.frames.append(
                            Frame(mdef, args, frame.depth + 1)
                        )
                        flush()
                        break  # outer loop re-reads the new frame
                    elif op == bc.RETURN:
                        retval = stack.pop() if ins.a else None
                        thread.frames.pop()
                        if not thread.frames:
                            flush()
                            self._terminate(thread, result=retval)
                            return TERMINATED
                        caller = thread.frames[-1]
                        caller.pc += 1  # step past the parked INVOKE
                        if ins.a:
                            caller.stack.append(retval)
                        flush()
                        break
                    elif op == bc.NATIVE:
                        fn = ins.c or self._native_fn(ins)
                        argc = ins.b
                        if argc:
                            args = stack[-argc:]
                            del stack[-argc:]
                        else:
                            args = []
                        acc += support.on_native_call(thread, ins.a)
                        frame.pc = pc  # natives may inspect the thread
                        result = fn(vm, thread, args)
                        if result is not None:
                            stack.append(result)
                        pc += 1
                    elif op == bc.ATHROW:
                        exc = require_ref(stack.pop(), "throwable")
                        frame.pc = pc
                        flush()
                        if not self._dispatch_guest_exception(thread, exc):
                            return TERMINATED
                        break

                    # --------------------------------------------- threading
                    elif op == bc.WAIT or op == bc.TIMED_WAIT:
                        timed = op == bc.TIMED_WAIT
                        ref_slot = -2 if timed else -1
                        mon = monitor_of(
                            require_ref(stack[ref_slot], "monitor")
                        )
                        reacquired = False
                        if thread.pending_handoff is mon:
                            # direct handoff after notify/timeout
                            thread.pending_handoff = None
                            reacquired = True
                        elif (
                            mon.is_queued(thread)
                            and mon.owner is not thread
                        ):
                            # woken (no-handoff mode): retry acquisition
                            saved_count = mon.queued_count(thread)
                            if mon.try_acquire(thread):
                                mon.count = saved_count
                                mon.remove_from_queue(thread)
                                reacquired = True
                            else:
                                acc += cm.monitor_slow
                                acc += support.on_contended_acquire(
                                    thread, mon
                                )
                                thread.blocked_on = mon
                                thread.state = ThreadState.BLOCKED
                                thread.blocked_since = clock.now + acc
                                frame.pc = pc
                                flush()
                                vm.trace("block", thread, mon=mon)
                                return BLOCKED
                        if reacquired:
                            thread.blocked_on = None
                            if timed:
                                stack.pop()
                            stack.pop()
                            thread.waiting_on = None
                            acc += support.on_wait_reacquired(thread, mon)
                            vm.trace("wait_return", thread, mon=mon)
                            pc += 1
                        else:
                            if mon.owner is not thread:
                                raise GuestRuntimeError(
                                    "wait() without monitor ownership",
                                    guest_class="IllegalMonitorStateException",
                                )
                            acc += support.on_wait(thread, mon)
                            timeout = stack[-1] if timed else 0
                            saved, successor = mon.wait_release(
                                thread, prioritized=self._prioritized,
                                handoff=self._handoff,
                            )
                            mon.add_waiter(thread, saved)
                            thread.waiting_on = mon
                            thread.state = ThreadState.WAITING
                            frame.pc = pc
                            flush()
                            if successor is not None:
                                self._post_release(mon, successor)
                            acc2 = support.on_handoff(thread, mon, successor)
                            if profiler is not None and acc2:
                                profiler.on_flush(thread, frame, acc2, 0)
                            clock.advance(acc2)
                            if timed and timeout > 0:
                                vm.scheduler.add_sleeper(
                                    thread, clock.now + timeout
                                )
                            vm.trace("wait", thread, mon=mon,
                                     timeout=timeout if timed else None,
                                     successor=successor)
                            return WAITING
                    elif op == bc.NOTIFY or op == bc.NOTIFYALL:
                        mon = monitor_of(require_ref(stack.pop(), "monitor"))
                        if mon.owner is not thread:
                            raise GuestRuntimeError(
                                "notify() without monitor ownership",
                                guest_class="IllegalMonitorStateException",
                            )
                        if op == bc.NOTIFY:
                            moved = mon.notify_one()
                            targets = [moved] if moved else []
                        else:
                            targets = mon.notify_all()
                        for waiter, saved_count in targets:
                            vm.scheduler.remove_sleeper(waiter)
                            mon.enqueue(waiter, saved_count)
                            waiter.waiting_on = None
                            waiter.blocked_on = mon
                            waiter.state = ThreadState.BLOCKED
                            vm.trace("notify", thread, mon=mon,
                                     woken=waiter)
                        pc += 1
                    elif op == bc.SLEEP or op == bc.PAUSE:
                        if op == bc.SLEEP:
                            duration = stack.pop()
                        else:
                            duration = thread.rng.randint(0, 2 * ins.a)
                        frame.pc = pc + 1
                        flush()
                        if duration <= 0:
                            thread.state = ThreadState.READY
                            return YIELDED
                        thread.state = ThreadState.SLEEPING
                        vm.scheduler.add_sleeper(
                            thread, clock.now + duration
                        )
                        return SLEEPING
                    elif op == bc.YIELD:
                        frame.pc = pc + 1
                        flush()
                        return YIELDED

                    # ------------------------------------------- misc/state
                    elif op == bc.TIME:
                        flush()
                        stack.append(clock.now)
                        pc += 1
                    elif op == bc.TID:
                        stack.append(thread.tid)
                        pc += 1
                    elif op == bc.RAND:
                        stack.append(thread.rng.randint(0, ins.a - 1))
                        pc += 1
                    elif op == bc.DEBUG:
                        vm.trace("debug", thread, tag=ins.a)
                        pc += 1
                    elif op == bc.SAVESTATE:
                        state = SavedState(stack, locals_)
                        frame.saved_states[ins.a] = state
                        acc += cm.savestate_word * (
                            len(state.stack) + len(state.locals)
                        )
                        pc += 1
                    elif op == bc.RESTORESTATE:
                        frame.saved_states[ins.a].restore_into(frame)
                        pc += 1
                    elif op == bc.ROLLBACK_HANDLER:
                        frame.pc = pc
                        flush()
                        resumed = self._run_rollback_handler(thread, ins)
                        if not resumed:
                            self._unwind_to_handler(thread)
                        break

                    # ------------------------------------------ cold opcodes
                    elif op == bc.DIV:
                        b_ = stack.pop()
                        a_ = stack.pop()
                        if isinstance(a_, int) and isinstance(b_, int):
                            if b_ == 0:
                                raise GuestRuntimeError(
                                    "integer division by zero",
                                    guest_class="ArithmeticException",
                                )
                            stack.append(_idiv(a_, b_))
                        else:
                            stack.append(self._fdiv(a_, b_))
                        pc += 1
                    elif op == bc.NEG:
                        stack[-1] = -stack[-1]
                        pc += 1
                    elif op == bc.AND:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] & b_
                        pc += 1
                    elif op == bc.OR:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] | b_
                        pc += 1
                    elif op == bc.XOR:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] ^ b_
                        pc += 1
                    elif op == bc.SHL:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] << b_
                        pc += 1
                    elif op == bc.SHR:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] >> b_
                        pc += 1
                    elif op == bc.NOT:
                        stack[-1] = 0 if stack[-1] else 1
                        pc += 1
                    elif op == bc.EQ:
                        b_ = stack.pop()
                        a_ = stack.pop()
                        stack.append(1 if self._guest_eq(a_, b_) else 0)
                        pc += 1
                    elif op == bc.NE:
                        b_ = stack.pop()
                        a_ = stack.pop()
                        stack.append(0 if self._guest_eq(a_, b_) else 1)
                        pc += 1
                    elif op == bc.LE:
                        b_ = stack.pop()
                        stack[-1] = 1 if stack[-1] <= b_ else 0
                        pc += 1
                    elif op == bc.GT:
                        b_ = stack.pop()
                        stack[-1] = 1 if stack[-1] > b_ else 0
                        pc += 1
                    elif op == bc.DUP:
                        stack.append(stack[-1])
                        pc += 1
                    elif op == bc.POP:
                        stack.pop()
                        pc += 1
                    elif op == bc.SWAP:
                        stack[-1], stack[-2] = stack[-2], stack[-1]
                        pc += 1
                    elif op == bc.NOP:
                        pc += 1
                    else:  # pragma: no cover - verifier rejects unknown ops
                        raise ReproError(f"unimplemented opcode {op}")
            except GuestRuntimeError as exc:
                frame.pc = pc
                flush()
                guest_exc = vm.make_guest_exception(
                    exc.guest_class, str(exc)
                )
                if not self._dispatch_guest_exception(thread, guest_exc):
                    return TERMINATED
                # loop around; frame/pc were updated by the dispatcher
