"""The instruction set of the simulated VM.

A deliberately JVM-flavoured, stack-based bytecode.  Instructions are small
records (``op`` plus up to three generic operands ``a``/``b``/``c``); the
interpreter dispatches on the integer ``op``.  Two extra slots are resolved
at link time for speed and for the paper's mechanisms:

``cost``
    virtual cycles charged when the instruction executes (from the active
    :class:`repro.vm.clock.CostModel`);

``ypoint``
    True when the instruction is a *yield point*.  Jikes RVM inserts yield
    points on loop back-edges and method prologues; our linker marks
    backward branches and ``INVOKE`` the same way.  Context switches and
    revocation delivery happen **only** at yield points (paper §3.1, §4).

``barrier``
    on store instructions: True when the transformer decided this store
    needs a write barrier (paper §1: "all compiled code needs at least a
    fast-path test on every non-local update").  Untransformed code has no
    barriers, matching the unmodified VM.

Operand conventions are documented per opcode in :data:`SPEC`.
"""

from __future__ import annotations

from typing import Any

# --- opcode numbering -------------------------------------------------------
# Hot opcodes get low numbers; the interpreter's dispatch chain tests them
# roughly in this order.

NOP = 0
CONST = 1
LOAD = 2
STORE = 3
IINC = 4
DUP = 5
POP = 6
SWAP = 7

ADD = 10
SUB = 11
MUL = 12
DIV = 13
MOD = 14
NEG = 15
AND = 16
OR = 17
XOR = 18
SHL = 19
SHR = 20
NOT = 21

EQ = 25
NE = 26
LT = 27
LE = 28
GT = 29
GE = 30

GOTO = 35
IF = 36
IFNOT = 37

NEW = 40
NEWARRAY = 41
GETFIELD = 42
PUTFIELD = 43
GETSTATIC = 44
PUTSTATIC = 45
ALOAD = 46
ASTORE = 47
ARRAYLEN = 48
CLASSREF = 49

MONITORENTER = 50
MONITOREXIT = 51

INVOKE = 55
NATIVE = 56
RETURN = 57
ATHROW = 58

WAIT = 60
TIMED_WAIT = 61
NOTIFY = 62
NOTIFYALL = 63
SLEEP = 64
YIELD = 65
PAUSE = 66

TIME = 70
TID = 71
RAND = 72
DEBUG = 73

SAVESTATE = 80
RESTORESTATE = 81
ROLLBACK_HANDLER = 82

_MAX_OP = 90


# (mnemonic, stack_pops, stack_pushes, operand docs)
SPEC: dict[int, tuple[str, int, int, str]] = {
    NOP: ("nop", 0, 0, ""),
    CONST: ("const", 0, 1, "a=value"),
    LOAD: ("load", 0, 1, "a=local index"),
    STORE: ("store", 1, 0, "a=local index"),
    IINC: ("iinc", 0, 0, "a=local index, b=delta"),
    DUP: ("dup", 1, 2, ""),
    POP: ("pop", 1, 0, ""),
    SWAP: ("swap", 2, 2, ""),
    ADD: ("add", 2, 1, ""),
    SUB: ("sub", 2, 1, ""),
    MUL: ("mul", 2, 1, ""),
    DIV: ("div", 2, 1, "guest ArithmeticException on zero divisor"),
    MOD: ("mod", 2, 1, "guest ArithmeticException on zero divisor"),
    NEG: ("neg", 1, 1, ""),
    AND: ("and", 2, 1, ""),
    OR: ("or", 2, 1, ""),
    XOR: ("xor", 2, 1, ""),
    SHL: ("shl", 2, 1, ""),
    SHR: ("shr", 2, 1, ""),
    NOT: ("not", 1, 1, "logical: pushes 1 if popped value is falsy"),
    EQ: ("eq", 2, 1, ""),
    NE: ("ne", 2, 1, ""),
    LT: ("lt", 2, 1, ""),
    LE: ("le", 2, 1, ""),
    GT: ("gt", 2, 1, ""),
    GE: ("ge", 2, 1, ""),
    GOTO: ("goto", 0, 0, "a=target pc"),
    IF: ("if", 1, 0, "a=target pc; jump when popped value is truthy"),
    IFNOT: ("ifnot", 1, 0, "a=target pc; jump when popped value is falsy"),
    NEW: ("new", 0, 1, "a=class name (c=resolved ClassDef)"),
    NEWARRAY: ("newarray", 1, 1, "pop length; a=fill value"),
    GETFIELD: ("getfield", 1, 1, "pop ref; a=field name (c=resolved FieldDef)"),
    PUTFIELD: ("putfield", 2, 0, "pop value, ref; a=field name"),
    GETSTATIC: ("getstatic", 0, 1, "a=(class, field) (c=resolved slot)"),
    PUTSTATIC: ("putstatic", 1, 0, "pop value; a=(class, field)"),
    ALOAD: ("aload", 2, 1, "pop index, arrayref"),
    ASTORE: ("astore", 3, 0, "pop value, index, arrayref"),
    ARRAYLEN: ("arraylen", 1, 1, "pop arrayref"),
    CLASSREF: ("classref", 0, 1, "a=class name; push the Class object"),
    MONITORENTER: ("monitorenter", 1, 0, "pop ref; a=sync id"),
    MONITOREXIT: ("monitorexit", 1, 0, "pop ref; a=sync id"),
    INVOKE: ("invoke", -1, -1, "a=(class, method), b=argc (c=resolved MethodDef)"),
    NATIVE: ("native", -1, -1, "a=native name, b=argc (c=resolved fn)"),
    RETURN: ("return", -1, 0, "a=1 when returning a value"),
    ATHROW: ("athrow", 1, 0, "pop guest exception ref"),
    WAIT: ("wait", 1, 0, "pop ref (must own its monitor)"),
    TIMED_WAIT: ("timed_wait", 2, 0, "pop timeout cycles, ref"),
    NOTIFY: ("notify", 1, 0, "pop ref"),
    NOTIFYALL: ("notifyall", 1, 0, "pop ref"),
    SLEEP: ("sleep", 1, 0, "pop cycles"),
    YIELD: ("yield", 0, 0, "voluntary yield point"),
    PAUSE: ("pause", 0, 0, "a=mean cycles; sleep uniform [0, 2*mean]"),
    TIME: ("time", 0, 1, "push current virtual time"),
    TID: ("tid", 0, 1, "push current guest thread id"),
    RAND: ("rand", 0, 1, "a=bound; push uniform int in [0, bound)"),
    DEBUG: ("debug", 0, 0, "a=tag; emits a trace event, zero cost"),
    SAVESTATE: ("savestate", 0, 0, "a=state slot; snapshot stack+locals"),
    RESTORESTATE: ("restorestate", 0, 0, "a=state slot"),
    ROLLBACK_HANDLER: (
        "rollback_handler",
        0,
        0,
        "a=state slot, b=resume pc; injected by the transformer",
    ),
}


def mnemonic(op: int) -> str:
    """Human-readable name of an opcode."""
    try:
        return SPEC[op][0]
    except KeyError:
        raise ValueError(f"unknown opcode {op}") from None


_BRANCH_OPS = frozenset({GOTO, IF, IFNOT})
_STORE_OPS = frozenset({PUTFIELD, PUTSTATIC, ASTORE})


def is_branch(op: int) -> bool:
    """True for instructions whose ``a`` operand is a pc target."""
    return op in _BRANCH_OPS


def is_store(op: int) -> bool:
    """True for heap-mutating stores (write-barrier candidates)."""
    return op in _STORE_OPS


def is_backward_branch(ins: "Instruction", pc: int) -> bool:
    """True when ``ins`` at ``pc`` is a resolved branch to ``pc`` or
    earlier.  The linker marks exactly these as yield points (loop
    back-edges), and the trace compiler anchors superblocks on the
    unconditional ones."""
    return ins.op in _BRANCH_OPS and isinstance(ins.a, int) and ins.a <= pc


# --- predecode classification ------------------------------------------------
# The fast interpreter (repro.vm.predecode / repro.vm.fastinterp) fuses
# straight-line runs of these opcodes into compiled basic-block
# superinstructions.  An opcode is fusable only when executing it can never
# flush the virtual clock, park or switch the thread, or emit a trace event:
# those interactions must keep happening at the exact program points the
# reference interpreter uses, or clock/trace parity breaks.

#: Pure operand-stack/local ops: no VM interaction, cannot raise guest errors.
FUSABLE_PURE = frozenset({
    NOP, CONST, LOAD, STORE, IINC, DUP, POP, SWAP,
    ADD, SUB, MUL, NEG, AND, OR, XOR, SHL, SHR, NOT,
    EQ, NE, LT, LE, GT, GE, TID,
})

#: Fusable but may raise a guest ArithmeticException (zero divisor).
FUSABLE_ARITH_RAISING = frozenset({DIV, MOD})

#: Heap ops: fusable via the same heap/support seams the reference uses;
#: excluded from fusion when per-access ``mem_read``/``mem_write`` trace
#: events are required (``trace_memory``).
FUSABLE_HEAP = frozenset({
    NEW, NEWARRAY, GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC,
    ALOAD, ASTORE, ARRAYLEN, CLASSREF,
})

#: Branches terminate a block; only *forward* branches (non-yield-points)
#: may be fused — backward branches are yield points by construction.
FUSABLE_BRANCH = _BRANCH_OPS

FUSABLE_OPS = (
    FUSABLE_PURE | FUSABLE_ARITH_RAISING | FUSABLE_HEAP | FUSABLE_BRANCH
)


class Instruction:
    """One bytecode instruction.

    ``a``/``b`` are assembly-time operands; ``c`` holds the link-time
    resolution (a :class:`~repro.vm.classfile.FieldDef`, ``(class, field)``
    static key, :class:`~repro.vm.classfile.MethodDef`, or native callable).
    """

    __slots__ = ("op", "a", "b", "c", "cost", "ypoint", "barrier")

    def __init__(self, op: int, a: Any = None, b: Any = None):
        if op not in SPEC:
            raise ValueError(f"unknown opcode {op}")
        self.op = op
        self.a = a
        self.b = b
        self.c: Any = None
        self.cost = 1
        self.ypoint = False
        self.barrier = False

    def copy(self) -> "Instruction":
        """Deep-enough copy for the transformer (``c`` is re-resolved)."""
        ins = Instruction(self.op, self.a, self.b)
        ins.c = self.c
        ins.cost = self.cost
        ins.ypoint = self.ypoint
        ins.barrier = self.barrier
        return ins

    def __repr__(self) -> str:
        name = mnemonic(self.op)
        parts = [name]
        if self.a is not None:
            parts.append(repr(self.a))
        if self.b is not None:
            parts.append(repr(self.b))
        if self.barrier:
            parts.append("[barrier]")
        if self.ypoint:
            parts.append("[yp]")
        return " ".join(parts)


def disassemble(code: list[Instruction]) -> str:
    """Pretty-print a method body, one instruction per line with pcs."""
    width = len(str(max(len(code) - 1, 0)))
    return "\n".join(f"{pc:>{width}}: {ins!r}" for pc, ins in enumerate(code))
