"""The seam between the stock VM and the paper's modified VM.

The interpreter and scheduler call these hooks at every point the paper
instruments Jikes RVM.  The *unmodified* VM (the paper's baseline) uses
:class:`NullSupport`, whose hooks do nothing and charge nothing.  The
*modified* VM installs :class:`repro.core.revocation.RollbackSupport`;
the priority-inheritance and priority-ceiling baselines are further
implementations in :mod:`repro.core.policies`.

Keeping the seam explicit means the two VMs in every benchmark comparison
run byte-identical interpreter code, differing only in (a) whether the
transformer rewrote the loaded classes and (b) which support is installed —
mirroring how the paper compares a stock Jikes RVM against the same build
plus their compiler/runtime changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.monitors import Monitor
    from repro.vm.threads import Frame, RollbackSignal, VMThread
    from repro.vm.vmcore import JVM


class RuntimeSupport:
    """No-op hook set = the unmodified VM.

    Hooks that can consume virtual time return the extra cycle cost to
    charge; the base class charges zero everywhere.
    """

    name = "null"

    def __init__(self) -> None:
        self.vm: "JVM | None" = None

    def attach(self, vm: "JVM") -> None:
        self.vm = vm

    # ------------------------------------------------------------- monitors
    def on_monitor_entered(
        self,
        thread: "VMThread",
        monitor: "Monitor",
        frame: "Frame",
        sync_id: object,
        recursive: bool,
    ) -> int:
        """After a successful monitorenter (uncontended or via handoff)."""
        return 0

    def on_monitor_exited(
        self,
        thread: "VMThread",
        monitor: "Monitor",
        frame: "Frame",
        sync_id: object,
    ) -> int:
        """Before the matching monitorexit releases the monitor."""
        return 0

    def on_contended_acquire(
        self, thread: "VMThread", monitor: "Monitor"
    ) -> int:
        """``thread`` is about to block on ``monitor``'s entry queue.

        This is where the paper's detection algorithm runs (§4) and where
        priority inheritance donates priority.
        """
        return 0

    def on_handoff(
        self,
        releaser: "VMThread",
        monitor: "Monitor",
        new_owner: Optional["VMThread"],
    ) -> int:
        """After a release (possibly handing ownership to ``new_owner``)."""
        return 0

    # --------------------------------------------------------------- memory
    def before_store(
        self,
        thread: "VMThread",
        container,
        slot,
        old_value,
        volatile: bool,
    ) -> int:
        """Write-barrier slow-path hook; called only for instructions the
        transformer flagged (``Instruction.barrier``).  ``old_value`` is the
        value being overwritten; the rollback runtime appends it to the
        thread's undo log when the thread executes inside a synchronized
        section (paper §3.1.2)."""
        return 0

    def before_store_batch(self, thread: "VMThread", entries) -> int:
        """Batched write-barrier fast path.

        ``entries`` is a tuple of ``(container, slot, old_value, volatile)``
        records for a run of consecutive barrier stores between two
        observation points (no intervening raising op, read barrier, or
        yield point).  Must be observably equivalent to calling
        :meth:`before_store` once per entry in order; the base
        implementation does exactly that, subclasses may append the run in
        one call."""
        cost = 0
        for container, slot, old_value, volatile in entries:
            cost += self.before_store(thread, container, slot, old_value,
                                      volatile)
        return cost

    def after_load(
        self, thread: "VMThread", container, slot, volatile: bool
    ) -> int:
        """Read-barrier hook: JMM read-write dependency tracking (§2.2)."""
        return 0

    # -------------------------------------------------------------- control
    def check_yield(self, thread: "VMThread") -> "RollbackSignal | None":
        """Called at every yield point (and on resume from a block).

        Returns a :class:`~repro.vm.threads.RollbackSignal` when the thread
        must begin revoking a synchronized section, else None.
        """
        return None

    def on_rollback_handler(
        self, thread: "VMThread", section, is_target: bool
    ) -> int:
        """Injected handler bookkeeping: the handler is about to release
        ``section``'s monitor; when ``is_target`` it will then restore state
        and re-execute."""
        return 0

    def on_native_call(self, thread: "VMThread", name: str) -> int:
        """Native methods are irrevocable (§2.2)."""
        return 0

    def on_wait(self, thread: "VMThread", monitor: "Monitor") -> int:
        """``wait`` inside synchronized sections restricts revocability (§2.2)."""
        return 0

    def on_wait_reacquired(
        self, thread: "VMThread", monitor: "Monitor"
    ) -> int:
        return 0

    def on_thread_exit(self, thread: "VMThread") -> None:
        return None

    def on_section_abandoned(self, thread: "VMThread", section) -> None:
        """``section`` was discarded without commit or rollback — its frame
        was popped by guest exception dispatch unwinding past the
        synchronized region.  The support must drop any cached state keyed
        on the section (undo entries up to its mark stay: the catch-all
        release handler ran ``monitorexit``, which has commit semantics)."""
        return None

    # ------------------------------------------------------------ robustness
    def on_starvation(self, thread: "VMThread") -> bool:
        """The scheduler's watchdog flagged ``thread``: its revocation count
        keeps growing while it commits nothing.  Return True when the
        support took a corrective action (e.g. degraded the hot section
        site), False to let the scheduler merely trace the event."""
        return False

    # ----------------------------------------------------------- checking
    def state_fingerprint(self) -> dict:
        """Policy-internal state contribution to the differential oracle's
        final-state fingerprint (:mod:`repro.check.oracle`).

        Called after the VM quiesced.  Must return plain JSON-serializable
        data.  The ``"violations"`` key lists residual-state problems —
        undo logs that never drained, sections never committed, priority
        boosts never rescinded — and must be empty on a clean run;
        anything else in the mapping is informational only and excluded
        from cross-policy comparison."""
        return {"violations": []}

    # ------------------------------------------------------------ scheduling
    def periodic_scan(self) -> None:
        """Optional background detection (paper §1: "either at lock
        acquisition, or periodically in the background")."""
        return None

    def resolve_deadlock(self, cycle: list["VMThread"]) -> bool:
        """Attempt to break a wait-for cycle.  Return True when a resolution
        was initiated (a revocation request was posted), False to let the
        scheduler raise :class:`repro.errors.DeadlockError`."""
        return False


class NullSupport(RuntimeSupport):
    """Explicit alias for the unmodified VM's hook set."""

    name = "unmodified"
