"""The VM substrate: a deterministic, virtual-time mini-JVM.

This package implements everything the paper's evaluation platform (Jikes
RVM 2.2.1) provided to the authors: a heap of objects with fields and
monitors, green threads scheduled round-robin with pseudo-preemption at
compiler-inserted yield points, a bytecode interpreter, and per-method
exception tables.  The paper's contribution itself lives in
:mod:`repro.core` and is layered on top of this substrate.

Public entry points:

* :class:`repro.vm.vmcore.JVM` — the virtual machine facade.
* :class:`repro.vm.assembler.Asm` — structured bytecode builder.
* :class:`repro.vm.classfile.ClassDef` and friends — the class model.
* :class:`repro.vm.clock.CostModel` — the virtual-time cost model.
"""

from repro.vm.values import NULL, default_value, is_reference, truthy
from repro.vm.classfile import (
    ClassDef,
    ExceptionTableEntry,
    FieldDef,
    MethodDef,
    ROLLBACK_TYPE,
    THROWABLE,
)
from repro.vm.bytecode import Instruction, mnemonic
from repro.vm.assembler import Asm, Label
from repro.vm.heap import Heap, VMArray, VMObject
from repro.vm.clock import CostModel, VirtualClock
from repro.vm.monitors import Monitor
from repro.vm.threads import Frame, ThreadState, VMThread
from repro.vm.scheduler import PriorityScheduler, RoundRobinScheduler
from repro.vm.inspector import Inspector
from repro.vm.timeline import render_timeline
from repro.vm.vmcore import JVM, VMOptions

__all__ = [
    "NULL",
    "default_value",
    "is_reference",
    "truthy",
    "ClassDef",
    "ExceptionTableEntry",
    "FieldDef",
    "MethodDef",
    "ROLLBACK_TYPE",
    "THROWABLE",
    "Instruction",
    "mnemonic",
    "Asm",
    "Label",
    "Heap",
    "VMArray",
    "VMObject",
    "CostModel",
    "VirtualClock",
    "Monitor",
    "Frame",
    "ThreadState",
    "VMThread",
    "PriorityScheduler",
    "RoundRobinScheduler",
    "JVM",
    "VMOptions",
    "Inspector",
    "render_timeline",
]
