"""Structured bytecode assembler.

:class:`Asm` builds :class:`~repro.vm.classfile.MethodDef` bodies the way
``javac`` emits them — in particular, ``sync()`` blocks produce the exact
javac shape for ``synchronized`` statements (monitor reference cached in a
temp local, a catch-all handler that releases the monitor and rethrows).
That shape matters: the paper's transformer operates on javac output, so our
transformer is tested against the same idioms.

Branch targets are :class:`Label` objects resolved to pcs by :meth:`Asm.build`,
which also computes ``max_locals`` and runs bytecode verification.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional, Sequence

from repro.errors import VerifyError
from repro.vm import bytecode as bc
from repro.vm.bytecode import Instruction
from repro.vm.classfile import ExceptionTableEntry, MethodDef, THROWABLE


class Label:
    """A forward-referencable branch target."""

    __slots__ = ("pc", "name")

    def __init__(self, name: str = ""):
        self.pc: Optional[int] = None
        self.name = name

    def __repr__(self) -> str:
        ident = self.name or f"{id(self):#x}"
        return f"Label({ident}@{self.pc})"


class Asm:
    """Builder for one method body.

    Instance methods receive the receiver in local 0; declare ``argc``
    accordingly (it includes the receiver).  Every emitter returns ``self``
    so simple sequences can be chained.
    """

    def __init__(
        self,
        name: str,
        argc: int = 0,
        *,
        is_static: bool = True,
        synchronized: bool = False,
        returns_value: bool = False,
    ):
        self.name = name
        # per-builder ordinal for sync-block ids: sync_ids only need to be
        # unique within one method (they key that method's rollback-scope
        # map), and a process-global counter would make assembled bytecode
        # depend on what else the process built first
        self._sync_counter = 0
        self.argc = argc
        self.is_static = is_static
        self.synchronized = synchronized
        self.returns_value = returns_value
        self.code: list[Instruction] = []
        self.exc_entries: list[tuple[Label, Label, Label, Optional[str]]] = []
        self._next_local = argc
        self._built = False

    # ------------------------------------------------------------------ locals
    def local(self, name: str = "") -> int:
        """Allocate a fresh local variable slot."""
        idx = self._next_local
        self._next_local += 1
        return idx

    def arg(self, i: int) -> int:
        """Local slot of the i-th argument (0 = receiver for instance)."""
        if not (0 <= i < self.argc):
            raise VerifyError(f"{self.name}: no argument {i}")
        return i

    # ------------------------------------------------------------------ emit
    def emit(self, op: int, a=None, b=None) -> "Asm":
        self.code.append(Instruction(op, a, b))
        return self

    def const(self, v) -> "Asm":
        return self.emit(bc.CONST, v)

    def load(self, idx: int) -> "Asm":
        return self.emit(bc.LOAD, idx)

    def store(self, idx: int) -> "Asm":
        return self.emit(bc.STORE, idx)

    def iinc(self, idx: int, delta: int = 1) -> "Asm":
        return self.emit(bc.IINC, idx, delta)

    def dup(self) -> "Asm":
        return self.emit(bc.DUP)

    def pop(self) -> "Asm":
        return self.emit(bc.POP)

    def swap(self) -> "Asm":
        return self.emit(bc.SWAP)

    def add(self) -> "Asm":
        return self.emit(bc.ADD)

    def sub(self) -> "Asm":
        return self.emit(bc.SUB)

    def mul(self) -> "Asm":
        return self.emit(bc.MUL)

    def div(self) -> "Asm":
        return self.emit(bc.DIV)

    def mod(self) -> "Asm":
        return self.emit(bc.MOD)

    def neg(self) -> "Asm":
        return self.emit(bc.NEG)

    def and_(self) -> "Asm":
        return self.emit(bc.AND)

    def or_(self) -> "Asm":
        return self.emit(bc.OR)

    def xor(self) -> "Asm":
        return self.emit(bc.XOR)

    def shl(self) -> "Asm":
        return self.emit(bc.SHL)

    def shr(self) -> "Asm":
        return self.emit(bc.SHR)

    def not_(self) -> "Asm":
        return self.emit(bc.NOT)

    def eq(self) -> "Asm":
        return self.emit(bc.EQ)

    def ne(self) -> "Asm":
        return self.emit(bc.NE)

    def lt(self) -> "Asm":
        return self.emit(bc.LT)

    def le(self) -> "Asm":
        return self.emit(bc.LE)

    def gt(self) -> "Asm":
        return self.emit(bc.GT)

    def ge(self) -> "Asm":
        return self.emit(bc.GE)

    # ---------------------------------------------------------------- labels
    def label(self, name: str = "") -> Label:
        return Label(name)

    def place(self, label: Label) -> "Asm":
        if label.pc is not None:
            raise VerifyError(f"{self.name}: label {label!r} placed twice")
        label.pc = len(self.code)
        return self

    def goto(self, label: Label) -> "Asm":
        return self.emit(bc.GOTO, label)

    def if_(self, label: Label) -> "Asm":
        return self.emit(bc.IF, label)

    def ifnot(self, label: Label) -> "Asm":
        return self.emit(bc.IFNOT, label)

    # ------------------------------------------------------------------ heap
    def new(self, class_name: str) -> "Asm":
        return self.emit(bc.NEW, class_name)

    def newarray(self, fill=0) -> "Asm":
        return self.emit(bc.NEWARRAY, fill)

    def getfield(self, name: str) -> "Asm":
        return self.emit(bc.GETFIELD, name)

    def putfield(self, name: str) -> "Asm":
        return self.emit(bc.PUTFIELD, name)

    def getstatic(self, class_name: str, name: str) -> "Asm":
        return self.emit(bc.GETSTATIC, (class_name, name))

    def putstatic(self, class_name: str, name: str) -> "Asm":
        return self.emit(bc.PUTSTATIC, (class_name, name))

    def aload(self) -> "Asm":
        return self.emit(bc.ALOAD)

    def astore(self) -> "Asm":
        return self.emit(bc.ASTORE)

    def arraylen(self) -> "Asm":
        return self.emit(bc.ARRAYLEN)

    def classref(self, class_name: str) -> "Asm":
        return self.emit(bc.CLASSREF, class_name)

    # ----------------------------------------------------------------- calls
    def invoke(self, class_name: str, method: str, argc: int) -> "Asm":
        return self.emit(bc.INVOKE, (class_name, method), argc)

    def native(self, name: str, argc: int = 0) -> "Asm":
        return self.emit(bc.NATIVE, name, argc)

    def ret(self) -> "Asm":
        return self.emit(bc.RETURN, 1 if self.returns_value else 0)

    def athrow(self) -> "Asm":
        return self.emit(bc.ATHROW)

    def throw_new(self, class_name: str) -> "Asm":
        """Allocate and immediately throw a guest exception object."""
        return self.new(class_name).athrow()

    # --------------------------------------------------------------- threads
    def wait_(self) -> "Asm":
        return self.emit(bc.WAIT)

    def timed_wait(self) -> "Asm":
        return self.emit(bc.TIMED_WAIT)

    def notify(self) -> "Asm":
        return self.emit(bc.NOTIFY)

    def notifyall(self) -> "Asm":
        return self.emit(bc.NOTIFYALL)

    def sleep(self) -> "Asm":
        return self.emit(bc.SLEEP)

    def yield_(self) -> "Asm":
        return self.emit(bc.YIELD)

    def pause(self, mean_cycles: int) -> "Asm":
        return self.emit(bc.PAUSE, mean_cycles)

    def time(self) -> "Asm":
        return self.emit(bc.TIME)

    def tid(self) -> "Asm":
        return self.emit(bc.TID)

    def rand(self, bound: int) -> "Asm":
        return self.emit(bc.RAND, bound)

    def debug(self, tag: str) -> "Asm":
        return self.emit(bc.DEBUG, tag)

    # --------------------------------------------------- structured statements
    @contextmanager
    def sync(self):
        """``synchronized (ref) { ... }`` with the monitor ref on the stack.

        Emits the exact javac pattern::

            store   tmp          ; cache monitor ref
            load    tmp
            monitorenter #id
            ...body...
            load    tmp
            monitorexit #id
            goto    END
          H: load   tmp          ; catch-all: release on the way out
            monitorexit #id
            athrow
          END:

        and registers the catch-all exception-table entry over the body.
        """
        self._sync_counter += 1
        sync_id = f"{self.name}#{self._sync_counter}"
        tmp = self.local()
        self.store(tmp)
        self.load(tmp)
        self.emit(bc.MONITORENTER, sync_id)
        body_start = self.label("sync_body")
        self.place(body_start)
        yield sync_id
        body_end = self.label("sync_end")
        self.place(body_end)
        self.load(tmp)
        self.emit(bc.MONITOREXIT, sync_id)
        done = self.label("sync_done")
        self.goto(done)
        handler = self.label("sync_release")
        self.place(handler)
        self.load(tmp)
        self.emit(bc.MONITOREXIT, sync_id)
        self.athrow()
        self.place(done)
        self.exc_entries.append((body_start, body_end, handler, None))

    def while_(
        self, cond: Callable[[], None], body: Callable[[], None]
    ) -> "Asm":
        """Top-tested loop: ``cond`` must leave one value on the stack."""
        top = self.label("while_top")
        end = self.label("while_end")
        self.place(top)
        cond()
        self.ifnot(end)
        body()
        self.goto(top)  # back-edge: yield point
        self.place(end)
        return self

    def for_range(
        self, var: int, count_expr: Callable[[], None], body: Callable[[], None]
    ) -> "Asm":
        """``for (var = 0; var < count; var++) body`` with ``count``
        evaluated once into a temp local."""
        limit = self.local()
        count_expr()
        self.store(limit)
        self.const(0).store(var)
        self.while_(
            lambda: self.load(var).load(limit).lt(),
            lambda: (body(), self.iinc(var, 1)),
        )
        return self

    def if_then(
        self,
        cond: Callable[[], None],
        then: Callable[[], None],
        orelse: Callable[[], None] | None = None,
    ) -> "Asm":
        """``if (cond) then else orelse`` — ``cond`` leaves one stack value."""
        cond()
        else_l = self.label("if_else")
        end_l = self.label("if_end")
        self.ifnot(else_l)
        then()
        if orelse is not None:
            self.goto(end_l)
            self.place(else_l)
            orelse()
            self.place(end_l)
        else:
            self.place(else_l)
        return self

    def try_(
        self,
        body: Callable[[], None],
        catches: Sequence[tuple[str, Callable[[], None]]] = (),
        finally_: Callable[[], None] | None = None,
    ) -> "Asm":
        """``try { body } catch (T) { ... } finally { ... }``.

        Catch handlers run with the guest exception on the stack (they must
        consume it).  The finally body is duplicated at every exit as javac
        does: after the try body, after each catch, and in a catch-all
        re-throw handler.
        """
        t_start = self.label("try_start")
        t_end = self.label("try_end")
        done = self.label("try_done")
        self.place(t_start)
        body()
        self.place(t_end)
        if finally_ is not None:
            finally_()
        self.goto(done)
        handler_labels: list[tuple[Label, str]] = []
        for exc_type, handler_fn in catches:
            h = self.label(f"catch_{exc_type}")
            self.place(h)
            handler_fn()  # exception ref is on the stack
            if finally_ is not None:
                finally_()
            self.goto(done)
            handler_labels.append((h, exc_type))
        fin_handler: Label | None = None
        if finally_ is not None:
            fin_handler = self.label("finally_rethrow")
            self.place(fin_handler)
            tmp = self.local()
            self.store(tmp)
            finally_()
            self.load(tmp)
            self.athrow()
        self.place(done)
        cover_end = t_end
        for h, exc_type in handler_labels:
            self.exc_entries.append((t_start, cover_end, h, exc_type))
        if fin_handler is not None:
            # The finally catch-all also covers the typed handlers, matching
            # javac: an exception escaping a catch block still runs finally.
            self.exc_entries.append((t_start, fin_handler, fin_handler, None))
        return self

    # ----------------------------------------------------------------- build
    def build(self) -> MethodDef:
        """Resolve labels, verify, and produce the :class:`MethodDef`."""
        if self._built:
            raise VerifyError(f"{self.name}: build() called twice")
        self._built = True
        for ins in self.code:
            if bc.is_branch(ins.op) and isinstance(ins.a, Label):
                if ins.a.pc is None:
                    raise VerifyError(
                        f"{self.name}: unplaced label {ins.a!r}"
                    )
                ins.a = ins.a.pc
        table = []
        for start, end, handler, exc_type in self.exc_entries:
            for lab in (start, end, handler):
                if lab.pc is None:
                    raise VerifyError(
                        f"{self.name}: unplaced exception label {lab!r}"
                    )
            table.append(
                ExceptionTableEntry(start.pc, end.pc, handler.pc, exc_type)
            )
        method = MethodDef(
            name=self.name,
            argc=self.argc,
            max_locals=max(self._next_local, self.argc),
            code=self.code,
            exc_table=table,
            synchronized=self.synchronized,
            is_static=self.is_static,
            returns_value=self.returns_value,
        )
        method.verify()
        return method
