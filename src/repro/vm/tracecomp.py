"""Superblock trace compilation: whole loop iterations per Python call.

Predecoded basic blocks (:mod:`repro.vm.predecode`) stop at every yield
point, so a hot guest loop still pays one trip through the interpreter's
yield-point machinery — clock flush, starvation check, revocation poll,
fault probe, preemption test — per iteration, plus one Python call per
basic block of the body.  This module compiles eligible loops into
*superblocks*: one generated function that runs iterations back to back,
hoisting the yield-point checks into a guard-and-commit protocol.

Eligibility and anchoring
-------------------------

A superblock is anchored at a backward unconditional ``GOTO`` yield point
``t -> h`` (a loop back-edge; see
:func:`repro.vm.bytecode.is_backward_branch`) whose whole body ``[h, t)``
is fusable (:func:`repro.vm.predecode._fusable`): no yield points, no
parking/trace-emitting ops, heap ops excluded under ``trace_memory``.
Backward branches are yield points by construction, so the body contains
only *forward* control flow, which the structurizer lowers to nested
``if`` statements; anything it cannot prove structured
(:class:`_Unstructured`) simply stays un-fused — superblock coverage,
like block coverage, can only affect speed, never behaviour.

The guard-and-commit protocol
-----------------------------

The fast interpreter enters a superblock from the anchor's yield point
*after* the inlined flush and checks have all passed (so the unflushed
accumulators are zero), and only when every hoisted check is provably
constant for the duration of the run:

* ``thread.revocation_request is None`` — revocation requests are posted
  by other threads, which cannot run during this thread's slice
  (deterministic uniprocessor), so "no request now" means "no request
  until we return";
* the fault plane is absent or :meth:`~repro.faults.plane.FaultPlane.
  yield_quiet` — its yield-point probe is a pure no-op (no RNG draw, no
  injection), so skipping it is unobservable;
* no profiler and no clock listener — both attribute per-flush, which a
  batched commit cannot replicate;
* preemption inputs are constants: ``preempt_requested`` can only be set
  by code this thread runs (none inside a loop body), and the sleeper
  queue cannot change (no parking ops in the body), so the pending wake
  time ``PW`` is read once at entry.

Inside the generated function each iteration charges the back-edge and
the executed body exactly as the reference interpreter would, then
*commits* the iteration — ``dn += acc; de += 1`` — and re-evaluates the
hoisted checks against literals baked at compile time (quantum,
max_cycles).  On any exit the accumulated cycles and flush-event count
are folded into the clock in one :meth:`Clock.commit_batch` call plus
the three thread mirrors, which is byte-identical (clock value *and*
event count) to the per-iteration flushes the reference performs.

Exits:

* **preemption / due wake-up** — commit, ``return -1``; the dispatcher
  parks the frame at the anchor pc exactly like the inline check;
* **starvation** — commit, raise :class:`~repro.errors.StarvationError`
  (not a guest error: it passes through every guest handler, as in the
  reference);
* **branch out of the loop** — commit the *completed* iterations, hand
  the partial iteration's unflushed ``acc``/``ic`` back through the
  ``A`` cells and return the target pc, where normal dispatch continues
  accumulating;
* **guest exception** — commit completed iterations, hand back the
  partial accumulators (cost model: charge-before-execute, so the
  faulting op is included) and the faulting pc through ``F[0]``; the
  dispatcher re-raises into the reference's exception path.

Static costs are charged lazily at code-generation time: a pending
(cost, count) pair accrues per emitted instruction and is flushed into
the ``acc``/``ic`` locals before any op that can raise, at control-flow
splits, and at iteration boundaries — so the locals equal the
reference's unflushed accumulators at every observable escape point
without per-instruction arithmetic in the common case.
"""

from __future__ import annotations

from typing import Optional

from repro.vm import bytecode as bc
from repro.vm.predecode import _CMP_EXPR, _Emitter, _fusable


class _Unstructured(Exception):
    """Loop body control flow the structurizer cannot lower; not an
    error — the loop just stays block-at-a-time."""


class SuperBlock:
    """A compiled loop trace anchored at one backward-GOTO yield point."""

    __slots__ = ("anchor", "head", "fn", "source")

    def __init__(self, anchor: int, head: int, fn, source: str):
        #: pc of the backward GOTO the trace is entered from
        self.anchor = anchor
        #: loop header (the GOTO's target); iterations run [head, anchor)
        self.head = head
        #: ``fn(stack, locals_, F, A, T, PW) -> exit pc | -1`` (bound by
        #: the method-level compile)
        self.fn = fn
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SuperBlock @{self.anchor} loop [{self.head},{self.anchor})>"


def find_regions(pre) -> list[tuple[int, int]]:
    """Candidate loops ``(head, anchor)``: a backward-GOTO yield point
    whose whole body is fusable."""
    code = pre.method.code
    out = []
    for t, ins in enumerate(code):
        if ins.op != bc.GOTO or not ins.ypoint:
            continue
        if not isinstance(ins.a, int) or ins.a >= t:
            continue  # unresolved or degenerate (empty) self-loop
        head = ins.a
        if all(_fusable(code[pc], pre.fuse_heap) for pc in range(head, t)):
            out.append((head, t))
    return out


def compile_superblocks(pre) -> list[SuperBlock]:
    """Compile every structurizable candidate loop of ``pre.method``."""
    out = []
    for head, anchor in find_regions(pre):
        try:
            out.append(_SuperCompiler(pre, head, anchor).compile())
        except _Unstructured:
            continue
    return out


class _SuperCompiler:
    """Lower one loop body to a generated iteration-batching function."""

    def __init__(self, pre, head: int, anchor: int):
        self.pre = pre
        self.code = pre.method.code
        self.head = head
        self.anchor = anchor
        self.em = _Emitter(pre, "super")
        vm = pre.vm
        self.quantum = vm.options.cost_model.quantum
        self.max_cycles = vm.options.max_cycles

    # ------------------------------------------------------------ framework
    def compile(self) -> SuperBlock:
        em = self.em
        em.emit("n0 = CLK.now")
        em.emit("qu = T.quantum_used")
        em.emit("dn = 0")
        em.emit("de = 0")
        em.emit("di = 0")
        em.emit("try:")
        em.indent += 1
        em.emit("while True:")
        em.indent += 1
        em.emit("acc = 0")
        em.emit("ic = 0")
        # every iteration charges the back-edge GOTO first (the reference
        # charges it when dispatching the anchor, before the body runs)
        em.charge(self.code[self.anchor])
        self._gen(self.head, self.anchor)
        em.flush_batch()
        em.flush_charges()
        em.flush_stack()
        em.emit("dn += acc")
        em.emit("de += 1")
        em.emit("di += ic")
        if self.max_cycles:
            em.emit(f"if n0 + dn > {self.max_cycles}:")
            em.indent += 1
            self._writeback()
            em.emit(f"raise SERR({self.max_cycles})")
            em.indent -= 1
        em.emit(f"if qu + dn >= {self.quantum} or PW <= n0 + dn:")
        em.indent += 1
        self._writeback()
        em.emit("A[0] = 0")
        em.emit("A[1] = 0")
        em.emit("return -1")
        em.indent -= 1
        em.indent -= 1  # while
        em.indent -= 1  # try
        em.emit("except GRE:")
        em.indent += 1
        self._writeback()
        em.emit("A[0] = acc")
        em.emit("A[1] = ic")
        em.emit("raise")
        em.indent -= 1

        name = f"_s{self.anchor}"
        body = "\n".join(em.lines)
        source = f"def {name}(stack, locals_, F, A, T, PW):\n{body}\n"
        return SuperBlock(self.anchor, self.head, None, source)

    def _writeback(self) -> None:
        em = self.em
        em.emit("CLK.commit_batch(dn, de)")
        em.emit("T.cycles_executed += dn")
        em.emit("T.quantum_used += dn")
        em.emit("T.instructions_executed += di")

    def _exit(self, target: int) -> None:
        """Leave the trace mid-iteration for ``target`` (outside the
        loop): commit completed iterations, hand the partial iteration's
        accumulators to the dispatcher."""
        em = self.em
        em.flush_batch()
        em.flush_charges()
        em.flush_stack()
        self._writeback()
        em.emit("A[0] = acc")
        em.emit("A[1] = ic")
        em.emit(f"return {target}")

    def _arm(self, header: str, body) -> None:
        """Emit ``header``, generate ``body`` indented under it, and close
        the arm with the batch/charge/stack flushes a join requires."""
        em = self.em
        em.flush_batch()
        em.flush_charges()
        em.flush_stack()
        em.emit(header)
        em.indent += 1
        before = len(em.lines)
        body()
        em.flush_batch()
        em.flush_charges()
        em.flush_stack()
        if len(em.lines) == before:
            em.emit("pass")  # e.g. an arm of only zero-pending charges
        em.indent -= 1

    def _outside(self, target: int) -> bool:
        """True when ``target`` leaves the loop region entirely."""
        return target < self.head or target > self.anchor

    # ------------------------------------------------------------- lowering
    def _gen(self, lo: int, hi: int) -> None:
        """Lower ``[lo, hi)``; control falls off the end into the caller's
        continuation (the loop back-edge when ``hi == anchor``)."""
        em = self.em
        code = self.code
        pc = lo
        while pc < hi:
            ins = code[pc]
            op = ins.op

            if op in _CMP_EXPR or op == bc.EQ or op == bc.NE:
                nxt = code[pc + 1] if pc + 1 < hi else None
                if nxt is not None and nxt.op in (bc.IF, bc.IFNOT):
                    em.charge(ins)
                    em.charge(nxt)
                    b_ = em.pop()
                    a = em.pop()
                    if op in _CMP_EXPR:
                        cond = f"({a.expr}) {_CMP_EXPR[op]} ({b_.expr})"
                        negated = False
                    else:
                        cond = f"GEQ({a.expr}, {b_.expr})"
                        negated = op == bc.NE
                    if negated:
                        cond = f"not {cond}"
                    self.pre._bump("cmp+branch")
                    self._branch(pc + 1, nxt, cond, hi)
                    return
                em.charge(ins)
                em.emit_op(pc, ins)
            elif op == bc.IF or op == bc.IFNOT:
                em.charge(ins)
                v = em.pop()
                self._branch(pc, ins, v.expr, hi)
                return
            elif op == bc.GOTO:
                g = ins.a
                if g == hi and pc + 1 == hi:
                    em.charge(ins)
                    return  # jump to the join the caller generates next
                if self._outside(g) and pc + 1 == hi:
                    em.charge(ins)
                    self._exit(g)
                    return
                # a join-skipping GOTO with trailing code, or a forward
                # jump into the middle of the region: the trailing code
                # may be a branch target this linear lowering cannot
                # represent — leave the loop un-fused.
                raise _Unstructured
            else:
                em.charge(ins)
                em.emit_op(pc, ins)
            pc += 1

    def _branch(self, bpc: int, ins, cond: str, hi: int) -> None:
        """Lower a forward IF/IFNOT at ``bpc`` (condition already popped;
        its cost already charged)."""
        code = self.code
        L = ins.a
        f = bpc + 1
        taken = cond if ins.op == bc.IF else f"not ({cond})"
        nottaken = f"not ({cond})" if ins.op == bc.IF else cond

        if L == f:
            # degenerate branch to its own fall-through: no split
            self._gen(f, hi)
            return
        if L == hi:
            # if_then: the taken path jumps straight to the join
            self._arm(f"if {nottaken}:", lambda: self._gen(f, hi))
            return
        if self._outside(L):
            # loop exit on the taken path; fall-through stays in the body
            self._arm(f"if {taken}:", lambda: self._exit(L))
            self._gen(f, hi)
            return
        if f < L < hi:
            prev = code[L - 1]
            if (prev.op == bc.GOTO and isinstance(prev.a, int)
                    and L < prev.a <= hi):
                # diamond: else-arm [f, L-1) ends in GOTO join; then-arm
                # [L, J); both meet at J
                J = prev.a

                def else_arm() -> None:
                    self._gen(f, L - 1)
                    self.em.charge(prev)  # the join-skipping GOTO

                self._arm(f"if {taken}:", lambda: self._gen(L, J))
                self._arm("else:", else_arm)
                self._gen(J, hi)
                return
            # one-armed skip: taken jumps over [f, L)
            self._arm(f"if {nottaken}:", lambda: self._gen(f, L))
            self._gen(L, hi)
            return
        raise _Unstructured
