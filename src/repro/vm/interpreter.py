"""The bytecode interpreter.

Executes one thread at a time (the platform is a uniprocessor running green
threads, as in the paper's Jikes RVM setup).  The scheduler calls
:meth:`Interpreter.run_slice`, which executes until the thread blocks,
sleeps, terminates, or reaches a *yield point* with its quantum expired or a
pending preemption/revocation — the only places a context switch can happen
(pseudo-preemption, paper footnote 4).

Revocation protocol (paper §3.1): at a yield point, if the runtime support
hands back a :class:`~repro.vm.threads.RollbackSignal`, the interpreter
unwinds to the innermost active synchronized section's injected handler
(``ROLLBACK_HANDLER``).  The handler releases that section's monitor and
either restores the saved operand stack/locals and jumps back to the
``SAVESTATE`` before the ``monitorenter`` (when the section is the
revocation target) or rethrows the signal outward.  Normal guest exception
dispatch never matches rollback scopes, and rollback dispatch never runs
default handlers or finally blocks.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import GuestRuntimeError, ReproError, StarvationError
from repro.vm import bytecode as bc
from repro.vm.classfile import MethodDef, ROLLBACK_TYPE, THROWABLE
from repro.vm.heap import VMArray, VMObject, location_of, require_ref
from repro.vm.monitors import Monitor, monitor_of
from repro.vm.threads import (
    Frame,
    RollbackSignal,
    SavedState,
    ThreadState,
    VMThread,
)
from repro.vm.values import NULL

MAX_FRAME_DEPTH = 2_000

# run_slice outcome reasons
PREEMPTED = "preempted"
YIELDED = "yielded"
BLOCKED = "blocked"
WAITING = "waiting"
SLEEPING = "sleeping"
TERMINATED = "terminated"


def _idiv(a: int, b: int) -> int:
    """Java integer division: truncation toward zero."""
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def _imod(a: int, b: int) -> int:
    """Java integer remainder: sign follows the dividend."""
    return a - _idiv(a, b) * b


class Interpreter:
    """Executes guest bytecode for one :class:`repro.vm.vmcore.JVM`."""

    def __init__(self, vm) -> None:
        self.vm = vm
        self.clock = vm.clock
        self.cost_model = vm.cost_model
        self.support = vm.support
        #: modified VM: read barriers active on every heap load
        self.read_barriers = vm.options.modified
        self._prioritized = vm.options.prioritized_queues
        self._handoff = vm.options.direct_handoff
        #: stream mem_read/mem_write trace events (lockset analysis)
        self._trace_mem = vm.options.trace and vm.options.trace_memory

    # ------------------------------------------------------------------ API
    def run_slice(self, thread: VMThread) -> str:
        """Run ``thread`` until it can no longer continue; return a reason."""
        thread.state = ThreadState.RUNNING
        thread.quantum_used = 0
        if thread.start_time is None:
            thread.start_time = self.clock.now
        # A revocation may have been posted while the thread was off-CPU
        # (deadlock victim woken from a monitor queue, sleeper revoked).
        if thread.revocation_request is not None:
            sig = self.support.check_yield(thread)
            if sig is not None:
                thread.active_rollback = sig  # type: ignore[attr-defined]
                self._relinquish_pending_handoff(thread)
                self._unwind_to_handler(thread)
        return self._execute(thread)

    # ----------------------------------------------------------- main loop
    def _execute(self, thread: VMThread) -> str:
        vm = self.vm
        clock = self.clock
        support = self.support
        scheduler = vm.scheduler
        quantum = self.cost_model.quantum
        cm = self.cost_model
        read_barriers = self.read_barriers
        trace_mem = self._trace_mem
        max_cycles = vm.options.max_cycles
        faults = vm.fault_plane
        profiler = vm.profiler

        while True:  # outer loop: re-entered on frame switch / exceptions
            frame = thread.frames[-1]
            code = frame.code
            pc = frame.pc
            stack = frame.stack
            locals_ = frame.locals
            acc = 0      # unflushed cycles
            icount = 0   # unflushed instruction count

            def flush() -> None:
                nonlocal acc, icount
                if profiler is not None and (acc or icount):
                    profiler.on_flush(thread, frame, acc, icount)
                clock.advance(acc)
                thread.cycles_executed += acc
                thread.quantum_used += acc
                thread.instructions_executed += icount
                acc = 0
                icount = 0

            try:
                while True:
                    ins = code[pc]
                    op = ins.op

                    if ins.ypoint:
                        flush()
                        if max_cycles and clock.now > max_cycles:
                            raise StarvationError(max_cycles)
                        if thread.revocation_request is not None:
                            sig = support.check_yield(thread)
                            if sig is not None:
                                thread.active_rollback = sig  # type: ignore[attr-defined]
                                frame.pc = pc
                                self._relinquish_pending_handoff(thread)
                                self._unwind_to_handler(thread)
                                break  # re-enter outer loop on new frame/pc
                        if faults is not None and thread.active_rollback is None:
                            injected = faults.on_yield_point(thread)
                            if injected is not None:
                                # Dispatched exactly like any guest fault:
                                # through the exception tables, never
                                # through rollback scopes.
                                raise GuestRuntimeError(
                                    "injected fault", guest_class=injected
                                )
                        if (
                            thread.quantum_used >= quantum
                            or thread.preempt_requested
                            or scheduler.pending_wake_time() <= clock.now
                        ):
                            frame.pc = pc
                            thread.preempt_requested = False
                            return PREEMPTED

                    acc += ins.cost
                    icount += 1

                    # ---------------------------------------- hot opcodes
                    if op == bc.LOAD:
                        stack.append(locals_[ins.a])
                        pc += 1
                    elif op == bc.CONST:
                        stack.append(ins.a)
                        pc += 1
                    elif op == bc.STORE:
                        locals_[ins.a] = stack.pop()
                        pc += 1
                    elif op == bc.IINC:
                        locals_[ins.a] += ins.b
                        pc += 1
                    elif op == bc.GOTO:
                        pc = ins.a
                    elif op == bc.IF:
                        v = stack.pop()
                        pc = ins.a if v else pc + 1
                    elif op == bc.IFNOT:
                        v = stack.pop()
                        pc = pc + 1 if v else ins.a
                    elif op == bc.ADD:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] + b_
                        pc += 1
                    elif op == bc.SUB:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] - b_
                        pc += 1
                    elif op == bc.MUL:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] * b_
                        pc += 1
                    elif op == bc.LT:
                        b_ = stack.pop()
                        stack[-1] = 1 if stack[-1] < b_ else 0
                        pc += 1
                    elif op == bc.GE:
                        b_ = stack.pop()
                        stack[-1] = 1 if stack[-1] >= b_ else 0
                        pc += 1
                    elif op == bc.MOD:
                        b_ = stack.pop()
                        a_ = stack.pop()
                        if isinstance(a_, int) and isinstance(b_, int):
                            if b_ == 0:
                                raise GuestRuntimeError(
                                    "integer remainder by zero",
                                    guest_class="ArithmeticException",
                                )
                            stack.append(_imod(a_, b_))
                        else:
                            stack.append(self._fmod(a_, b_))
                        pc += 1

                    # ------------------------------------------ heap access
                    elif op == bc.GETFIELD:
                        obj = require_ref(stack.pop(), "object")
                        fd = self._field_def(ins, obj)
                        stack.append(obj.get(ins.a))
                        if read_barriers:
                            acc += support.after_load(
                                thread, obj, ins.a, fd.volatile
                            )
                        if trace_mem:
                            vm.trace(
                                "mem_read", thread,
                                loc=location_of(obj, ins.a),
                            )
                        pc += 1
                    elif op == bc.PUTFIELD:
                        val = stack.pop()
                        obj = require_ref(stack.pop(), "object")
                        fd = self._field_def(ins, obj)
                        old = obj.put(ins.a, val)
                        if ins.barrier:
                            acc += support.before_store(
                                thread, obj, ins.a, old, fd.volatile
                            )
                        if trace_mem:
                            vm.trace(
                                "mem_write", thread,
                                loc=location_of(obj, ins.a),
                            )
                        pc += 1
                    elif op == bc.ALOAD:
                        idx = stack.pop()
                        arr = require_ref(stack.pop(), "array")
                        stack.append(arr.get(idx))
                        if read_barriers:
                            acc += support.after_load(thread, arr, idx, False)
                        if trace_mem:
                            vm.trace(
                                "mem_read", thread,
                                loc=location_of(arr, idx),
                            )
                        pc += 1
                    elif op == bc.ASTORE:
                        val = stack.pop()
                        idx = stack.pop()
                        arr = require_ref(stack.pop(), "array")
                        old = arr.put(idx, val)
                        if ins.barrier:
                            acc += support.before_store(
                                thread, arr, idx, old, False
                            )
                        if trace_mem:
                            vm.trace(
                                "mem_write", thread,
                                loc=location_of(arr, idx),
                            )
                        pc += 1
                    elif op == bc.GETSTATIC:
                        fd = ins.c or self._static_def(ins)
                        stack.append(vm.heap.get_static(ins.a))
                        if read_barriers:
                            acc += support.after_load(
                                thread, ins.a, ins.a[1], fd.volatile
                            )
                        if trace_mem:
                            vm.trace(
                                "mem_read", thread,
                                loc=location_of(ins.a, ins.a[1]),
                            )
                        pc += 1
                    elif op == bc.PUTSTATIC:
                        fd = ins.c or self._static_def(ins)
                        old = vm.heap.put_static(ins.a, stack.pop())
                        if ins.barrier:
                            acc += support.before_store(
                                thread, ins.a, ins.a[1], old, fd.volatile
                            )
                        if trace_mem:
                            vm.trace(
                                "mem_write", thread,
                                loc=location_of(ins.a, ins.a[1]),
                            )
                        pc += 1
                    elif op == bc.ARRAYLEN:
                        arr = require_ref(stack.pop(), "array")
                        stack.append(len(arr))
                        pc += 1
                    elif op == bc.NEW:
                        classdef = ins.c or self._classdef(ins)
                        stack.append(vm.heap.allocate(classdef))
                        pc += 1
                    elif op == bc.CLASSREF:
                        obj = ins.c
                        if obj is None:
                            obj = vm.heap.class_object(ins.a)
                            ins.c = obj
                        stack.append(obj)
                        pc += 1
                    elif op == bc.NEWARRAY:
                        length = stack.pop()
                        if not isinstance(length, int) or length < 0:
                            raise GuestRuntimeError(
                                f"negative array size {length}",
                                guest_class="NegativeArraySizeException",
                            )
                        stack.append(vm.heap.allocate_array(length, ins.a))
                        pc += 1

                    # -------------------------------------------- monitors
                    elif op == bc.MONITORENTER:
                        mon = monitor_of(require_ref(stack[-1], "monitor"))
                        if thread.pending_handoff is mon:
                            thread.pending_handoff = None
                            thread.blocked_on = None
                            stack.pop()
                            acc += support.on_monitor_entered(
                                thread, mon, frame, ins.a, False
                            )
                            vm.trace("acquire", thread, mon=mon, handoff=True)
                            pc += 1
                        elif mon.try_acquire(thread):
                            recursive = mon.count > 1
                            if not recursive and mon.is_queued(thread):
                                # woken waiter winning the retry race
                                mon.count = mon.queued_count(thread)
                                mon.remove_from_queue(thread)
                            thread.blocked_on = None
                            stack.pop()
                            acc += support.on_monitor_entered(
                                thread, mon, frame, ins.a, recursive
                            )
                            vm.trace("acquire", thread, mon=mon,
                                     recursive=recursive)
                            pc += 1
                        else:
                            acc += cm.monitor_slow
                            acc += support.on_contended_acquire(thread, mon)
                            if not mon.is_queued(thread):
                                mon.enqueue(thread)
                            thread.blocked_on = mon
                            thread.state = ThreadState.BLOCKED
                            thread.blocked_since = clock.now + acc
                            frame.pc = pc
                            flush()
                            vm.trace("block", thread, mon=mon)
                            return BLOCKED
                    elif op == bc.MONITOREXIT:
                        mon = monitor_of(require_ref(stack.pop(), "monitor"))
                        acc += support.on_monitor_exited(
                            thread, mon, frame, ins.a
                        )
                        successor = mon.release(
                            thread, prioritized=self._prioritized,
                            handoff=self._handoff,
                        )
                        if successor is not None:
                            acc += cm.monitor_slow
                            self._post_release(mon, successor)
                        acc += support.on_handoff(thread, mon, successor)
                        vm.trace("release", thread, mon=mon,
                                 successor=successor)
                        pc += 1

                    # ----------------------------------------------- calls
                    elif op == bc.INVOKE:
                        mdef = ins.c or self._method_def(ins)
                        argc = ins.b
                        if argc:
                            args = stack[-argc:]
                            del stack[-argc:]
                        else:
                            args = []
                        if len(thread.frames) >= MAX_FRAME_DEPTH:
                            raise GuestRuntimeError(
                                "call stack exhausted",
                                guest_class="StackOverflowError",
                            )
                        # The caller parks ON the invoke (the JVM attributes
                        # in-callee exceptions to the call site's pc, so
                        # exception ranges ending at the invoke still cover
                        # it); RETURN advances past it.
                        frame.pc = pc
                        thread.frames.append(
                            Frame(mdef, args, frame.depth + 1)
                        )
                        flush()
                        break  # outer loop re-reads the new frame
                    elif op == bc.RETURN:
                        retval = stack.pop() if ins.a else None
                        thread.frames.pop()
                        if not thread.frames:
                            flush()
                            self._terminate(thread, result=retval)
                            return TERMINATED
                        caller = thread.frames[-1]
                        caller.pc += 1  # step past the parked INVOKE
                        if ins.a:
                            caller.stack.append(retval)
                        flush()
                        break
                    elif op == bc.NATIVE:
                        fn = ins.c or self._native_fn(ins)
                        argc = ins.b
                        if argc:
                            args = stack[-argc:]
                            del stack[-argc:]
                        else:
                            args = []
                        acc += support.on_native_call(thread, ins.a)
                        frame.pc = pc  # natives may inspect the thread
                        result = fn(vm, thread, args)
                        if result is not None:
                            stack.append(result)
                        pc += 1
                    elif op == bc.ATHROW:
                        exc = require_ref(stack.pop(), "throwable")
                        frame.pc = pc
                        flush()
                        if not self._dispatch_guest_exception(thread, exc):
                            return TERMINATED
                        break

                    # --------------------------------------------- threading
                    elif op == bc.WAIT or op == bc.TIMED_WAIT:
                        timed = op == bc.TIMED_WAIT
                        ref_slot = -2 if timed else -1
                        mon = monitor_of(
                            require_ref(stack[ref_slot], "monitor")
                        )
                        reacquired = False
                        if thread.pending_handoff is mon:
                            # direct handoff after notify/timeout
                            thread.pending_handoff = None
                            reacquired = True
                        elif (
                            mon.is_queued(thread)
                            and mon.owner is not thread
                        ):
                            # woken (no-handoff mode): retry acquisition
                            saved_count = mon.queued_count(thread)
                            if mon.try_acquire(thread):
                                mon.count = saved_count
                                mon.remove_from_queue(thread)
                                reacquired = True
                            else:
                                acc += cm.monitor_slow
                                acc += support.on_contended_acquire(
                                    thread, mon
                                )
                                thread.blocked_on = mon
                                thread.state = ThreadState.BLOCKED
                                thread.blocked_since = clock.now + acc
                                frame.pc = pc
                                flush()
                                vm.trace("block", thread, mon=mon)
                                return BLOCKED
                        if reacquired:
                            thread.blocked_on = None
                            if timed:
                                stack.pop()
                            stack.pop()
                            thread.waiting_on = None
                            acc += support.on_wait_reacquired(thread, mon)
                            vm.trace("wait_return", thread, mon=mon)
                            pc += 1
                        else:
                            if mon.owner is not thread:
                                raise GuestRuntimeError(
                                    "wait() without monitor ownership",
                                    guest_class="IllegalMonitorStateException",
                                )
                            acc += support.on_wait(thread, mon)
                            timeout = stack[-1] if timed else 0
                            saved, successor = mon.wait_release(
                                thread, prioritized=self._prioritized,
                                handoff=self._handoff,
                            )
                            mon.add_waiter(thread, saved)
                            thread.waiting_on = mon
                            thread.state = ThreadState.WAITING
                            frame.pc = pc
                            flush()
                            if successor is not None:
                                self._post_release(mon, successor)
                            acc2 = support.on_handoff(thread, mon, successor)
                            if profiler is not None and acc2:
                                profiler.on_flush(thread, frame, acc2, 0)
                            clock.advance(acc2)
                            if timed and timeout > 0:
                                vm.scheduler.add_sleeper(
                                    thread, clock.now + timeout
                                )
                            vm.trace("wait", thread, mon=mon,
                                     timeout=timeout if timed else None,
                                     successor=successor)
                            return WAITING
                    elif op == bc.NOTIFY or op == bc.NOTIFYALL:
                        mon = monitor_of(require_ref(stack.pop(), "monitor"))
                        if mon.owner is not thread:
                            raise GuestRuntimeError(
                                "notify() without monitor ownership",
                                guest_class="IllegalMonitorStateException",
                            )
                        if op == bc.NOTIFY:
                            moved = mon.notify_one()
                            targets = [moved] if moved else []
                        else:
                            targets = mon.notify_all()
                        for waiter, saved_count in targets:
                            vm.scheduler.remove_sleeper(waiter)
                            mon.enqueue(waiter, saved_count)
                            waiter.waiting_on = None
                            waiter.blocked_on = mon
                            waiter.state = ThreadState.BLOCKED
                            vm.trace("notify", thread, mon=mon,
                                     woken=waiter)
                        pc += 1
                    elif op == bc.SLEEP or op == bc.PAUSE:
                        if op == bc.SLEEP:
                            duration = stack.pop()
                        else:
                            duration = thread.rng.randint(0, 2 * ins.a)
                        frame.pc = pc + 1
                        flush()
                        if duration <= 0:
                            thread.state = ThreadState.READY
                            return YIELDED
                        thread.state = ThreadState.SLEEPING
                        vm.scheduler.add_sleeper(
                            thread, clock.now + duration
                        )
                        return SLEEPING
                    elif op == bc.YIELD:
                        frame.pc = pc + 1
                        flush()
                        return YIELDED

                    # ------------------------------------------- misc/state
                    elif op == bc.TIME:
                        flush()
                        stack.append(clock.now)
                        pc += 1
                    elif op == bc.TID:
                        stack.append(thread.tid)
                        pc += 1
                    elif op == bc.RAND:
                        stack.append(thread.rng.randint(0, ins.a - 1))
                        pc += 1
                    elif op == bc.DEBUG:
                        vm.trace("debug", thread, tag=ins.a)
                        pc += 1
                    elif op == bc.SAVESTATE:
                        state = SavedState(stack, locals_)
                        frame.saved_states[ins.a] = state
                        acc += cm.savestate_word * (
                            len(state.stack) + len(state.locals)
                        )
                        pc += 1
                    elif op == bc.RESTORESTATE:
                        frame.saved_states[ins.a].restore_into(frame)
                        pc += 1
                    elif op == bc.ROLLBACK_HANDLER:
                        frame.pc = pc
                        flush()
                        resumed = self._run_rollback_handler(thread, ins)
                        if not resumed:
                            self._unwind_to_handler(thread)
                        break

                    # ------------------------------------------ cold opcodes
                    elif op == bc.DIV:
                        b_ = stack.pop()
                        a_ = stack.pop()
                        if isinstance(a_, int) and isinstance(b_, int):
                            if b_ == 0:
                                raise GuestRuntimeError(
                                    "integer division by zero",
                                    guest_class="ArithmeticException",
                                )
                            stack.append(_idiv(a_, b_))
                        else:
                            stack.append(self._fdiv(a_, b_))
                        pc += 1
                    elif op == bc.NEG:
                        stack[-1] = -stack[-1]
                        pc += 1
                    elif op == bc.AND:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] & b_
                        pc += 1
                    elif op == bc.OR:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] | b_
                        pc += 1
                    elif op == bc.XOR:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] ^ b_
                        pc += 1
                    elif op == bc.SHL:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] << b_
                        pc += 1
                    elif op == bc.SHR:
                        b_ = stack.pop()
                        stack[-1] = stack[-1] >> b_
                        pc += 1
                    elif op == bc.NOT:
                        stack[-1] = 0 if stack[-1] else 1
                        pc += 1
                    elif op == bc.EQ:
                        b_ = stack.pop()
                        a_ = stack.pop()
                        stack.append(1 if self._guest_eq(a_, b_) else 0)
                        pc += 1
                    elif op == bc.NE:
                        b_ = stack.pop()
                        a_ = stack.pop()
                        stack.append(0 if self._guest_eq(a_, b_) else 1)
                        pc += 1
                    elif op == bc.LE:
                        b_ = stack.pop()
                        stack[-1] = 1 if stack[-1] <= b_ else 0
                        pc += 1
                    elif op == bc.GT:
                        b_ = stack.pop()
                        stack[-1] = 1 if stack[-1] > b_ else 0
                        pc += 1
                    elif op == bc.DUP:
                        stack.append(stack[-1])
                        pc += 1
                    elif op == bc.POP:
                        stack.pop()
                        pc += 1
                    elif op == bc.SWAP:
                        stack[-1], stack[-2] = stack[-2], stack[-1]
                        pc += 1
                    elif op == bc.NOP:
                        pc += 1
                    else:  # pragma: no cover - verifier rejects unknown ops
                        raise ReproError(f"unimplemented opcode {op}")
            except GuestRuntimeError as exc:
                frame.pc = pc
                flush()
                guest_exc = vm.make_guest_exception(
                    exc.guest_class, str(exc)
                )
                if not self._dispatch_guest_exception(thread, guest_exc):
                    return TERMINATED
                # loop around; frame/pc were updated by the dispatcher

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _fdiv(a, b):
        import math

        if b == 0:
            if a == 0:
                return math.nan
            return math.inf if a > 0 else -math.inf
        return a / b

    @staticmethod
    def _fmod(a, b):
        import math

        if b == 0:
            return math.nan
        return math.fmod(a, b)

    @staticmethod
    def _guest_eq(a, b) -> bool:
        # References compare by identity; numbers by value.
        if isinstance(a, (VMObject, VMArray)) or isinstance(
            b, (VMObject, VMArray)
        ):
            return a is b
        if a is NULL or b is NULL:
            return a is b
        return a == b

    def _field_def(self, ins, obj: VMObject):
        """Monomorphic inline cache for instance field resolution."""
        cached = ins.c
        if cached is not None and cached[0] is obj.classdef:
            return cached[1]
        fd = obj.classdef.field(ins.a)
        ins.c = (obj.classdef, fd)
        return fd

    def _static_def(self, ins):
        fd = self.vm.heap.static_def(*ins.a)
        ins.c = fd
        return fd

    def _classdef(self, ins):
        classdef = self.vm.classdef(ins.a)
        ins.c = classdef
        return classdef

    def _method_def(self, ins) -> MethodDef:
        mdef = self.vm.resolve_method(*ins.a)
        ins.c = mdef
        if mdef.force_inline:
            ins.cost = 0  # the paper inlines the renamed $impl method
        return mdef

    def _native_fn(self, ins):
        fn = self.vm.resolve_native(ins.a)
        ins.c = fn
        return fn

    def _relinquish_pending_handoff(self, thread: VMThread) -> None:
        """Return a monitor granted by direct handoff but never entered.

        A blocked thread can be handed a monitor and then be revoked before
        it re-executes the ``monitorenter`` that would consume the grant
        (deadlock victims; inversion targets woken off a queue).  The
        rollback resumes *before* that enter, so the ownership must be
        surrendered — otherwise the re-executed enter would look recursive
        and leak a recursion level on exit.
        """
        mon = thread.pending_handoff
        if mon is None:
            return
        thread.pending_handoff = None
        if mon.owner is thread:
            mon.count = 1  # drop any wait-restored recursion in one go
            # handoff=True: releases on behalf of a revocation always
            # transfer ownership (see _run_rollback_handler).
            successor = mon.release(
                thread, prioritized=self._prioritized, handoff=True,
            )
            if successor is not None:
                self._post_release(mon, successor)
            self.support.on_handoff(thread, mon, successor)
            self.vm.trace(
                "handoff_returned", thread, mon=mon, successor=successor
            )

    def _post_release(self, mon: Monitor, successor: VMThread) -> None:
        """Route a release's successor per the active queue policy."""
        if mon.owner is successor:
            self._grant_handoff(mon, successor)
        else:
            self._wake_waiter(successor)

    def _grant_handoff(self, mon: Monitor, new_owner: VMThread) -> None:
        """Ownership was transferred to a queued waiter; make it runnable."""
        new_owner.blocked_on = None
        new_owner.pending_handoff = mon
        self.vm.credit_blocked(new_owner)
        self._ready_or_delay(new_owner, mon)

    def _wake_waiter(self, waiter: VMThread) -> None:
        """No-handoff mode: the selected waiter retries its acquisition
        when scheduled (it stays on the entry queue; arrivals may barge)."""
        if waiter.state is not ThreadState.BLOCKED:
            return  # already runnable from an earlier wake
        self.vm.credit_blocked(waiter)
        self._ready_or_delay(waiter, waiter.blocked_on)
        self.vm.trace("wakeup", waiter)

    def _ready_or_delay(self, thread: VMThread, mon: Optional[Monitor]) -> None:
        """Make a released monitor's successor runnable — or, under fault
        injection, let the plane postpone the wake-up (a delayed monitor
        handoff), widening the window in which other threads can barge,
        detect inversions, or form cycles."""
        faults = self.vm.fault_plane
        if faults is not None:
            delay = faults.handoff_delay(thread, mon)
            if delay > 0:
                thread.state = ThreadState.SLEEPING
                self.vm.scheduler.add_sleeper(thread, self.clock.now + delay)
                self.vm.trace(
                    "handoff_delayed", thread,
                    mon=mon if mon is not None else "?", delay=delay,
                )
                return
        self.vm.scheduler.make_ready(thread)

    def _terminate(self, thread: VMThread, result=None) -> None:
        thread.result = result
        thread.state = ThreadState.TERMINATED
        thread.end_time = self.clock.now
        if thread.held_monitors:
            raise ReproError(
                f"thread {thread.name!r} terminated holding monitors "
                f"{thread.held_monitors!r} (unbalanced bytecode)"
            )
        self.support.on_thread_exit(thread)
        self.vm.trace("exit", thread)

    # -------------------------------------------------- exception dispatch
    def _dispatch_guest_exception(self, thread: VMThread, exc) -> bool:
        """Normal guest exception dispatch (JVM semantics).

        Walks the call stack looking for a matching exception-table entry;
        rollback scopes (:data:`ROLLBACK_TYPE`) never match.  Returns False
        when the exception escaped ``run()`` and the thread died.
        """
        exc_name = exc.classdef.name
        while thread.frames:
            frame = thread.frames[-1]
            pc = frame.pc
            for entry in frame.method.exc_table:
                if not entry.covers(pc):
                    continue
                t = entry.type
                if t == ROLLBACK_TYPE:
                    continue
                if t is None or t == THROWABLE or t == exc_name:
                    frame.stack.clear()
                    frame.stack.append(exc)
                    frame.pc = entry.handler
                    self.vm.trace("catch", thread, exc=exc_name,
                                  handler=entry.handler)
                    return True
            self._pop_frame_discarding(thread)
        thread.uncaught = exc
        thread.state = ThreadState.TERMINATED
        thread.end_time = self.clock.now
        self.support.on_thread_exit(thread)
        self.vm.record_uncaught(thread, exc)
        return False

    def _pop_frame_discarding(self, thread: VMThread) -> None:
        """Pop a frame during unwinding.

        Well-formed (javac-shaped) code never abandons a frame with live
        sections — the catch-all release handlers run first.  If hand-written
        bytecode does, force-release so the VM stays consistent and flag it.
        """
        frame = thread.frames.pop()
        leaked = [s for s in thread.sections if s.frame is frame]
        for section in reversed(leaked):
            thread.sections.remove(section)
            self.support.on_section_abandoned(thread, section)
            mon = section.monitor
            successor = None
            if mon.owner is thread:
                successor = mon.release(
                    thread, prioritized=self._prioritized,
                    handoff=self._handoff,
                )
                if successor is not None:
                    self._post_release(mon, successor)
            self.vm.trace(
                "leaked_monitor", thread, mon=mon, successor=successor
            )

    # ------------------------------------------------------------ rollback
    def _unwind_to_handler(self, thread: VMThread) -> None:
        """Transfer control to the innermost active section's rollback
        handler, discarding any frames above it (no default handlers or
        finally blocks run — paper §3.1.2)."""
        if not thread.sections:
            raise ReproError(
                f"rollback unwind in {thread.name!r} with no active sections"
            )
        section = thread.sections[-1]
        while thread.frames and thread.frames[-1] is not section.frame:
            thread.frames.pop()
        if not thread.frames:
            raise ReproError(
                f"rollback target frame vanished in {thread.name!r}"
            )
        section.frame.pc = section.handler_pc
        self.vm.trace("unwind", thread, to=section.handler_pc)

    def _run_rollback_handler(self, thread: VMThread, ins) -> bool:
        """Execute a ``ROLLBACK_HANDLER`` instruction.

        Releases the innermost section's monitor; if that section is the
        revocation target, restores the ``SAVESTATE`` snapshot and resumes
        at the ``monitorenter`` (returns True).  Otherwise the caller
        rethrows by unwinding to the next outer handler (returns False).
        """
        signal = getattr(thread, "active_rollback", None)
        if signal is None:
            raise ReproError(
                f"ROLLBACK_HANDLER reached outside a rollback in "
                f"{thread.name!r}"
            )
        if not thread.sections:
            raise ReproError("rollback handler with no active section")
        section = thread.sections[-1]
        frame = thread.frames[-1]
        if section.frame is not frame:
            raise ReproError("rollback handler frame mismatch")
        is_target = section is signal.target
        self.support.on_rollback_handler(thread, section, is_target)
        mon = section.monitor
        successor = None
        if mon.owner is thread:
            # Rollback releases ALWAYS hand ownership to the chosen waiter
            # (paper §4: "after the low-priority thread rolls back its
            # changes and releases the monitor, the high-priority thread
            # acquires control").  Without the transfer, the revoked
            # thread's immediate re-execution could barge back in before
            # the waiter runs — for deadlock revocations that recreates
            # the cycle forever (the livelock the paper warns about in §1).
            successor = mon.release(
                thread, prioritized=self._prioritized, handoff=True,
            )
            if successor is not None:
                self._post_release(mon, successor)
            self.support.on_handoff(thread, mon, successor)
        self.vm.trace(
            "rollback_release", thread, mon=mon, target=is_target,
            successor=successor,
        )
        if is_target:
            saved = frame.saved_states.get(ins.a)
            if saved is None:
                raise ReproError(
                    f"no saved state in slot {ins.a!r} of {frame!r}"
                )
            saved.restore_into(frame)
            frame.pc = ins.b
            thread.active_rollback = None  # type: ignore[attr-defined]
            thread.revocations += 1
            self.vm.trace("rollback_done", thread, mon=mon)
            return True
        return False
