"""Reusable guest-code emitters: a bounded ring-buffer queue library.

The server workload plane (:mod:`repro.server`) builds thread-pool guest
programs out of many per-tier request queues.  Rather than hand-emitting
the same head/tail/count arithmetic for every queue, this module provides
parametric :class:`~repro.vm.assembler.Asm` emitters over a *queue family*:
one :class:`RingQueueFields` names the statics (each an array indexed by a
queue id), and the emitters produce the javac-shaped bytecode operating on
one member of the family.

Layout of a queue family on class ``C`` for ``Q`` queues::

    C.<locks>  ref  array[Q] of monitor objects (one lock per queue)
    C.<bufs>   ref  array[Q] of ring arrays (each sized >= max occupancy)
    C.<head>   ref  array[Q] int  next index to pop
    C.<tail>   ref  array[Q] int  next index to push
    C.<count>  ref  array[Q] int  current occupancy
    C.<closed> ref  array[Q] int  1 = no further pushes will arrive

All emitters assume the caller already *holds the queue's lock* (they are
meant to run inside an ``asm.sync()`` over ``locks[q]``) and that the ring
array is large enough — admission control is the caller's policy, not the
queue's.  Every update goes through ordinary ``astore``, so on the
modified VM the operations are write-barriered, undo-logged and fully
revocable like any other guest code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.assembler import Asm
from repro.vm.classfile import FieldDef


@dataclass(frozen=True)
class RingQueueFields:
    """Static-field names of one queue family on guest class ``cls``."""

    cls: str
    locks: str = "qlocks"
    bufs: str = "qbufs"
    head: str = "qhead"
    tail: str = "qtail"
    count: str = "qcount"
    closed: str = "qdone"

    def field_defs(self) -> list[FieldDef]:
        """The ``FieldDef`` rows a guest class needs for this family."""
        return [
            FieldDef(name, "ref", is_static=True)
            for name in (
                self.locks, self.bufs, self.head, self.tail, self.count,
                self.closed,
            )
        ]

    def setup(self, vm, capacities: list[int]) -> None:
        """Host-side allocation of the whole family (one queue per entry
        of ``capacities``); lock objects are instances of ``cls``."""
        q = len(capacities)
        locks = vm.new_array(q)
        bufs = vm.new_array(q)
        for i, capacity in enumerate(capacities):
            locks.put(i, vm.new_object(self.cls))
            bufs.put(i, vm.new_array(capacity, -1))
        vm.set_static(self.cls, self.locks, locks)
        vm.set_static(self.cls, self.bufs, bufs)
        for name in (self.head, self.tail, self.count, self.closed):
            vm.set_static(self.cls, name, vm.new_array(q, 0))


def emit_elem(a: Asm, cls: str, field: str, idx_slot: int) -> Asm:
    """Push ``cls.field[idx]`` (one element of a static array)."""
    return a.getstatic(cls, field).load(idx_slot).aload()


def emit_elem_inc(
    a: Asm, cls: str, field: str, idx_slot: int, delta: int = 1
) -> Asm:
    """``cls.field[idx] += delta`` (atomic under pseudo-preemption: the
    sequence contains no yield point)."""
    a.getstatic(cls, field).load(idx_slot)
    emit_elem(a, cls, field, idx_slot)
    return a.const(delta).add().astore()


def emit_enqueue(
    a: Asm, q: RingQueueFields, qid_slot: int, buf_slot: int,
    cap_slot: int, rid_slot: int,
) -> None:
    """``buf[tail] = rid; tail = (tail + 1) % cap; count += 1``.

    ``buf_slot``/``cap_slot`` are locals caching ``bufs[qid]`` and its
    length (load them once per method with :func:`emit_cache_queue`).
    Caller holds ``locks[qid]`` and has ensured ``count < cap``.
    """
    c = q.cls
    a.load(buf_slot)
    emit_elem(a, c, q.tail, qid_slot)
    a.load(rid_slot).astore()
    a.getstatic(c, q.tail).load(qid_slot)
    emit_elem(a, c, q.tail, qid_slot)
    a.const(1).add().load(cap_slot).mod().astore()
    emit_elem_inc(a, c, q.count, qid_slot, 1)


def emit_dequeue(
    a: Asm, q: RingQueueFields, qid_slot: int, buf_slot: int,
    cap_slot: int, out_slot: int,
) -> None:
    """``out = buf[head]; head = (head + 1) % cap; count -= 1``.

    Caller holds ``locks[qid]`` and has ensured ``count > 0``.
    """
    c = q.cls
    a.load(buf_slot)
    emit_elem(a, c, q.head, qid_slot)
    a.aload().store(out_slot)
    a.getstatic(c, q.head).load(qid_slot)
    emit_elem(a, c, q.head, qid_slot)
    a.const(1).add().load(cap_slot).mod().astore()
    emit_elem_inc(a, c, q.count, qid_slot, -1)


def emit_await_item_or_close(
    a: Asm, q: RingQueueFields, qid_slot: int, lock_slot: int
) -> None:
    """``while (count == 0 && !closed) lock.wait()``.

    The canonical condition-loop guard: spurious wake-ups (including the
    re-check after a producer's enqueue was *revoked*) re-test the
    condition, so rollback of a producer's section is transparent to
    consumers.  ``lock_slot`` caches ``locks[qid]``.
    """
    c = q.cls

    def cond() -> None:
        emit_elem(a, c, q.count, qid_slot)
        a.const(0).eq()
        emit_elem(a, c, q.closed, qid_slot)
        a.const(0).eq()
        a.and_()

    a.while_(cond, lambda: a.load(lock_slot).wait_())


def emit_close(a: Asm, q: RingQueueFields, qid_slot: int,
               lock_slot: int) -> None:
    """``closed[qid] = 1; lock.notifyAll()`` (caller holds the lock)."""
    a.getstatic(q.cls, q.closed).load(qid_slot).const(1).astore()
    a.load(lock_slot).notifyall()


def emit_cache_queue(
    a: Asm, q: RingQueueFields, qid_slot: int,
) -> tuple[int, int, int]:
    """Cache ``locks[qid]``, ``bufs[qid]`` and the ring capacity in fresh
    locals; returns ``(lock_slot, buf_slot, cap_slot)``."""
    lock_slot = a.local()
    buf_slot = a.local()
    cap_slot = a.local()
    emit_elem(a, q.cls, q.locks, qid_slot)
    a.store(lock_slot)
    emit_elem(a, q.cls, q.bufs, qid_slot)
    a.store(buf_slot)
    a.load(buf_slot).arraylen().store(cap_slot)
    return lock_slot, buf_slot, cap_slot
