"""ASCII timelines from execution traces.

Renders one row per thread over virtual time, showing when each thread held
a monitor, sat blocked, waited, and — on the modified VM — when it was
revoked.  Built entirely from the structured trace (``VMOptions(trace=True)``
required), so it works post-mortem on any finished run::

    vm = JVM(VMOptions(mode="rollback", trace=True))
    ...
    vm.run()
    print(render_timeline(vm))

Legend::

    #   inside a synchronized section (holding its monitor)
    -   blocked on a monitor entry queue
    w   in a wait set (Object.wait)
    R   revocation: the section was rolled back here
    D   deadlock resolved by revoking this thread
    G   degradation: a section site dropped a ladder rung here
    !   injected fault delivered to this thread
    .   otherwise live (running, ready or sleeping)
    (space) not yet started / already terminated
"""

from __future__ import annotations

import shutil
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vmcore import JVM

#: never downsample below this many timeline columns
MIN_COLUMNS = 10
#: legacy column count, used when no budget applies
LEGACY_WIDTH = 80


def _resolve_width(
    width: Optional[int],
    max_width: Union[int, str, None],
    name_width: int,
    span: int,
) -> int:
    """Pick the timeline column count.

    An explicit ``width`` wins and is used verbatim (legacy behaviour).
    Otherwise ``max_width`` is a budget for the *whole* rendered line —
    the name gutter, the two ``|`` rails and the cells — so output fits
    a terminal: ``"auto"`` reads the current terminal width, an int is
    used as-is, and ``None`` falls back to the legacy 80 columns.
    Budgeted timelines are additionally capped at one column per cycle;
    downsampling never goes below :data:`MIN_COLUMNS`.
    """
    if width is not None:
        return width
    if max_width is None:
        return LEGACY_WIDTH
    if max_width == "auto":
        budget = shutil.get_terminal_size(fallback=(80, 24)).columns
    else:
        budget = int(max_width)
    cells = budget - (name_width + 3)  # "name |cells|"
    cells = min(cells, LEGACY_WIDTH, max(span, 1))
    return max(MIN_COLUMNS, cells)


def _intervals(events, start_kinds, end_kinds):
    """Per-thread [start, end) intervals delimited by event kinds."""
    open_at: dict[str, int] = {}
    spans: dict[str, list[tuple[int, int]]] = {}
    for e in events:
        if e.thread is None:
            continue
        if e.kind in start_kinds and e.thread not in open_at:
            open_at[e.thread] = e.time
        elif e.kind in end_kinds and e.thread in open_at:
            spans.setdefault(e.thread, []).append(
                (open_at.pop(e.thread), e.time)
            )
    return spans, open_at


def render_timeline(
    vm: "JVM",
    *,
    width: Optional[int] = None,
    max_width: Union[int, str, None] = "auto",
    start: Optional[int] = None,
    end: Optional[int] = None,
) -> str:
    """Render the run as one timeline row per thread.

    ``width`` pins the exact number of timeline cells (the pre-budget
    behaviour).  When it is omitted, the row is downsampled to fit
    ``max_width`` total columns — ``"auto"`` (the default) uses the
    terminal width, an int sets the budget explicitly, and ``None``
    restores the legacy fixed 80 cells.
    """
    events = vm.tracer.events
    if not events:
        return "(no trace events — run the VM with VMOptions(trace=True))"
    t0 = start if start is not None else events[0].time
    t1 = end if end is not None else max(vm.clock.now, events[-1].time)
    if t1 <= t0:
        t1 = t0 + 1
    span = t1 - t0
    name_budget = max(
        (len(t.name) for t in vm.threads), default=4
    )
    width = _resolve_width(width, max_width, name_budget, span)

    def col(time: int) -> int:
        # Integer (floor) division keeps the cell mapping exact: float
        # rounding at large cycle counts could nudge a boundary event
        # one cell left/right, breaking cross-host determinism and the
        # first/last-event guarantees.
        c = (time - t0) * width // span
        return max(0, min(width - 1, c))

    names = [t.name for t in vm.threads]
    rows = {name: [" "] * width for name in names}

    # life span: first event .. exit (or run end)
    first_seen: dict[str, int] = {}
    exit_at: dict[str, int] = {}
    for e in events:
        if e.thread in rows and e.thread not in first_seen:
            first_seen[e.thread] = e.time
        if e.kind == "exit" and e.thread in rows:
            exit_at[e.thread] = e.time
    for name in names:
        born = first_seen.get(name)
        if born is None:
            continue
        died = exit_at.get(name, t1)
        for c in range(col(born), col(died) + 1):
            rows[name][c] = "."

    def paint(spans_open, glyph):
        spans, still_open = spans_open
        for name, intervals in spans.items():
            if name not in rows:
                continue
            for s, e in intervals:
                for c in range(col(s), col(e) + 1):
                    rows[name][c] = glyph
        for name, s in still_open.items():
            if name in rows:
                for c in range(col(s), width):
                    rows[name][c] = glyph

    paint(_intervals(events, {"block"}, {"acquire", "wakeup",
                                         "rollback_done", "exit"}), "-")
    paint(_intervals(events, {"wait"}, {"wait_return", "wait_timeout",
                                        "notify", "exit"}), "w")
    paint(_intervals(events, {"acquire"}, {"release", "rollback_release",
                                           "exit"}), "#")

    # point markers win over intervals
    for e in events:
        if e.thread not in rows:
            continue
        if e.kind == "rollback_done":
            rows[e.thread][col(e.time)] = "R"
        elif e.kind == "deadlock_resolve":
            rows[e.thread][col(e.time)] = "D"
        elif e.kind == "degrade":
            rows[e.thread][col(e.time)] = "G"
        elif e.kind == "fault_inject":
            rows[e.thread][col(e.time)] = "!"

    name_width = max((len(n) for n in names), default=4)
    lines = [
        f"virtual time {t0} .. {t1} "
        f"({span} cycles, {span // width}/column)",
        "legend: # in section   - blocked   w waiting   R rollback   "
        "D deadlock victim   G degrade   ! fault   . live",
        "",
    ]
    for name in names:
        lines.append(f"{name:>{name_width}} |{''.join(rows[name])}|")
    return "\n".join(lines)
