"""Bounded deterministic latency reservoir with exact integer summaries.

The server plane records one integer latency per completed request; a
10^5-request soak must not hold 10^5 Python integers per tier on the
host just to compute five summary numbers.  This reservoir folds the
stream into at most ``capacity`` *(value, count)* bins:

* **Below capacity it is exact** — a counting multiset, so nearest-rank
  percentiles, mean, max and count are bit-identical to sorting the full
  sample (``tests/test_util_reservoir.py`` pins this parity against
  :func:`repro.server.report.latency_summary`).  Virtual-cycle latencies
  are heavily quantized, so real soaks stay in this regime: distinct
  values, not requests, bound the memory.
* **Above capacity** the two *closest* neighboring bins merge (count
  into the larger-count value, ties to the lower value), so a percentile
  is still always an actually-observed latency value and its error is
  bounded by the local gap between adjacent observed values.  ``count``,
  ``max`` and ``mean`` (via an exact running total) remain exact always.

Everything is integer arithmetic and a pure function of the sample
*sequence* — no randomness, no hashing, no floats — so reports built on
it stay byte-identical across hosts, interpreters and worker fan-outs.
Inserts are O(log n) (binary search + list insert); merges scan the
bounded gap table only when the reservoir is full.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any

from repro.util.stats import nearest_rank

__all__ = ["DEFAULT_CAPACITY", "LatencyReservoir"]

#: bins per reservoir — far above the distinct-value count of any
#: in-repo workload, so the exact regime is the operating regime
DEFAULT_CAPACITY = 4096


class LatencyReservoir:
    """Streaming integer-latency summary in bounded memory."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 2:
            raise ValueError("reservoir capacity must be >= 2")
        self.capacity = capacity
        self._values: list[int] = []   # ascending distinct values
        self._counts: list[int] = []   # parallel occurrence counts
        self.count = 0                 # exact stream length
        self.total = 0                 # exact stream sum
        self.max_value = 0             # exact stream max (count > 0)
        self.merges = 0                # bins collapsed so far

    def __len__(self) -> int:
        return self.count

    @property
    def bins(self) -> int:
        return len(self._values)

    @property
    def exact(self) -> bool:
        """True while no merge has happened (summaries are bit-exact)."""
        return self.merges == 0

    def add(self, value: int) -> None:
        value = int(value)
        self.count += 1
        self.total += value
        if self.count == 1 or value > self.max_value:
            self.max_value = value
        i = bisect_left(self._values, value)
        if i < len(self._values) and self._values[i] == value:
            self._counts[i] += 1
            return
        self._values.insert(i, value)
        self._counts.insert(i, 1)
        if len(self._values) > self.capacity:
            self._merge_closest()

    def extend(self, values: Any) -> None:
        for value in values:
            self.add(value)

    def _merge_closest(self) -> None:
        values, counts = self._values, self._counts
        best = 0
        best_gap = values[1] - values[0]
        for i in range(1, len(values) - 1):
            gap = values[i + 1] - values[i]
            if gap < best_gap:
                best_gap = gap
                best = i
        lo, hi = best, best + 1
        # keep the value that represents more observations (ties to the
        # lower one) — except the top pair, which always keeps the
        # maximum so the tail of the distribution never erodes
        if hi == len(values) - 1:
            keep = hi
        else:
            keep = lo if counts[lo] >= counts[hi] else hi
        counts[keep] = counts[lo] + counts[hi]
        drop = hi if keep == lo else lo
        del values[drop]
        del counts[drop]
        self.merges += 1

    def percentile(self, numer: int, denom: int) -> int:
        """Nearest-rank percentile over the binned sample.

        Mirrors :func:`repro.util.stats.nearest_rank` on the expanded
        multiset — without expanding it — via cumulative counts.
        """
        if self.count == 0:
            raise ValueError("empty sample")
        if not (0 < numer <= denom):
            raise ValueError(f"percentile {numer}/{denom} outside (0, 1]")
        rank = (self.count * numer + denom - 1) // denom
        seen = 0
        for value, count in zip(self._values, self._counts):
            seen += count
            if seen >= rank:
                return value
        return self._values[-1]  # pragma: no cover - rank <= count

    def summary(self) -> dict[str, Any]:
        """The exact shape of :func:`repro.server.report.latency_summary`.

        Bit-identical to the unbounded path whenever :attr:`exact`
        holds, which is the operating regime (see the module docstring).
        """
        if self.count == 0:
            return {"count": 0, "p50": None, "p99": None, "p999": None,
                    "max": None, "mean": None}
        return {
            "count": self.count,
            "p50": self.percentile(50, 100),
            "p99": self.percentile(99, 100),
            "p999": self.percentile(999, 1000),
            "max": self.max_value,
            "mean": self.total // self.count,
        }

    def expand(self) -> list[int]:
        """The binned multiset as a sorted list (tests/debugging only —
        this defeats the boundedness the reservoir exists for)."""
        out: list[int] = []
        for value, count in zip(self._values, self._counts):
            out.extend([value] * count)
        return out


def _parity_check(samples: list[int]) -> bool:  # pragma: no cover
    """Debug helper: reservoir vs sort-everything on one sample."""
    res = LatencyReservoir()
    res.extend(samples)
    s = sorted(samples)
    return res.summary() == {
        "count": len(s),
        "p50": nearest_rank(s, 50, 100),
        "p99": nearest_rank(s, 99, 100),
        "p999": nearest_rank(s, 999, 1000),
        "max": s[-1],
        "mean": sum(s) // len(s),
    }
