"""Utility helpers shared across the library: deterministic RNG streams,
summary statistics with confidence intervals, and plain-text rendering of
tables and line charts for benchmark reports."""

from repro.util.reservoir import DEFAULT_CAPACITY, LatencyReservoir
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.stats import (
    Summary,
    confidence_interval,
    geometric_mean,
    normalize_series,
    summarize,
)
from repro.util.fmt import ascii_chart, format_table

__all__ = [
    "DEFAULT_CAPACITY",
    "LatencyReservoir",
    "DeterministicRng",
    "derive_seed",
    "Summary",
    "confidence_interval",
    "geometric_mean",
    "normalize_series",
    "summarize",
    "ascii_chart",
    "format_table",
]
