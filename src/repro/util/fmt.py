"""Plain-text rendering of benchmark results.

The harness prints each reproduced figure as (a) a CSV-like table of the
series the paper plots, and (b) an ASCII line chart so the *shape* — which
line is lower, where they cross — is visible directly in terminal output.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table with a header rule."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(v.rjust(widths[i]) for i, v in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def ascii_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more series against shared x values using text cells.

    Each series gets a distinct glyph; collisions render as ``#``.  The y
    axis is scaled to the min/max across all series (padded 5%), matching how
    the paper's gnuplot panels auto-scale.
    """
    if not xs:
        raise ValueError("no x values")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
    glyphs = "*o+x@%&"
    all_y = [y for ys in series.values() for y in ys]
    lo, hi = min(all_y), max(all_y)
    if hi == lo:
        hi = lo + 1.0
    pad = 0.05 * (hi - lo)
    lo -= pad
    hi += pad
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        g = glyphs[si % len(glyphs)]
        for x, y in zip(xs, ys):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((hi - y) / (hi - lo) * (height - 1))
            cur = grid[row][col]
            grid[row][col] = g if cur in (" ", g) else "#"

    lines: list[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    for r, row in enumerate(grid):
        y_val = hi - (hi - lo) * r / (height - 1)
        label = f"{y_val:8.3f} |"
        lines.append(label + "".join(row))
    axis = " " * 9 + "+" + "-" * width
    lines.append(axis)
    ticks = " " * 10 + f"{x_lo:<10.4g}" + " " * max(0, width - 20) + f"{x_hi:>10.4g}"
    lines.append(ticks)
    if y_label:
        lines.append(f"(y: {y_label})")
    return "\n".join(lines)
