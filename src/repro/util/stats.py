"""Summary statistics used by the benchmark harness.

The paper (§4.1) reports the mean of five benchmark iterations with 90%
confidence intervals; :func:`summarize` reproduces that methodology for any
sample of repetitions.

Critical values come from the embedded Student-t table (two-sided, 90%,
1..40 degrees of freedom), which is **authoritative**: every environment —
with or without scipy, any scipy version — computes the same half-widths,
so benchmark reports and EXPERIMENTS.md numbers are byte-stable.  Beyond
the table the two-sided 90% normal quantile ``z = 1.645`` stands in; at
41 degrees of freedom the exact t value is 1.683, so the half-width is
understated by at most ~2.3% there and the error shrinks as 1/dof.

Set ``REPRO_STATS_SCIPY=1`` to opt in to scipy's exact quantiles (any
confidence level, any dof) — e.g. for offline analysis where exactness
beats cross-environment reproducibility.  The opt-in raises ImportError
when scipy is missing rather than silently falling back.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Sequence

# Two-sided 90% critical values of Student's t for 1..40 degrees of freedom.
_T90 = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
    1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
    1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
    1.696, 1.694, 1.692, 1.691, 1.690, 1.688, 1.687, 1.686, 1.685, 1.684,
]
_Z90 = 1.645  # normal approximation beyond the table (documented above)


def _scipy_opted_in() -> bool:
    return os.environ.get("REPRO_STATS_SCIPY", "").lower() in (
        "1", "true", "yes", "on",
    )


def _t_critical(dof: int, confidence: float) -> float:
    if dof < 1:
        raise ValueError("need at least 2 samples for an interval")
    if _scipy_opted_in():
        # Explicit opt-in only: a missing scipy must fail loudly here, not
        # silently change which quantiles the reports are built from.
        from scipy import stats as _sps

        return float(_sps.t.ppf(0.5 + confidence / 2.0, dof))
    if abs(confidence - 0.90) > 1e-9:
        raise ValueError(
            "embedded table only covers 90% confidence; set "
            "REPRO_STATS_SCIPY=1 to opt in to scipy quantiles"
        )
    return _T90[dof - 1] if dof <= len(_T90) else _Z90


@dataclass(frozen=True)
class Summary:
    """Mean, spread and confidence half-width of a sample."""

    n: int
    mean: float
    stdev: float
    ci_halfwidth: float
    minimum: float
    maximum: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_halfwidth

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_halfwidth

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci_halfwidth:.2g} (n={self.n})"


def summarize(samples: Sequence[float], confidence: float = 0.90) -> Summary:
    """Summarize a sample as the paper does: mean with a t-based CI."""
    xs = [float(x) for x in samples]
    if not xs:
        raise ValueError("empty sample")
    n = len(xs)
    mean = math.fsum(xs) / n
    if n == 1:
        return Summary(1, mean, 0.0, 0.0, xs[0], xs[0])
    var = math.fsum((x - mean) ** 2 for x in xs) / (n - 1)
    stdev = math.sqrt(var)
    half = _t_critical(n - 1, confidence) * stdev / math.sqrt(n)
    return Summary(n, mean, stdev, half, min(xs), max(xs))


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.90
) -> tuple[float, float]:
    """Convenience wrapper returning ``(low, high)`` bounds of the mean."""
    s = summarize(samples, confidence)
    return (s.ci_low, s.ci_high)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("empty sample")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(math.fsum(math.log(v) for v in vals) / len(vals))


def normalize_series(values: Sequence[float], baseline: float) -> list[float]:
    """Divide every value by ``baseline`` (the paper normalizes each panel to
    the unmodified VM's 100%-reads configuration)."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return [float(v) / baseline for v in values]


def nearest_rank(sorted_samples: Sequence[int], numer: int, denom: int) -> int:
    """Nearest-rank percentile of an ascending integer sample.

    ``numer/denom`` is the percentile as a fraction (p99 = 99/100,
    p999 = 999/1000).  Pure integer arithmetic — the latency reports built
    on this must stay byte-identical across hosts, so no float rounding is
    allowed anywhere near them.  Raises on an empty sample.
    """
    n = len(sorted_samples)
    if n == 0:
        raise ValueError("empty sample")
    if not (0 < numer <= denom):
        raise ValueError(f"percentile {numer}/{denom} outside (0, 1]")
    rank = (n * numer + denom - 1) // denom  # ceil(n * p), 1-based
    return sorted_samples[rank - 1]
