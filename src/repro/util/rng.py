"""Deterministic random-number streams.

Every source of randomness in the simulator flows through a
:class:`DeterministicRng` owned by the VM.  Sub-streams (per thread, per
benchmark repetition) are derived with :func:`derive_seed` so that adding a
consumer of randomness never perturbs unrelated streams — runs are exactly
replayable from ``(seed, configuration)``.

The generator is a small, self-contained xorshift64* implementation rather
than :mod:`random`, so the sequence is stable across Python versions and the
state is a single integer that is cheap to snapshot in tests.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_STAR = 0x2545F4914F6CDD1D

# 64-bit FNV-1a parameters, used for seed derivation.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def derive_seed(base: int, *path: object) -> int:
    """Derive a child seed from ``base`` and a path of identifying values.

    The path is typically a tuple like ``("thread", 3)`` or
    ``("rep", rep_index)``.  Derivation is order-sensitive and collision
    resistant enough for simulation purposes (FNV-1a over the repr of each
    path element, folded into the base seed).

    Path elements are restricted to ``str``, ``int`` and ``bytes`` —
    the only types whose ``repr`` is a stable cross-version, cross-process
    contract.  Richer objects (floats, enums, dataclasses) are rejected
    with ``TypeError``: their reprs can differ between Python versions or
    leak process-local state (ids, addresses), which would silently
    desynchronize seed streams between pool workers.
    """
    h = _FNV_OFFSET ^ (base & _MASK64)
    for part in path:
        if not isinstance(part, (str, int, bytes)):
            raise TypeError(
                "derive_seed path elements must be str, int or bytes; "
                f"got {type(part).__name__}: {part!r}"
            )
        for byte in repr(part).encode():
            h ^= byte
            h = (h * _FNV_PRIME) & _MASK64
    # Avoid the xorshift fixed point at zero.
    return h or 0x9E3779B97F4A7C15


#: Default base seed for tool-level sweeps (matches ``VMOptions.seed``).
SWEEP_BASE = 0x5EED


def sweep_seed(namespace: str, scenario: str, index: int, *,
               base: int = SWEEP_BASE) -> int:
    """Derive the VM seed for one cell of a named sweep.

    The repo-wide *seed-namespace convention*: every tool that sweeps a
    scenario over an index range — the fault campaign
    (:mod:`repro.faults.campaign`), the schedule checker's random walks
    (:mod:`repro.check`) — derives its per-cell VM seeds as
    ``derive_seed(base, namespace, scenario, index)``:

    * ``namespace`` names the tool (``"campaign"``, ``"check"``, ...), so
      two tools sweeping the same scenario never share seed streams;
    * ``scenario`` is the scenario's registry name, so reordering or
      extending the scenario set never perturbs existing cells;
    * ``index`` is the cell's ordinal within the sweep (1-based for the
      campaign's ``--seeds`` range, 0-based for schedule walks — each
      tool documents its own origin, the derivation only needs it
      stable).

    The derived values are part of the determinism contract (reports and
    cached cells are keyed by them); ``tests/test_util_rng.py`` pins
    exact values so accidental drift fails loudly.
    """
    return derive_seed(base, namespace, scenario, index)


class DeterministicRng:
    """xorshift64* pseudo-random generator with convenience draws."""

    __slots__ = ("_state", "seed")

    def __init__(self, seed: int = 0x5EED):
        seed = seed & _MASK64
        self.seed = seed or 0x9E3779B97F4A7C15
        self._state = self.seed

    def _next(self) -> int:
        x = self._state
        x ^= (x >> 12) & _MASK64
        x = (x ^ (x << 25)) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x
        return (x * _STAR) & _MASK64

    def next_u64(self) -> int:
        """Return the next raw 64-bit draw."""
        return self._next()

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range ``[lo, hi]``."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        return lo + self._next() % span

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self._next() >> 11) / float(1 << 53)

    def choice(self, seq):
        """Uniformly pick one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self._next() % len(seq)]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self._next() % (i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def exponential(self, mean: float) -> float:
        """Exponentially distributed draw with the given mean (> 0)."""
        import math

        if mean <= 0:
            raise ValueError("mean must be positive")
        u = 1.0 - self.random()  # in (0, 1]
        return -mean * math.log(u)

    def spawn(self, *path: "str | int | bytes") -> "DeterministicRng":
        """Create an independent child stream identified by ``path``."""
        return DeterministicRng(derive_seed(self.seed, *path))

    def getstate(self) -> int:
        return self._state

    def setstate(self, state: int) -> None:
        self._state = state & _MASK64 or 0x9E3779B97F4A7C15

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicRng(seed={self.seed:#x}, state={self._state:#x})"
