"""The fleet worker: a stateless run executor with a local cache lane.

A worker dials the coordinator, introduces itself, and then loops on a
pull protocol — send ``ready``, block until a ``task`` frame arrives,
execute, reply ``result`` (or ``error``), repeat.  The pull shape means
the coordinator never has to model worker capacity: a slow or wedged
worker simply stops asking, and its leases fall to the heartbeat
monitor.

Workers are deliberately stateless between tasks.  All campaign state
lives on the coordinator; the only thing a worker may keep is its local
:class:`~repro.bench.parallel.ResultCache`, which is a pure
content-addressed accelerator — a warm worker cache changes transfer
and wall numbers, never report bytes, because cached results are served
as the exact payload bytes (with their digest) that a cold run would
have produced.

A background thread heartbeats every ``heartbeat_interval`` seconds so
the coordinator can tell "hung mid-task" from "still crunching".
"""

from __future__ import annotations

import logging
import os
import pickle
import socket
import threading
import time
from typing import Optional

from repro.bench.parallel import ResultCache, payload_digest
from repro.fleet.protocol import FrameSocket, connect, resolve_fn

__all__ = ["serve"]

_log = logging.getLogger("repro.fleet.worker")


def _heartbeat_loop(
    frame: FrameSocket, stop: threading.Event, interval: float
) -> None:
    while not stop.wait(interval):
        try:
            frame.send({"type": "heartbeat"})
        except (ConnectionError, OSError):
            return


def serve(
    host: str,
    port: int,
    *,
    name: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    heartbeat_interval: float = 2.0,
    dial_timeout: float = 30.0,
) -> int:
    """Run the worker loop until the coordinator says ``shutdown``.

    Dialing retries for up to ``dial_timeout`` seconds so workers can be
    started before (or while) the coordinator binds.  Returns the number
    of tasks served (cache hits included).
    """
    deadline = time.monotonic() + dial_timeout
    while True:
        try:
            frame = connect(host, port)
            break
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.5)
    worker_name = name or f"{socket.gethostname()}-{os.getpid()}"
    frame.send({"type": "hello", "worker": worker_name, "pid": os.getpid()})
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(frame, stop, heartbeat_interval),
        name="fleet-heartbeat",
        daemon=True,
    )
    beat.start()
    fns: dict[str, object] = {}
    served = 0
    try:
        frame.send({"type": "ready"})
        while True:
            msg, payload = frame.recv()
            if msg is None or msg.get("type") == "shutdown":
                break
            if msg.get("type") != "task":
                continue
            task = msg["task"]
            key = msg.get("key")
            t0 = time.perf_counter()
            cached = False
            entry = cache.get_bytes(key) if cache and key else None
            if entry is not None:
                out_payload, digest = entry
                cached = True
            else:
                fn = fns.get(msg["fn"])
                if fn is None:
                    fn = fns[msg["fn"]] = resolve_fn(msg["fn"])
                try:
                    result = fn(pickle.loads(payload))
                except Exception as exc:
                    _log.warning(
                        "task %d (%s) failed: %s", task, msg["fn"], exc
                    )
                    frame.send({
                        "type": "error",
                        "task": task,
                        "error": f"{type(exc).__name__}: {exc}",
                        "wall": time.perf_counter() - t0,
                    })
                    frame.send({"type": "ready"})
                    continue
                out_payload = pickle.dumps(
                    result, protocol=pickle.HIGHEST_PROTOCOL
                )
                digest = payload_digest(out_payload)
                if cache and key:
                    cache.put_bytes(key, out_payload, digest)
            frame.send(
                {
                    "type": "result",
                    "task": task,
                    "key": key,
                    "digest": digest,
                    "cached": cached,
                    "wall": time.perf_counter() - t0,
                },
                out_payload,
            )
            served += 1
            frame.send({"type": "ready"})
    except (ConnectionError, OSError) as exc:
        _log.warning("worker %s lost the coordinator: %s", worker_name, exc)
    finally:
        stop.set()
        frame.close()
    return served
