"""Fleet scaling measurement: the evidence artifact ``BENCH_fleet.json``.

Measures wall-clock of the fig5–8 bench matrix and a DPOR checker
campaign through :class:`~repro.fleet.engine.FleetEngine` at several
loopback worker counts, caches disabled everywhere so every number is a
real execution.  The committed artifact records *measured* numbers for
the host it ran on — including ``host_cpus``, because loopback workers
can only speed a campaign up when the host has cores to run them on —
plus an explicitly-labelled analytical projection:

    ``projected_wall(n) = run_wall(1) / n + coordinator_overhead``

where ``coordinator_overhead = host_wall(1) - run_wall(1)`` is the
measured per-campaign cost of dispatch, pickling, transfer and reduce
(serial on the coordinator, so it does not shrink with n).  On a
single-core host the measured speedup is ~1.0 by physics; the CI
``fleet-smoke`` job regenerates this artifact on a multi-core runner
where measured and projected numbers can be compared directly.

Report schema (``repro.bench.fleet-perf/1``)::

    {
      "schema": "repro.bench.fleet-perf/1",
      "host_cpus": 4,
      "panels": ["5a", ...], "repetitions": 2, "seed": ...,
      "scale": 1.0,
      "bench": {
        "workers=1": {"runs": 144, "host_wall_s": ..., "run_wall_s": ...,
                       "bytes_sent": ..., "bytes_received": ...,
                       "speedup_vs_1": 1.0}, ...
      },
      "dpor": {"scenario": "handoff-trio", "workers=1": {...}, ...},
      "measured": {"bench_speedup_4_vs_1": ..., "dpor_speedup_4_vs_1": ...},
      "projection": {"model": ..., "coordinator_overhead_s": ...,
                     "projected_bench_wall_4_s": ...,
                     "projected_bench_speedup_4_vs_1": ...}
    }
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional, Sequence

from repro.bench.figures import WRITE_RATIOS, bench_scale, run_panel
from repro.bench.hostperf import DEFAULT_PANELS
from repro.bench.parallel import EngineStats
from repro.fleet.engine import FleetEngine

SCHEMA = "repro.bench.fleet-perf/1"
DEFAULT_OUTPUT = "BENCH_fleet.json"
DPOR_SCENARIO = "handoff-trio"

#: keep worker-local caches off so scaling numbers are real executions
_NO_CACHE_ENV = {"REPRO_BENCH_CACHE": "0"}


def _parse_panels(spec: Optional[str]):
    if not spec:
        return DEFAULT_PANELS
    from repro.bench.__main__ import _parse_panel

    return [_parse_panel(p) for p in spec.split(",") if p.strip()]


def _lane_totals(stats: EngineStats) -> dict:
    sent = sum(rec["bytes_sent"] for rec in stats.workers.values())
    received = sum(
        rec["bytes_received"] for rec in stats.workers.values()
    )
    return {
        "runs": stats.runs,
        "host_wall_s": round(stats.host_wall, 3),
        "run_wall_s": round(stats.run_wall, 3),
        "bytes_sent": sent,
        "bytes_received": received,
        "reassigned": stats.reassigned,
    }


def _measure_bench(
    workers: int, panels, repetitions: int, seed: int, progress
) -> dict:
    engine = FleetEngine.local(workers, cache=None,
                               worker_env=_NO_CACHE_ENV)
    try:
        for panel in panels:
            run_panel(
                panel, repetitions=repetitions,
                write_ratios=WRITE_RATIOS, seed=seed, engine=engine,
            )
            if progress is not None:
                progress(
                    f"[fleet-perf] bench workers={workers}: "
                    f"{panel.figure}{panel.panel} done "
                    f"({engine.last_stats.host_wall:.1f}s)"
                )
        return _lane_totals(engine.stats)
    finally:
        engine.close()


def _measure_dpor(workers: int, progress) -> dict:
    from repro.check.dpor import explore_dpor

    engine = FleetEngine.local(workers, cache=None,
                               worker_env=_NO_CACHE_ENV)
    try:
        t0 = time.perf_counter()
        report = explore_dpor(DPOR_SCENARIO, engine=engine)
        elapsed = time.perf_counter() - t0
        if progress is not None:
            progress(
                f"[fleet-perf] dpor workers={workers}: "
                f"{report.schedules} schedules in {elapsed:.1f}s"
            )
        cell = _lane_totals(engine.stats)
        cell["campaign_wall_s"] = round(elapsed, 3)
        cell["schedules"] = report.schedules
        return cell
    finally:
        engine.close()


def measure_fleet_perf(
    *,
    worker_counts: Sequence[int] = (1, 2, 4),
    repetitions: int = 2,
    seed: int = 0x5EED,
    panels: Optional[str] = None,
    include_dpor: bool = True,
    progress=None,
) -> dict:
    """Sweep the fleet over ``worker_counts`` and assemble the report."""
    panel_list = _parse_panels(panels)
    bench: dict[str, dict] = {}
    dpor: dict[str, object] = {"scenario": DPOR_SCENARIO}
    for n in worker_counts:
        bench[f"workers={n}"] = _measure_bench(
            n, panel_list, repetitions, seed, progress
        )
        if include_dpor:
            dpor[f"workers={n}"] = _measure_dpor(n, progress)

    report = {
        "schema": SCHEMA,
        "host_cpus": os.cpu_count() or 1,
        "panels": [f"{p.figure}{p.panel}" for p in panel_list],
        "repetitions": repetitions,
        "seed": seed,
        "scale": bench_scale(),
        "worker_counts": list(worker_counts),
        "bench": bench,
        "dpor": dpor if include_dpor else None,
    }

    base = bench.get(f"workers={worker_counts[0]}")
    measured: dict[str, float] = {}
    if base is not None:
        for n in worker_counts[1:]:
            cell = bench[f"workers={n}"]
            if cell["host_wall_s"]:
                measured[f"bench_speedup_{n}_vs_{worker_counts[0]}"] = (
                    round(base["host_wall_s"] / cell["host_wall_s"], 2)
                )
        if include_dpor:
            dbase = dpor.get(f"workers={worker_counts[0]}")
            for n in worker_counts[1:]:
                dcell = dpor.get(f"workers={n}")
                if dbase and dcell and dcell["campaign_wall_s"]:
                    measured[
                        f"dpor_speedup_{n}_vs_{worker_counts[0]}"
                    ] = round(
                        dbase["campaign_wall_s"]
                        / dcell["campaign_wall_s"], 2,
                    )
    report["measured"] = measured

    if base is not None and base["run_wall_s"]:
        overhead = max(0.0, base["host_wall_s"] - base["run_wall_s"])
        projection = {
            "model": "projected_wall(n) = run_wall(1)/n + "
                     "coordinator_overhead; overhead = host_wall(1) - "
                     "run_wall(1), measured, serial on the coordinator",
            "coordinator_overhead_s": round(overhead, 3),
        }
        for n in worker_counts[1:]:
            projected = base["run_wall_s"] / n + overhead
            projection[f"projected_bench_wall_{n}_s"] = round(projected, 3)
            projection[f"projected_bench_speedup_{n}_vs_1"] = round(
                base["host_wall_s"] / projected, 2
            )
        projection["note"] = (
            "projection assumes >= n idle cores; on a host with "
            f"{os.cpu_count() or 1} cpu(s) the measured speedups above "
            "are the ground truth for that host"
        )
        report["projection"] = projection
    return report


def write_fleet_perf(report: dict, path: str = DEFAULT_OUTPUT) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_fleet_perf(path: str = DEFAULT_OUTPUT) -> Optional[dict]:
    """The committed artifact, or None when absent/unreadable/foreign."""
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(report, dict) or report.get("schema") != SCHEMA:
        return None
    return report
