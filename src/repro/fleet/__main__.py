"""Fleet CLI: ``python -m repro.fleet``.

Subcommands::

    worker --connect HOST:PORT [--name NAME] [--no-cache]
        Serve tasks for a coordinator until it says shutdown.  This is
        what ``FleetEngine.local`` spawns and what a multi-host run
        starts on each worker box.

    perf [--workers 1,2,4] [--output BENCH_fleet.json] [--reps N]
        Measure fleet scaling of the fig5–8 bench matrix and a DPOR
        campaign across loopback worker counts and write the
        ``repro.bench.fleet-perf/1`` report (see repro.fleet.perf).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fleet.cli import parse_hostport


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="distributed run fleet: workers and scaling perf",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="serve tasks for a coordinator")
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address to dial",
    )
    worker.add_argument(
        "--name", default=None,
        help="worker name in coordinator stats (default host-pid)",
    )
    worker.add_argument(
        "--no-cache", action="store_true",
        help="disable the worker-local result cache",
    )

    perf = sub.add_parser(
        "perf", help="measure fleet scaling (BENCH_fleet.json)"
    )
    perf.add_argument(
        "--workers", default="1,2,4", metavar="N,N,...",
        help="loopback worker counts to sweep (default 1,2,4)",
    )
    perf.add_argument(
        "--output", default="BENCH_fleet.json", metavar="PATH",
        help="report path (default BENCH_fleet.json)",
    )
    perf.add_argument(
        "--reps", type=int, default=2,
        help="bench panel repetitions (default 2)",
    )
    perf.add_argument(
        "--panels", default=None, metavar="5a,6b,...",
        help="bench panels to run (default: the full fig5-8 suite)",
    )
    perf.add_argument(
        "--skip-dpor", action="store_true",
        help="skip the DPOR campaign section",
    )

    args = parser.parse_args(argv)

    if args.command == "worker":
        from repro.bench.parallel import _env_cache
        from repro.fleet.worker import serve

        host, port = parse_hostport(args.connect)
        cache = None if args.no_cache else _env_cache()
        served = serve(host, port, name=args.name, cache=cache)
        print(f"fleet worker served {served} task(s)", file=sys.stderr)
        return 0

    if args.command == "perf":
        from repro.fleet.perf import measure_fleet_perf, write_fleet_perf

        counts = [
            int(n) for n in args.workers.split(",") if n.strip()
        ]
        report = measure_fleet_perf(
            worker_counts=counts,
            repetitions=args.reps,
            panels=args.panels,
            include_dpor=not args.skip_dpor,
            progress=lambda line: print(line, file=sys.stderr),
        )
        write_fleet_perf(report, args.output)
        print(json.dumps(report, indent=2))
        print(f"fleet-perf report written to {args.output}",
              file=sys.stderr)
        return 0

    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":
    raise SystemExit(main())
