"""Wire protocol of the run fleet: length-prefixed JSON frames over TCP.

One message is::

    +--------+------------------+------------------+
    | 4-byte | header_len bytes | plen bytes       |
    | BE len | UTF-8 JSON       | raw payload      |
    +--------+------------------+------------------+

The JSON header always carries ``type`` and, when a binary payload
follows, its byte length under ``plen``.  Payloads are pickled task
items or run results and travel with a SHA-256 integrity digest in the
header — the receiver re-hashes before trusting a byte of it.  Keeping
the header JSON (not pickle) means liveness traffic — hello, ready,
heartbeat, shutdown — never touches the unpickler, and a foreign or
truncated frame dies in :func:`recv_msg` with a clear error instead of
deep inside a deserializer.

Stdlib only, blocking sockets, one in-flight request per connection:
the coordinator/worker conversation is strictly request/response plus
asynchronous heartbeats, so framing is the only concurrency concern and
senders serialize on a per-socket lock (:class:`FrameSocket`).

Message vocabulary (direction, header fields, payload):

========== ======== ============================================= =========
type       from     header fields                                 payload
========== ======== ============================================= =========
hello      worker   worker, pid                                   --
ready      worker   --                                            --
heartbeat  worker   --                                            --
result     worker   task, key, digest, cached, wall               pickle
error      worker   task, error, wall                             --
task       coord    task, fn ("module:qualname"), key             pickle
shutdown   coord    --                                            --
========== ======== ============================================= =========
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Optional

__all__ = [
    "FrameSocket",
    "ProtocolError",
    "connect",
    "fn_reference",
    "resolve_fn",
]

#: sanity bounds — a frame beyond these is a protocol violation, not data
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 1 << 31

_LEN = struct.Struct(">I")


class ProtocolError(ConnectionError):
    """A malformed frame or a violated protocol invariant."""


def fn_reference(fn: Any) -> str:
    """The importable ``module:qualname`` reference of a task function.

    Fleet tasks cross host boundaries, so only module-level callables
    can be shipped — the same restriction the process pool already
    imposes via pickling, made explicit here.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise ValueError(
            f"fleet tasks need a module-level callable, got {fn!r}"
        )
    return f"{module}:{qualname}"


def resolve_fn(ref: str) -> Any:
    """Import the callable behind a :func:`fn_reference` string."""
    import importlib

    module, _, qualname = ref.partition(":")
    if not module or not qualname:
        raise ProtocolError(f"malformed function reference {ref!r}")
    obj: Any = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ProtocolError(f"function reference {ref!r} is not callable")
    return obj


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class FrameSocket:
    """A socket speaking the fleet frame protocol.

    ``send`` is thread-safe (worker heartbeat threads share the socket
    with the main loop); ``recv`` must stay single-threaded per socket,
    which both ends honour by construction.  Byte counters accumulate
    so engines can report transfer volume per connection.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._send_lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, msg: dict, payload: bytes = b"") -> int:
        """Send one message; returns the total bytes written."""
        if payload:
            msg = dict(msg, plen=len(payload))
        header = json.dumps(msg, separators=(",", ":")).encode()
        if len(header) > MAX_HEADER_BYTES:
            raise ProtocolError("header exceeds protocol bound")
        frame = _LEN.pack(len(header)) + header + payload
        with self._send_lock:
            self.sock.sendall(frame)
            self.bytes_sent += len(frame)
        return len(frame)

    def recv(self) -> tuple[Optional[dict], bytes]:
        """Receive one message; ``(None, b"")`` on clean EOF."""
        try:
            prefix = _recv_exact(self.sock, _LEN.size)
        except ConnectionError:
            return None, b""
        (header_len,) = _LEN.unpack(prefix)
        if not 0 < header_len <= MAX_HEADER_BYTES:
            raise ProtocolError(f"implausible header length {header_len}")
        try:
            msg = json.loads(_recv_exact(self.sock, header_len))
        except ValueError as exc:
            raise ProtocolError(f"undecodable frame header: {exc}") from exc
        if not isinstance(msg, dict) or "type" not in msg:
            raise ProtocolError(f"frame header is not a message: {msg!r}")
        plen = msg.get("plen", 0)
        if not isinstance(plen, int) or not 0 <= plen <= MAX_PAYLOAD_BYTES:
            raise ProtocolError(f"implausible payload length {plen!r}")
        payload = _recv_exact(self.sock, plen) if plen else b""
        self.bytes_received += _LEN.size + header_len + plen
        return msg, payload

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def connect(host: str, port: int, timeout: float = 10.0) -> FrameSocket:
    """Dial a coordinator and return the framed connection."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return FrameSocket(sock)
