"""The fleet coordinator: shard a run matrix across TCP workers.

The coordinator owns the only mutable campaign state — the task queue,
the per-task leases and the shared artifact store — so determinism is
structural: workers are stateless executors of pure runs, results come
back addressed by matrix index, and the reduce happens in input order
exactly like the local engine.  Scheduling, worker death, retries and
cache topology can therefore never reach the report bytes.

Robustness model (the part that makes fleet speedups usable):

* **Leases.**  A dispatched task is leased to one worker.  The lease is
  released by a ``result``/``error`` frame or broken by worker death —
  connection EOF (fast path: a killed process closes its socket) or
  heartbeat silence beyond ``heartbeat_timeout`` (hung host).  Broken
  leases are re-queued at the front, so a killed worker mid-campaign
  loses no cell; the ``have[i]`` guard makes late duplicate deliveries
  harmless, so it duplicates none either.
* **Bounded retry.**  Each dispatch counts as an attempt; a task whose
  worker *reported* an execution error is re-dispatched after an
  exponential backoff delay until ``max_attempts``, then the whole map
  fails loudly with the worker's error.
* **Integrity.**  Every result payload travels with its SHA-256 digest
  and is re-hashed on receipt; a mismatch is treated like a transport
  fault (logged, counted, task re-queued) and the verified payload is
  stored into the shared :class:`~repro.bench.parallel.ResultCache`
  byte-for-byte, so a later cache read verifies the same digest.
* **Graceful drain.**  ``shutdown()`` lets parked workers exit on a
  ``shutdown`` frame and in-flight work complete; it never aborts a
  worker mid-run.
"""

from __future__ import annotations

import logging
import pickle
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.bench.parallel import (
    EngineStats,
    ResultCache,
    guest_instructions,
    payload_digest,
    trace_health,
)
from repro.fleet.protocol import FrameSocket, fn_reference

__all__ = ["Coordinator", "FleetError"]

_log = logging.getLogger("repro.fleet.coordinator")


class FleetError(RuntimeError):
    """A campaign failed permanently (task error past the retry budget)."""


@dataclass
class _Worker:
    """Coordinator-side view of one connected worker."""

    name: str
    frame: FrameSocket
    pid: int = 0
    last_seen: float = field(default_factory=time.monotonic)
    #: task indices currently leased to this worker
    leased: set[int] = field(default_factory=set)
    #: frame.bytes_received watermark for incremental stats crediting
    recv_mark: int = 0
    alive: bool = True


class _Batch:
    """One in-flight map() call."""

    def __init__(self, fn_ref: str, items: Sequence[Any],
                 keys: list[Optional[str]], stats: EngineStats):
        self.fn_ref = fn_ref
        self.items = items
        self.keys = keys
        self.stats = stats
        self.results: list[Any] = [None] * len(items)
        self.have = [False] * len(items)
        self.executed = [False] * len(items)
        self.pending: deque[int] = deque()
        #: (ready_time, task) pairs awaiting their retry backoff
        self.delayed: list[tuple[float, int]] = []
        self.attempts = [0] * len(items)
        self.leases: dict[int, str] = {}
        self.done = 0
        self.failure: Optional[BaseException] = None

    def dispatchable(self, now: float) -> bool:
        self.promote(now)
        return bool(self.pending)

    def promote(self, now: float) -> None:
        """Move retry-delayed tasks whose backoff has elapsed back into
        the pending queue."""
        if not self.delayed:
            return
        due = [t for ready, t in self.delayed if ready <= now]
        if due:
            self.delayed = [
                (ready, t) for ready, t in self.delayed if ready > now
            ]
            self.pending.extend(due)

    def complete(self) -> bool:
        return self.done == len(self.items) or self.failure is not None


class Coordinator:
    """Work-queue coordinator for one or many :mod:`repro.fleet` workers.

    Thread model: one acceptor thread, one thread per worker connection,
    one lease monitor.  ``map()`` runs on the caller's thread and blocks
    until the batch completes; it is not reentrant (engines issue one
    map at a time, exactly like the local engine).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache: Optional[ResultCache] = None,
        heartbeat_timeout: float = 15.0,
        max_attempts: int = 4,
        retry_backoff: float = 0.25,
    ):
        self.cache = cache
        self.heartbeat_timeout = heartbeat_timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._workers: dict[str, _Worker] = {}
        self._batch: Optional[_Batch] = None
        self._shutdown = False
        self._listener = socket.create_server((host, port))
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor_thread.start()

    # ------------------------------------------------------------ topology
    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()[:2]

    def worker_names(self) -> list[str]:
        with self._lock:
            return sorted(self._workers)

    def leases(self) -> dict[int, str]:
        """Snapshot of task -> worker leases (introspection/tests)."""
        with self._lock:
            return dict(self._batch.leases) if self._batch else {}

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> None:
        """Block until ``count`` workers said hello (or raise)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self._workers) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"{len(self._workers)}/{count} fleet workers "
                        f"connected within {timeout:.0f}s"
                    )
                self._cond.wait(min(remaining, 0.5))

    # ----------------------------------------------------------- accepting
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(FrameSocket(sock),),
                name="fleet-conn",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _register(self, frame: FrameSocket, hello: dict) -> _Worker:
        base = str(hello.get("worker") or "worker")
        with self._cond:
            name = base
            serial = 1
            while name in self._workers:
                serial += 1
                name = f"{base}#{serial}"
            worker = _Worker(
                name=name, frame=frame, pid=int(hello.get("pid") or 0)
            )
            self._workers[name] = worker
            self._cond.notify_all()
        _log.info("fleet worker %s connected (pid %d)", name, worker.pid)
        return worker

    def _serve_connection(self, frame: FrameSocket) -> None:
        try:
            hello, _ = frame.recv()
        except (ConnectionError, OSError):
            frame.close()
            return
        if hello is None or hello.get("type") != "hello":
            frame.close()
            return
        worker = self._register(frame, hello)
        try:
            while True:
                msg, payload = frame.recv()
                if msg is None:
                    break
                kind = msg.get("type")
                if kind == "heartbeat":
                    worker.last_seen = time.monotonic()
                elif kind == "ready":
                    if not self._handle_ready(worker):
                        break
                elif kind == "result":
                    worker.last_seen = time.monotonic()
                    self._handle_result(worker, msg, payload)
                elif kind == "error":
                    worker.last_seen = time.monotonic()
                    self._handle_error(worker, msg)
        except (ConnectionError, OSError) as exc:
            _log.warning("fleet worker %s connection lost: %s",
                         worker.name, exc)
        finally:
            self._drop_worker(worker)
            frame.close()

    # ---------------------------------------------------------- dispatching
    def _handle_ready(self, worker: _Worker) -> bool:
        """Park until a task is dispatchable, then lease + send it.

        Returns False when the worker should shut down instead.
        """
        with self._cond:
            while True:
                if self._shutdown or not worker.alive:
                    break
                batch = self._batch
                if batch is not None and batch.failure is None \
                        and batch.dispatchable(time.monotonic()):
                    task = batch.pending.popleft()
                    batch.attempts[task] += 1
                    batch.leases[task] = worker.name
                    worker.leased.add(task)
                    worker.last_seen = time.monotonic()
                    item = batch.items[task]
                    msg = {
                        "type": "task",
                        "task": task,
                        "fn": batch.fn_ref,
                        "key": batch.keys[task],
                    }
                    stats = batch.stats
                    break
                self._cond.wait(0.25)
            else:  # pragma: no cover - unreachable
                pass
            if self._shutdown or not worker.alive:
                try:
                    worker.frame.send({"type": "shutdown"})
                except (ConnectionError, OSError):
                    pass
                return False
        payload = pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            sent = worker.frame.send(msg, payload)
        except (ConnectionError, OSError) as exc:
            # the parked worker died while we held its lease: re-queue
            _log.warning(
                "fleet worker %s died taking task %d (%s); re-queueing",
                worker.name, task, exc,
            )
            with self._cond:
                self._release_lease(worker, task, requeue=True)
                worker.alive = False
                self._cond.notify_all()
            return False
        with self._cond:
            stats.credit(worker.name, bytes_sent=sent)
        return True

    def _release_lease(
        self, worker: _Worker, task: int, *, requeue: bool
    ) -> None:
        """Caller must hold the lock."""
        worker.leased.discard(task)
        batch = self._batch
        if batch is None:
            return
        if batch.leases.get(task) == worker.name:
            del batch.leases[task]
        if requeue and not batch.have[task]:
            batch.pending.appendleft(task)

    def _handle_result(
        self, worker: _Worker, msg: dict, payload: bytes
    ) -> None:
        with self._cond:
            batch = self._batch
            task = msg.get("task")
            if batch is None or not isinstance(task, int) \
                    or not 0 <= task < len(batch.items):
                return
            self._release_lease(worker, task, requeue=False)
            stats = batch.stats
            received = worker.frame.bytes_received - worker.recv_mark
            worker.recv_mark = worker.frame.bytes_received
            stats.credit(worker.name, bytes_received=received)
            if payload_digest(payload) != msg.get("digest"):
                stats.digest_failures += 1
                _log.warning(
                    "result for task %d from worker %s failed its "
                    "integrity digest; re-queueing the task",
                    task, worker.name,
                )
                if batch.attempts[task] >= self.max_attempts:
                    batch.failure = FleetError(
                        f"task {task} failed integrity verification "
                        f"{batch.attempts[task]} times"
                    )
                elif not batch.have[task]:
                    batch.pending.appendleft(task)
                self._cond.notify_all()
                return
            if batch.have[task]:
                # late duplicate from a lease we already re-assigned:
                # results are pure functions of the spec, so dropping it
                # is sound — and required, to never double-count a cell
                self._cond.notify_all()
                return
            batch.results[task] = pickle.loads(payload)
            batch.have[task] = True
            batch.done += 1
            cached = bool(msg.get("cached"))
            wall = float(msg.get("wall") or 0.0)
            if cached:
                stats.cache_hits += 1
                stats.credit(worker.name, cache_hits=1)
            else:
                batch.executed[task] = True
                stats.run_walls[task] = wall
                stats.run_wall += wall
                dropped, sink_errors = trace_health(batch.results[task])
                stats.trace_dropped += dropped
                stats.trace_sink_errors += sink_errors
                stats.credit(
                    worker.name, tasks=1, run_wall=wall,
                    trace_dropped=dropped,
                    trace_sink_errors=sink_errors,
                )
                if dropped or sink_errors:
                    # observability degraded on a remote run: say so on
                    # the coordinator's stderr, not just in the lanes
                    _log.warning(
                        "worker %s: task %d ran with degraded tracing "
                        "(%d event(s) dropped, %d sink(s) detached)",
                        worker.name, task, dropped, sink_errors,
                    )
            if self.cache is not None and batch.keys[task] is not None:
                self.cache.put_bytes(
                    batch.keys[task], payload, msg.get("digest")
                )
            self._cond.notify_all()

    def _handle_error(self, worker: _Worker, msg: dict) -> None:
        with self._cond:
            batch = self._batch
            task = msg.get("task")
            if batch is None or not isinstance(task, int) \
                    or not 0 <= task < len(batch.items):
                return
            self._release_lease(worker, task, requeue=False)
            error = str(msg.get("error") or "unknown worker error")
            _log.warning(
                "task %d failed on worker %s (attempt %d/%d): %s",
                task, worker.name, batch.attempts[task],
                self.max_attempts, error,
            )
            if batch.have[task]:
                pass  # another worker already delivered this cell
            elif batch.attempts[task] >= self.max_attempts:
                batch.failure = FleetError(
                    f"task {task} failed after {batch.attempts[task]} "
                    f"attempts; last error: {error}"
                )
            else:
                delay = self.retry_backoff * (
                    2 ** (batch.attempts[task] - 1)
                )
                batch.delayed.append((time.monotonic() + delay, task))
            self._cond.notify_all()

    def _drop_worker(self, worker: _Worker) -> None:
        with self._cond:
            worker.alive = False
            if self._workers.get(worker.name) is worker:
                del self._workers[worker.name]
            batch = self._batch
            if batch is not None and worker.leased:
                for task in sorted(worker.leased, reverse=True):
                    if not batch.have[task]:
                        batch.pending.appendleft(task)
                        batch.stats.reassigned += 1
                        _log.warning(
                            "re-queueing task %d leased by dead worker %s",
                            task, worker.name,
                        )
                    batch.leases.pop(task, None)
                worker.leased.clear()
            self._cond.notify_all()

    def _monitor_loop(self) -> None:
        """Break leases of workers that went silent mid-task."""
        while not self._shutdown:
            time.sleep(0.5)
            stale: list[_Worker] = []
            now = time.monotonic()
            with self._cond:
                if self._batch is not None:
                    self._batch.promote(now)
                    if self._batch.dispatchable(now):
                        self._cond.notify_all()
                for worker in self._workers.values():
                    if worker.leased and worker.alive and (
                        now - worker.last_seen > self.heartbeat_timeout
                    ):
                        stale.append(worker)
            for worker in stale:
                _log.warning(
                    "fleet worker %s silent for %.0fs with %d leased "
                    "task(s); declaring it dead",
                    worker.name, self.heartbeat_timeout,
                    len(worker.leased),
                )
                # closing the socket makes its connection thread exit,
                # which re-queues the leases via _drop_worker
                worker.frame.close()

    # ------------------------------------------------------------- mapping
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        key_fn: Optional[Callable[[Any], str]] = None,
        timeout: Optional[float] = None,
    ) -> tuple[list[Any], EngineStats]:
        """Run ``fn`` over ``items`` on the fleet; input-order results.

        Identical contract to :meth:`repro.bench.parallel.RunEngine.map`
        — including the coordinator-side cache short-circuit — plus the
        lease/retry machinery documented on the class.
        """
        t0 = time.perf_counter()
        fn_ref = fn_reference(fn)
        stats = EngineStats(jobs=max(1, len(self._workers)))
        stats.runs = len(items)
        stats.run_walls = [0.0] * len(items)
        stats.run_instructions = [0] * len(items)

        keys: list[Optional[str]] = [None] * len(items)
        batch = _Batch(fn_ref, items, keys, stats)
        pending: list[int] = []
        for i, item in enumerate(items):
            if key_fn is not None:
                # keys travel with tasks even without a coordinator-side
                # cache: workers use them for their local store
                keys[i] = key_fn(item)
            if self.cache is not None and keys[i] is not None:
                hit = self.cache.get(keys[i])
                if hit is not None:
                    batch.results[i] = hit
                    batch.have[i] = True
                    batch.done += 1
                    stats.cache_hits += 1
                    stats.credit("coordinator", cache_hits=1)
                    continue
            pending.append(i)
        batch.pending.extend(pending)

        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            if self._batch is not None:
                raise RuntimeError("coordinator map() is not reentrant")
            if self._shutdown:
                raise RuntimeError("coordinator is shut down")
            self._batch = batch
            self._cond.notify_all()
            try:
                while not batch.complete():
                    if deadline is not None \
                            and time.monotonic() > deadline:
                        raise TimeoutError(
                            f"fleet map timed out with "
                            f"{batch.done}/{len(items)} results"
                        )
                    self._cond.wait(0.5)
            finally:
                self._batch = None
        if batch.failure is not None:
            raise batch.failure

        stats.executed = sum(batch.executed)
        for i, ran in enumerate(batch.executed):
            if ran:
                gi = guest_instructions(batch.results[i])
                stats.run_instructions[i] = gi
                stats.guest_instructions += gi
        stats.host_wall = time.perf_counter() - t0
        return batch.results, stats

    # ------------------------------------------------------------ shutdown
    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful drain: workers get a ``shutdown`` frame, in-flight
        connection threads are joined, the listener closes."""
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            self._cond.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        with self._lock:
            leftovers = list(self._workers.values())
        for worker in leftovers:
            worker.frame.close()
