"""Shared ``--fleet`` CLI plumbing for bench / check / server / fleet.

Every campaign CLI accepts the same three-mode flag::

    --fleet local:N       coordinator + N loopback worker subprocesses
    --fleet coordinator   bind --fleet-bind, wait for --fleet-workers
                          external workers, then run the campaign
    --fleet worker        connect to --fleet-connect and serve tasks
                          (the campaign arguments are ignored)

so a multi-host run is "start the coordinator command on one box, start
the same command with ``--fleet worker --fleet-connect host:port`` on
the others".  Campaign stdout stays byte-identical to the serial run in
every mode — the fleet only changes where the pure runs execute.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.bench.parallel import ResultCache, RunEngine

__all__ = [
    "add_fleet_args",
    "parse_hostport",
    "resolve_fleet_engine",
    "run_fleet_worker",
]


def add_fleet_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("fleet")
    group.add_argument(
        "--fleet", default=None, metavar="MODE",
        help="distributed execution: 'local:N' (N loopback worker "
             "subprocesses), 'coordinator' (bind --fleet-bind, wait for "
             "--fleet-workers external workers), or 'worker' (serve "
             "--fleet-connect; campaign arguments are ignored)",
    )
    group.add_argument(
        "--fleet-bind", default="0.0.0.0:0", metavar="HOST:PORT",
        help="coordinator listen address (default 0.0.0.0:0 — an "
             "ephemeral port, printed on stderr)",
    )
    group.add_argument(
        "--fleet-connect", default=None, metavar="HOST:PORT",
        help="coordinator address a worker should dial",
    )
    group.add_argument(
        "--fleet-workers", type=int, default=2, metavar="N",
        help="workers a coordinator waits for before starting "
             "(default 2)",
    )


def parse_hostport(text: str) -> tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def run_fleet_worker(args: argparse.Namespace) -> int:
    """The ``--fleet worker`` path, shared by every campaign CLI."""
    from repro.bench.parallel import _env_cache
    from repro.fleet.worker import serve

    if not args.fleet_connect:
        print(
            "--fleet worker needs --fleet-connect HOST:PORT",
            file=sys.stderr,
        )
        return 2
    host, port = parse_hostport(args.fleet_connect)
    served = serve(host, port, cache=_env_cache())
    print(f"fleet worker served {served} task(s)", file=sys.stderr)
    return 0


def resolve_fleet_engine(
    args: argparse.Namespace, cache: Optional[ResultCache]
) -> Optional[RunEngine]:
    """The engine for ``--fleet local:N`` / ``--fleet coordinator``.

    Returns None when no fleet mode is requested (caller keeps its local
    engine).  ``--fleet worker`` is not an engine — route it through
    :func:`run_fleet_worker` before building any engine.
    """
    mode = args.fleet
    if mode is None:
        return None
    from repro.fleet.engine import FleetEngine

    if mode.startswith("local:"):
        workers = int(mode.split(":", 1)[1])
        return FleetEngine.local(workers, cache=cache)
    if mode == "coordinator":
        host, port = parse_hostport(args.fleet_bind)
        return FleetEngine.coordinate(
            host, port, workers=max(1, args.fleet_workers), cache=cache
        )
    raise ValueError(
        f"unknown --fleet mode {mode!r} "
        "(expected local:N, coordinator or worker)"
    )
