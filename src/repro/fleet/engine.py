"""FleetEngine: the distributed drop-in behind the RunEngine seam.

Every heavy path in the repo — the fig5–8 bench matrix, checker
schedule campaigns, server soak cells, observability captures and the
fault campaign — already fans out through
:meth:`repro.bench.parallel.RunEngine.map`.  This class implements the
same contract (``map``/``jobs``/``cache``/``stats``/``last_stats``/
``close``) on top of a :class:`~repro.fleet.coordinator.Coordinator`,
so swapping ``RunEngine.from_env()`` for a fleet engine changes *where*
runs execute and nothing about what the reports say.

Two construction shapes:

* :meth:`FleetEngine.local` — spawn ``n`` worker subprocesses against a
  loopback coordinator (the ``--fleet local:N`` CLI mode and the test
  harness shape).  The engine owns the processes and reaps them on
  :meth:`close`.
* :meth:`FleetEngine.coordinate` — bind an address and wait for
  externally started workers (``--fleet coordinator`` + ``--fleet
  worker`` on other hosts).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from typing import Any, Callable, Optional, Sequence

from repro.bench.parallel import EngineStats, ResultCache, RunEngine
from repro.fleet.coordinator import Coordinator

__all__ = ["FleetEngine"]


def _worker_pythonpath() -> str:
    """PYTHONPATH that lets a bare subprocess import ``repro``."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    existing = os.environ.get("PYTHONPATH", "")
    if not existing:
        return src_root
    if src_root in existing.split(os.pathsep):
        return existing
    return src_root + os.pathsep + existing


class FleetEngine(RunEngine):
    """A RunEngine whose execution lanes are fleet workers over TCP."""

    def __init__(
        self,
        coordinator: Coordinator,
        *,
        jobs: int = 1,
        procs: Optional[Sequence[subprocess.Popen]] = None,
    ):
        super().__init__(jobs=max(1, jobs), cache=coordinator.cache)
        self.coordinator = coordinator
        self.procs: list[subprocess.Popen] = list(procs or [])
        self._closed = False

    # ------------------------------------------------------- construction
    @classmethod
    def local(
        cls,
        workers: int,
        *,
        cache: Optional[ResultCache] = None,
        worker_env: Optional[dict[str, str]] = None,
        startup_timeout: float = 60.0,
        heartbeat_timeout: float = 15.0,
    ) -> "FleetEngine":
        """Coordinator + ``workers`` loopback worker subprocesses."""
        if workers < 1:
            raise ValueError("a local fleet needs at least one worker")
        coordinator = Coordinator(
            cache=cache, heartbeat_timeout=heartbeat_timeout
        )
        host, port = coordinator.address
        env = dict(os.environ)
        env["PYTHONPATH"] = _worker_pythonpath()
        if worker_env:
            env.update(worker_env)
        procs = []
        try:
            for k in range(workers):
                procs.append(subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.fleet", "worker",
                        "--connect", f"{host}:{port}",
                        "--name", f"w{k + 1}",
                    ],
                    env=env,
                ))
            coordinator.wait_for_workers(workers, timeout=startup_timeout)
        except BaseException:
            for proc in procs:
                proc.kill()
            coordinator.shutdown()
            raise
        return cls(coordinator, jobs=workers, procs=procs)

    @classmethod
    def coordinate(
        cls,
        host: str = "0.0.0.0",
        port: int = 0,
        *,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        startup_timeout: float = 600.0,
    ) -> "FleetEngine":
        """Bind ``host:port`` and wait for ``workers`` external workers."""
        coordinator = Coordinator(host, port, cache=cache)
        bound_host, bound_port = coordinator.address
        print(
            f"fleet coordinator listening on {bound_host}:{bound_port}, "
            f"waiting for {workers} worker(s)",
            file=sys.stderr,
        )
        try:
            coordinator.wait_for_workers(workers, timeout=startup_timeout)
        except BaseException:
            coordinator.shutdown()
            raise
        return cls(coordinator, jobs=workers)

    # ------------------------------------------------------------ mapping
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        key_fn: Optional[Callable[[Any], str]] = None,
    ) -> list[Any]:
        results, stats = self.coordinator.map(fn, items, key_fn=key_fn)
        stats.jobs = self.jobs
        self.last_stats = stats
        self.stats.merge(stats)
        self.stats.jobs = self.jobs
        return results

    # ----------------------------------------------------------- lifetime
    def close(self) -> None:
        """Drain the fleet: shutdown frames, then reap owned workers."""
        if self._closed:
            return
        self._closed = True
        self.coordinator.shutdown()
        deadline = time.monotonic() + 10.0
        for proc in self.procs:
            try:
                proc.wait(max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def __enter__(self) -> "FleetEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
