"""Distributed run fleet: coordinator/worker work-queue over TCP.

The fleet shards the repo's embarrassingly-parallel campaigns — the
fig5–8 bench matrix, checker schedule spaces, server soak cells —
across worker processes on one or many hosts, behind the exact
``RunEngine.map`` contract every campaign already uses.  Reports stay
byte-identical from 1 local worker to N remote hosts because all
campaign state (queue, leases, shared artifact store, matrix-order
reduce) lives on the coordinator and workers are stateless executors of
pure runs.  See ``docs/fleet.md`` for the protocol, failure semantics
and the determinism argument.
"""

from repro.fleet.coordinator import Coordinator, FleetError
from repro.fleet.engine import FleetEngine
from repro.fleet.protocol import (
    FrameSocket,
    ProtocolError,
    connect,
    fn_reference,
    resolve_fn,
)
from repro.fleet.worker import serve

__all__ = [
    "Coordinator",
    "FleetEngine",
    "FleetError",
    "FrameSocket",
    "ProtocolError",
    "connect",
    "fn_reference",
    "resolve_fn",
    "serve",
]
