"""Post-rollback invariant auditing.

A rollback's contract (paper §3.1.2): after the undo log is processed in
reverse down to the section's mark, every location the section modified
holds its pre-section value again, the log has returned exactly to the
mark, and the marks of the sections still active nest monotonically within
the log.  The auditor re-derives the expected pre-section values from the
log itself *before* the rollback runs, then checks the heap *after* — an
independent oracle, so a bug in the reverse-processing order, a missed
entry, or a fault-plane perturbation that was not actually benign raises
:class:`~repro.errors.InvariantViolation` instead of silently corrupting
the guest program.

Enabled with ``VMOptions(audit_rollbacks=True)``; the fault-injection
campaign runs every scenario under it and asserts zero violations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvariantViolation
from repro.vm.heap import VMArray, VMObject, location_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.revocation import RollbackSupport
    from repro.core.sections import Section
    from repro.core.undolog import UndoLog
    from repro.vm.threads import VMThread

#: expectation: location key -> (container, slot, pre-section value)
Expectation = dict


class InvariantAuditor:
    """Checks the rollback contract around every undo-log replay."""

    def __init__(self, support: "RollbackSupport") -> None:
        self.support = support

    def before_rollback(
        self, thread: "VMThread", target: "Section", log: "UndoLog"
    ) -> Expectation:
        """Capture the expected pre-section value of every logged location.

        The *oldest* entry at or after the section's mark holds the value
        the location had when the section first overwrote it — exactly what
        reverse processing must end on.
        """
        expected: Expectation = {}
        for container, slot, old_value in log.entries[target.log_mark:]:
            key = location_of(container, slot)
            if key not in expected:
                expected[key] = (container, slot, old_value)
        return expected

    def after_rollback(
        self,
        thread: "VMThread",
        target: "Section",
        log: "UndoLog",
        expected: Expectation,
    ) -> None:
        metrics = self.support.metrics
        metrics.invariant_checks += 1
        if len(log) != target.log_mark:
            self._fail(
                thread,
                f"undo log holds {len(log)} entries after rollback, "
                f"expected the section mark {target.log_mark}",
            )
        heap = self.support.vm.heap
        for key, (container, slot, old_value) in expected.items():
            if isinstance(container, (VMObject, VMArray)):
                current = container.get(slot)
            else:
                current = heap.get_static(container)
            if current is old_value:
                continue
            if current != current and old_value != old_value:
                continue  # both NaN
            if current != old_value:
                self._fail(
                    thread,
                    f"location {key!r} holds {current!r} after rollback, "
                    f"expected {old_value!r}",
                )
        previous_mark = -1
        for section in thread.sections:
            if section.log_mark < previous_mark or section.log_mark > len(log):
                self._fail(
                    thread,
                    f"section marks no longer nest: {section!r} marks "
                    f"{section.log_mark} after {previous_mark} "
                    f"(log length {len(log)})",
                )
            previous_mark = section.log_mark

    def _fail(self, thread: "VMThread", detail: str) -> None:
        self.support.metrics.invariant_violations += 1
        self.support.vm.trace("invariant_violation", thread, detail=detail)
        raise InvariantViolation(thread.name, detail)
