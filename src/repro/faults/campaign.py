"""Seed-sweep fault-injection campaign.

Runs every scenario under a sweep of VM seeds with the post-rollback
invariant auditor enabled, and asserts that **no run ever violates the
rollback contract** — the heap always returns to its pre-section state,
and each workload's guest-level invariant (conserved balances, exact
counters) holds no matter what the fault plane injected.

The report is a pure function of ``(scenario set, seed range)``: two
invocations with the same arguments must print byte-identical output.

Cells fan out across worker processes via :mod:`repro.bench.parallel`
(``--jobs`` / ``REPRO_BENCH_JOBS``); each cell is a pure function of
``(scenario, seed)``, so the report stays byte-identical for any worker
count and completed cells are served from the shared result cache.

Usage::

    PYTHONPATH=src python -m repro.faults.campaign --seeds 25
    PYTHONPATH=src python -m repro.faults.campaign --seeds 25 --jobs 4
    PYTHONPATH=src python -m repro.faults.campaign --seeds 5 --scenario storm-philosophers

Exit status 0 when every run completed with zero violations, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.workloads import (
    Workload,
    build_bank,
    build_bounded_buffer,
    build_deadlock_ring,
    build_medium_inversion,
    build_philosophers,
)
from repro.errors import (
    DeadlockError,
    InvariantViolation,
    ReproError,
    StarvationError,
)
from repro.faults.plane import FaultPlan
from repro.util.rng import sweep_seed
from repro.vm.vmcore import JVM, VMOptions

#: host-time safety valve per run (virtual cycles)
CYCLE_CAP = 40_000_000

#: metrics aggregated into the report (summed over a scenario's seed sweep)
REPORTED_METRICS = (
    "revocation_requests",
    "revocations_completed",
    "revocations_denied_degraded",
    "backoff_windows_granted",
    "degradations_to_inheritance",
    "degradations_to_nonrevocable",
    "starvations_detected",
    "deadlocks_resolved",
    "invariant_checks",
    "invariant_violations",
)


@dataclass(frozen=True)
class Scenario:
    """One workload + fault plan + guest-level invariant check."""

    name: str
    build: Callable[[], Workload]
    plan: FaultPlan
    #: returns a list of violation descriptions (empty = invariant held)
    check: Callable[[JVM], list[str]]
    options: dict = field(default_factory=dict)


# ------------------------------------------------------- invariant checks
def _check_philosopher_meals(expected: int) -> Callable[[JVM], list[str]]:
    def check(vm: JVM) -> list[str]:
        meals = vm.get_static("Philosophers", "meals")
        if meals != expected:
            return [f"meals counter {meals} != expected {expected}"]
        return []

    return check


def _check_bank_balance(expected_total: int) -> Callable[[JVM], list[str]]:
    def check(vm: JVM) -> list[str]:
        balances = vm.get_static("Bank", "balances")
        total = sum(balances.get(i) for i in range(len(balances)))
        if total != expected_total:
            return [f"total balance {total} != expected {expected_total}"]
        return []

    return check


def _check_buffer_counts(total: int) -> Callable[[JVM], list[str]]:
    def check(vm: JVM) -> list[str]:
        produced = vm.get_static("Buffer", "produced")
        consumed = vm.get_static("Buffer", "consumed")
        problems = []
        if produced != total:
            problems.append(f"produced {produced} != expected {total}")
        if consumed != total:
            problems.append(f"consumed {consumed} != expected {total}")
        return problems

    return check


def _check_spin_counter(expected: int) -> Callable[[JVM], list[str]]:
    def check(vm: JVM) -> list[str]:
        spin = vm.get_static("Inversion", "spin")
        if spin != expected:
            return [f"spin counter {spin} != expected {expected}"]
        return []

    return check


def _check_ring_counter(expected: int) -> Callable[[JVM], list[str]]:
    def check(vm: JVM) -> list[str]:
        counter = vm.get_static("DeadlockRing", "counter")
        if counter != expected:
            return [f"ring counter {counter} != expected {expected}"]
        return []

    return check


def _check_nothing(vm: JVM) -> list[str]:
    return []


# -------------------------------------------------------------- scenarios
#: the server-chaos scenario's arrival-stream seed.  Fixed (not the VM
#: sweep seed) so the invariant check can recompute the expected service
#: demand of every completed write transaction from the config alone.
SERVER_STREAM_SEED = 0x5EED


def _server_chaos_scenario() -> Scenario:
    """Open-system server under a chaos plan: retries, shedding, abort
    storms and the degradation ladder all engage while the auditor and
    :func:`repro.server.plane.check_server_invariants` watch."""
    from repro.server.plane import server_invariant_check
    from repro.server.workload import ServerConfig, TierSpec, build_server

    config = ServerConfig(
        name="campaign-server",
        tiers=(
            TierSpec(
                "gold", priority=8, requests=40, mean_gap=1_000,
                arrival="bursty", workers=2, write_pct=80, svc_iters=30,
                timeout=12_000, max_retries=2, backoff=800, jitter=400,
                shed_depth=10,
            ),
            TierSpec(
                "bronze", priority=3, requests=30, mean_gap=1_400,
                arrival="heavy", workers=2, write_pct=80, svc_iters=40,
                heavy_service=True, timeout=16_000, max_retries=2,
                backoff=1_000, jitter=500, shed_depth=8,
            ),
        ),
        locks=2, cells=8, hot_lock_pct=80,
        storm_window=12_000, storm_enter=5, storm_exit=1,
    )

    def build() -> Workload:
        return build_server(config, SERVER_STREAM_SEED)

    return Scenario(
        name="server-chaos",
        build=build,
        plan=FaultPlan(
            revocation_storm_rate=0.15,
            handoff_delay_rate=0.05,
            handoff_delay_cycles=1_200,
            undo_perturb_rate=0.5,
        ),
        check=server_invariant_check(config, SERVER_STREAM_SEED),
        options={"scheduler": "priority", "raise_on_uncaught": False},
    )


def _scenarios() -> list[Scenario]:
    return [
        Scenario(
            name="storm-philosophers",
            build=lambda: build_philosophers(
                3, rounds=3, think_cycles=800, eat_iters=30
            ),
            plan=FaultPlan(revocation_storm_rate=0.2),
            check=_check_philosopher_meals(3 * 3),
        ),
        Scenario(
            name="exception-rain-bank",
            build=lambda: build_bank(
                accounts=4, transfers=12, hold_cycles=300
            ),
            plan=FaultPlan(guest_exception_rate=0.02, max_injections=8),
            check=_check_bank_balance(4 * 100),
            options={"raise_on_uncaught": False},
        ),
        Scenario(
            name="exception-rain-inversion",
            build=lambda: build_medium_inversion(
                medium_threads=2,
                low_section_iters=300,
                medium_work_iters=400,
                high_section_iters=80,
            ),
            plan=FaultPlan(guest_exception_rate=0.01, max_injections=6),
            check=_check_nothing,
            options={"raise_on_uncaught": False},
        ),
        Scenario(
            name="handoff-delay-buffer",
            build=lambda: build_bounded_buffer(
                capacity=3, items_per_producer=8, producers=2, consumers=2
            ),
            plan=FaultPlan(
                handoff_delay_rate=0.25, handoff_delay_cycles=1_500
            ),
            check=_check_buffer_counts(2 * 8),
        ),
        Scenario(
            # storms revoke the low/high threads mid-section, so rollbacks
            # replay non-empty log segments — the perturbation's target
            name="undo-perturb-storm",
            build=lambda: build_medium_inversion(
                medium_threads=2,
                low_section_iters=2_000,
                medium_work_iters=1_000,
                high_section_iters=500,
            ),
            plan=FaultPlan(
                revocation_storm_rate=0.5, undo_perturb_rate=0.9
            ),
            check=_check_spin_counter(2 * 1_000),
        ),
        Scenario(
            name="deadlock-ring",
            build=lambda: build_deadlock_ring(
                4, hold_cycles=3_000, work=30
            ),
            plan=FaultPlan(
                handoff_delay_rate=0.2, handoff_delay_cycles=1_000
            ),
            check=_check_ring_counter(4 * 30),
        ),
        _server_chaos_scenario(),
    ]


# ---------------------------------------------------------------- running
def _campaign_cell(item: tuple[str, int, str]) -> dict:
    """Worker entry for one (scenario, seed, interp) cell.

    Scenarios carry closures, so workers receive only the *name* and
    rebuild the scenario from :func:`_scenarios` — the registry is source
    code, hence identical in every process.
    """
    name, seed, interp = item
    scenario = {s.name: s for s in _scenarios()}[name]
    return run_one(scenario, seed, interp=interp)


def _cell_key(item: tuple[str, int, str]) -> str:
    """Content address of one cell: identity + the repro source digest
    (which covers the scenario definitions themselves).  ``interp`` is
    part of the identity even though the fragment must be byte-identical
    either way — a cached fast-engine result must never mask a
    reference-engine repro (or vice versa)."""
    from repro.bench.parallel import cache_key, source_digest

    name, seed, interp = item
    return cache_key("campaign-cell", name, seed, interp, source_digest())


def run_one(scenario: Scenario, index: int, *, interp: str = "fast") -> dict:
    """Run one (scenario, sweep-index) cell; returns its report fragment.

    The VM seed follows the repo-wide seed-namespace convention
    (:func:`repro.util.rng.sweep_seed`): cell ``index`` of scenario ``s``
    always runs under ``sweep_seed("campaign", s, index)``, independent
    of scenario ordering or any other tool's sweeps.
    """
    options = VMOptions(
        mode="rollback",
        seed=sweep_seed("campaign", scenario.name, index),
        interp=interp,
        trace=False,
        audit_rollbacks=True,
        max_cycles=CYCLE_CAP,
        faults=scenario.plan,
        **scenario.options,
    )
    vm = JVM(options)
    scenario.build().install(vm)
    violations: list[str] = []
    outcome = "completed"
    try:
        vm.run()
    except InvariantViolation as exc:
        outcome = "invariant-violation"
        violations.append(str(exc))
    except (DeadlockError, StarvationError) as exc:
        outcome = type(exc).__name__
        violations.append(f"run did not complete: {type(exc).__name__}")
    except ReproError as exc:  # any other host error is a robustness bug
        outcome = type(exc).__name__
        violations.append(f"{type(exc).__name__}: {exc}")
    else:
        violations.extend(scenario.check(vm))
    metrics = vm.metrics()["support"]
    fragment = {
        "outcome": outcome,
        "violations": violations,
        "injected": vm.fault_plane.report() if vm.fault_plane else {},
        "metrics": {k: metrics.get(k, 0) for k in REPORTED_METRICS},
    }
    return fragment


def run_campaign(
    seeds: int, scenario_filter: str | None = None, *, engine=None,
    interp: str = "fast",
) -> dict:
    """Sweep seeds x scenarios; returns the aggregated (and deterministic)
    campaign report.

    The (scenario x seed) matrix is enumerated up front and fanned out
    through a :class:`repro.bench.parallel.RunEngine`; cells reduce back
    in matrix order, so the report is byte-identical for any worker
    count.  The default engine is serial and uncached.
    """
    from repro.bench.parallel import RunEngine

    if engine is None:
        engine = RunEngine(jobs=1)
    scenarios = _scenarios()
    if scenario_filter is not None:
        scenarios = [s for s in scenarios if s.name == scenario_filter]
        if not scenarios:
            raise SystemExit(f"unknown scenario {scenario_filter!r}")
    matrix = [
        (scenario.name, seed, interp)
        for scenario in scenarios
        for seed in range(1, seeds + 1)
    ]
    cells = engine.map(_campaign_cell, matrix, key_fn=_cell_key)
    report: dict = {
        "seeds": seeds, "scenarios": {}, "violations": 0, "failures": [],
    }
    for index, scenario in enumerate(scenarios):
        totals = {k: 0 for k in REPORTED_METRICS}
        injected: dict[str, int] = {}
        outcomes: dict[str, int] = {}
        violations: list[str] = []
        for offset in range(seeds):
            seed = offset + 1
            cell = cells[index * seeds + offset]
            outcomes[cell["outcome"]] = outcomes.get(cell["outcome"], 0) + 1
            for key, value in cell["metrics"].items():
                totals[key] += value
            for key, value in cell["injected"].items():
                injected[key] = injected.get(key, 0) + value
            for violation in cell["violations"]:
                violations.append(f"seed {seed}: {violation}")
            if cell["violations"]:
                report["failures"].append({
                    "scenario": scenario.name,
                    "seed_index": seed,
                    "vm_seed": hex(
                        sweep_seed("campaign", scenario.name, seed)
                    ),
                    "outcome": cell["outcome"],
                    "violations": cell["violations"],
                })
        report["scenarios"][scenario.name] = {
            "outcomes": {k: outcomes[k] for k in sorted(outcomes)},
            "injected": {k: injected[k] for k in sorted(injected)},
            "metrics": totals,
            "violations": violations,
        }
        report["violations"] += len(violations)
    return report


def replay_cell(
    scenario_name: str, seed_index: int, *, interp: str = "fast"
) -> dict:
    """Re-run exactly one failed (scenario, seed) cell serially, no
    cache, no fan-out — the one-command reproduction path the campaign
    prints on stderr when a run fails."""
    scenario = {s.name: s for s in _scenarios()}.get(scenario_name)
    if scenario is None:
        raise SystemExit(f"unknown scenario {scenario_name!r}")
    return run_one(scenario, seed_index, interp=interp)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.campaign",
        description="deterministic fault-injection campaign",
    )
    parser.add_argument(
        "--seeds", type=int, default=25,
        help="number of VM seeds per scenario (default 25)",
    )
    parser.add_argument(
        "--scenario", default=None,
        help="run only the named scenario",
    )
    parser.add_argument(
        "--interp", default="fast", choices=["fast", "reference"],
        help="interpreter engine (fragments are identical either way)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default REPRO_BENCH_JOBS or cpu count; "
             "1 = serial)",
    )
    parser.add_argument(
        "--replay", type=int, default=None, metavar="INDEX",
        help="re-run exactly one (--scenario, seed INDEX) cell serially "
             "and print its fragment (the reproduction path printed on "
             "stderr when a campaign run fails)",
    )
    args = parser.parse_args(argv)
    if args.replay is not None:
        if args.scenario is None:
            parser.error("--replay requires --scenario")
        fragment = replay_cell(args.scenario, args.replay,
                               interp=args.interp)
        print(json.dumps(fragment, indent=2, sort_keys=True))
        return 1 if fragment["violations"] else 0
    from repro.bench.parallel import RunEngine

    engine = RunEngine.from_env()
    if args.jobs is not None:
        engine = RunEngine(jobs=max(1, args.jobs), cache=engine.cache)
    report = run_campaign(args.seeds, args.scenario, engine=engine,
                          interp=args.interp)
    print(json.dumps(report, indent=2, sort_keys=True))
    # stderr only: the stdout report must stay byte-identical across
    # jobs/cache settings (the campaign's determinism contract).
    print(engine.stats.render(), file=sys.stderr)
    for failure in report["failures"]:
        # one copy-pastable reproduction command per failed cell that
        # round-trips every flag shaping the cell (scenario, seed index,
        # interpreter engine), with the exact VM seed it will run under.
        # --jobs/--seeds are deliberately absent: the replay is serial
        # and the cell is a pure function of (scenario, seed, interp).
        print(
            "REPLAY: PYTHONPATH=src python -m repro.faults.campaign "
            f"--scenario {failure['scenario']} "
            f"--replay {failure['seed_index']} "
            f"--interp {args.interp}"
            f"  # vm seed {failure['vm_seed']}",
            file=sys.stderr,
        )
    if report["violations"]:
        print(
            f"FAIL: {report['violations']} invariant violation(s)",
            file=sys.stderr,
        )
        return 1
    print("OK: zero invariant violations", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
