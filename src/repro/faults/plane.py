"""The fault-injection plane: deterministic adversarial perturbations.

A :class:`FaultPlan` is pure configuration — rates and magnitudes for each
fault kind, plus its own sub-seed.  A :class:`FaultPlane` is the live
injector one VM owns (``VMOptions(faults=plan)``); it draws every decision
from ``vm.rng.spawn("faults", plan.seed)``, so injections depend only on
``(vm seed, plan)`` and the execution prefix — never on host state.

Fault kinds and where the VM consults the plane:

``guest_exception``
    At yield points (:meth:`on_yield_point`): deliver a guest exception to
    the running thread, dispatched through the ordinary exception tables.
    Inside a synchronized section this exercises the transformer's
    catch-all release handlers (monitorexit on the abnormal path = commit
    semantics, as in Java).

``revocation_storm``
    After scheduler slices (:meth:`on_slice_end`): post a spurious
    revocation request against some thread's active revocable section,
    through the support's :meth:`request_revocation` chokepoint — so
    storms are subject to the retry budget, backoff and degradation
    ladder like any legitimate request.

``handoff_delay``
    When a released monitor's successor is about to be made runnable
    (:meth:`handoff_delay`): postpone the wake-up by a fixed number of
    cycles, widening barge/contention windows.

``undo_perturb``
    Just before a rollback processes the undo log (:meth:`perturb_undo`):
    duplicate one entry of the section's log segment at the buffer's end.
    Provably behaviour-preserving — reverse processing applies the
    duplicate first and still finishes on the oldest entry per location —
    so the invariant auditor must keep passing; a matching JMM write
    record is pushed so the extra undo's pop is net-zero.

``undo_drop``
    Just before a rollback processes the undo log (:meth:`drop_undo`):
    silently delete one entry from the rolling-back segment, so the
    revocation leaves one store of the aborted section visible — a
    *genuine* serializability bug, the opposite of ``undo_perturb``.
    This kind exists as a seeded defect for the differential oracle
    (:mod:`repro.check.oracle`) to catch and minimize; robustness
    campaigns must never enable it (the invariant auditor rightly flags
    the corruption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.vm.heap import location_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.revocation import RollbackSupport
    from repro.core.sections import Section
    from repro.vm.monitors import Monitor
    from repro.vm.threads import VMThread
    from repro.vm.vmcore import JVM


@dataclass(frozen=True)
class FaultPlan:
    """Configuration for one fault-injection campaign run."""

    #: sub-seed folded into the VM seed for the injector's RNG stream
    seed: int = 0xFA17
    #: per-yield-point probability of delivering a guest exception
    guest_exception_rate: float = 0.0
    guest_exception_class: str = "RuntimeException"
    #: per-slice probability of posting a spurious revocation request
    revocation_storm_rate: float = 0.0
    #: probability that a monitor release's successor wake-up is postponed
    handoff_delay_rate: float = 0.0
    handoff_delay_cycles: int = 2_000
    #: per-rollback probability of a benign undo-log perturbation
    undo_perturb_rate: float = 0.0
    #: per-rollback probability of *losing* one undo entry (a seeded,
    #: genuinely corrupting bug for the differential oracle; see module
    #: docstring) — never enable in correctness campaigns
    undo_drop_rate: float = 0.0
    #: total injections across all kinds (0 = unlimited)
    max_injections: int = 0

    def __post_init__(self) -> None:
        for name in (
            "guest_exception_rate",
            "revocation_storm_rate",
            "handoff_delay_rate",
            "undo_perturb_rate",
            "undo_drop_rate",
        ):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be within [0, 1], got {rate}")
        if self.handoff_delay_cycles < 0:
            raise ValueError("handoff_delay_cycles must be non-negative")

    def any_enabled(self) -> bool:
        return (
            self.guest_exception_rate > 0
            or self.revocation_storm_rate > 0
            or self.handoff_delay_rate > 0
            or self.undo_perturb_rate > 0
            or self.undo_drop_rate > 0
        )


class FaultPlane:
    """Live injector bound to one VM."""

    def __init__(self, vm: "JVM", plan: FaultPlan) -> None:
        self.vm = vm
        self.plan = plan
        self.rng = vm.rng.spawn("faults", plan.seed)
        self.counts: dict[str, int] = {}
        self.total = 0

    # -------------------------------------------------------------- helpers
    def _exhausted(self) -> bool:
        cap = self.plan.max_injections
        return bool(cap) and self.total >= cap

    def yield_quiet(self) -> bool:
        """True when :meth:`on_yield_point` is currently a pure no-op — it
        would neither draw from the RNG nor inject.  The superblock
        dispatch guard consults this before fusing across yield points:
        while it holds, skipping the per-yield-point probe entirely is
        unobservable.  Exhaustion can only flip this between superblock
        entries (injections happen outside fused code), never during one.
        """
        return self.plan.guest_exception_rate <= 0.0 or self._exhausted()

    def _record(self, kind: str, thread: "VMThread | None") -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.total += 1
        self.vm.trace("fault_inject", thread, fault=kind)

    def report(self) -> dict[str, int]:
        """Deterministic summary of what was injected."""
        out = {kind: self.counts[kind] for kind in sorted(self.counts)}
        out["total"] = self.total
        return out

    # -------------------------------------------------------- fault kinds
    def on_yield_point(self, thread: "VMThread") -> Optional[str]:
        """Returns a guest exception class to raise in ``thread``, or None."""
        rate = self.plan.guest_exception_rate
        if rate <= 0.0 or self._exhausted():
            return None
        if self.rng.random() >= rate:
            return None
        self._record("guest_exception", thread)
        return self.plan.guest_exception_class

    def on_slice_end(self) -> None:
        """Maybe post a spurious revocation request (revocation storm)."""
        rate = self.plan.revocation_storm_rate
        if rate <= 0.0 or self._exhausted():
            return
        if self.rng.random() >= rate:
            return
        request = getattr(self.vm.support, "request_revocation", None)
        if request is None:
            return  # storms only mean something on the rollback VM
        candidates: list[tuple["VMThread", "Section"]] = []
        for thread in self.vm.threads:  # spawn order: deterministic
            if not thread.is_live():
                continue
            for section in thread.sections:
                if not section.recursive and section.revocable:
                    candidates.append((thread, section))
                    break  # outermost eligible section per thread
        if not candidates:
            return
        holder, target = self.rng.choice(candidates)
        self._record("revocation_storm", holder)
        request(holder, target, origin="storm")

    def handoff_delay(
        self, thread: "VMThread", mon: "Monitor | None"
    ) -> int:
        """Cycles to postpone ``thread``'s post-release wake-up (0 = none)."""
        rate = self.plan.handoff_delay_rate
        if rate <= 0.0 or self._exhausted():
            return 0
        if self.rng.random() >= rate:
            return 0
        self._record("handoff_delay", thread)
        return self.plan.handoff_delay_cycles

    def perturb_undo(
        self,
        support: "RollbackSupport",
        thread: "VMThread",
        target: "Section",
    ) -> None:
        """Duplicate one undo entry of the section about to roll back."""
        rate = self.plan.undo_perturb_rate
        if rate <= 0.0 or self._exhausted():
            return
        log = thread.undo_log
        if log is None or len(log) <= target.log_mark:
            return
        if self.rng.random() >= rate:
            return
        idx = self.rng.randint(target.log_mark, len(log.entries) - 1)
        container, slot, old_value = log.entries[idx]
        log.append(container, slot, old_value)
        # Balance the JMM tracker: the rollback will issue one extra undo
        # for this location, which must pop this record and no other.
        support.jmm.on_write(
            thread,
            location_of(container, slot),
            support._active_tuple(thread),
        )
        self._record("undo_perturb", thread)

    def drop_undo(
        self,
        support: "RollbackSupport",
        thread: "VMThread",
        target: "Section",
    ) -> None:
        """Delete one undo entry of the section about to roll back.

        The corresponding store survives the revocation — a seeded
        serializability defect for the differential oracle.  No JMM
        rebalancing is attempted: the corruption is the point."""
        rate = self.plan.undo_drop_rate
        if rate <= 0.0 or self._exhausted():
            return
        log = thread.undo_log
        if log is None or len(log) <= target.log_mark:
            return
        if self.rng.random() >= rate:
            return
        idx = self.rng.randint(target.log_mark, len(log.entries) - 1)
        del log.entries[idx]
        self._record("undo_drop", thread)
