"""Deterministic fault injection for the revocation runtime (robustness).

The paper's protocol makes a strong promise: however often synchronized
sections are interrupted and rolled back, the guest program's observable
behaviour is "as if" every section ran exactly once (§3.1).  This package
stress-tests that promise without giving up the simulator's determinism:

* :class:`FaultPlan` / :class:`~repro.faults.plane.FaultPlane` — a
  seed-driven injector that delivers guest exceptions at yield points,
  spurious revocation-request storms, delayed monitor hand-offs, and
  benign undo-log perturbations.  All draws come from one derived
  :class:`~repro.util.rng.DeterministicRng` sub-stream, so a run with a
  given ``(seed, plan)`` replays exactly.
* :class:`~repro.faults.auditor.InvariantAuditor` — verifies after every
  rollback that the heap really returned to its pre-section state
  (enabled with ``VMOptions(audit_rollbacks=True)``).
* :mod:`repro.faults.campaign` — ``python -m repro.faults.campaign``
  sweeps seeds x scenarios and asserts zero invariant violations.

The injection points compose with the robustness machinery this package
exists to exercise: the per-site revocation retry budget and exponential
backoff, the scheduler's starvation watchdog, and the graceful-degradation
ladder (``revocable -> inheritance -> nonrevocable``).
"""

from repro.faults.plane import FaultPlan, FaultPlane

__all__ = ["FaultPlan", "FaultPlane"]
