"""Exception hierarchy for the ``repro`` library.

Two families of errors exist:

* Host-level errors (:class:`ReproError` subclasses) raised to the *user of
  the library* — malformed bytecode, bad configuration, deadlock that the
  configured policy could not resolve, and so on.

* Guest-level exceptions — exceptions *inside* the simulated VM.  Those are
  ordinary heap objects (see :mod:`repro.vm.heap`) thrown with the ``ATHROW``
  bytecode and routed through per-method exception tables; they never surface
  as Python exceptions unless a guest thread dies with one uncaught, in which
  case the VM wraps it in :class:`UncaughtGuestException`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all host-level errors raised by this library."""


class VerifyError(ReproError):
    """Malformed class/bytecode detected at load or transform time.

    Mirrors the JVM's ``VerifyError``: raised when branch targets fall
    outside the method, exception-table ranges are inverted, monitorenter /
    monitorexit pairs cannot be matched, or operand-stack effects are
    inconsistent.
    """


class LinkError(ReproError):
    """Unresolvable symbolic reference (class, field, method or native)."""


class VMStateError(ReproError):
    """Operation attempted in an invalid VM state.

    Examples: spawning a thread after :meth:`repro.vm.vmcore.JVM.run`
    completed, joining a thread that was never started, re-running a VM.
    """


class GuestRuntimeError(ReproError):
    """A guest-level runtime fault (the analogue of a JVM runtime exception).

    The interpreter converts these into *guest* exception objects of class
    ``guest_class`` and dispatches them through the guest program's
    exception tables — they only surface to the host when uncaught.
    """

    def __init__(self, message: str, guest_class: str = "RuntimeException"):
        self.guest_class = guest_class
        super().__init__(message)


class UncaughtGuestException(ReproError):
    """A guest thread terminated with an exception no handler caught."""

    def __init__(self, thread_name: str, exc_class: str, detail: str = ""):
        self.thread_name = thread_name
        self.exc_class = exc_class
        self.detail = detail
        super().__init__(
            f"uncaught guest exception {exc_class!r} in thread "
            f"{thread_name!r}{': ' + detail if detail else ''}"
        )


class DeadlockError(ReproError):
    """A deadlock was detected and the active policy could not resolve it.

    Carries the cycle of thread names so callers (and tests) can inspect the
    wait-for structure that caused the failure.
    """

    def __init__(self, cycle: list[str], reason: str = ""):
        self.cycle = list(cycle)
        self.reason = reason
        msg = " -> ".join(self.cycle + self.cycle[:1])
        super().__init__(
            f"unresolvable deadlock: {msg}{' (' + reason + ')' if reason else ''}"
        )


class ScheduleError(ReproError):
    """A scheduler decision hook made an unserviceable choice.

    Raised when the hook returns a thread id that is not among the ready
    candidates it was offered — a blocked, sleeping, dead or unknown
    thread.  Carries both sides so exploration tooling can print the
    decision that went wrong.
    """

    def __init__(self, chosen: object, candidates: list[int]):
        self.chosen = chosen
        self.candidates = list(candidates)
        super().__init__(
            f"decision hook chose thread id {chosen!r}; ready candidates "
            f"are {self.candidates}"
        )


class StarvationError(ReproError):
    """The VM ran past its configured cycle budget without quiescing.

    A safety valve for tests and benchmarks: virtual time is unbounded, so a
    livelocked guest program would otherwise spin the host forever.
    """

    def __init__(self, cycles: int):
        self.cycles = cycles
        super().__init__(f"VM exceeded its cycle budget ({cycles} cycles)")


class TransformError(ReproError):
    """The bytecode transformer could not rewrite a method safely."""


class InvariantViolation(ReproError):
    """The post-rollback invariant auditor found corrupted state.

    A revocation must leave the heap "as if the section never ran"
    (paper §3.1.2).  The auditor re-derives the expected pre-section value
    of every location the section logged and compares it against the heap
    after the undo log was processed; any mismatch — or an undo log whose
    length does not return to the section's mark, or section marks that no
    longer nest monotonically — raises this error.  Fault-injection
    campaigns assert that no run ever raises it.
    """

    def __init__(self, thread_name: str, detail: str):
        self.thread_name = thread_name
        self.detail = detail
        super().__init__(
            f"rollback invariant violated in thread {thread_name!r}: {detail}"
        )
