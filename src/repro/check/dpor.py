"""Dynamic partial-order reduction (DPOR) with sleep sets for `repro.check`.

The exhaustive strategy in :mod:`repro.check.explorer` enumerates every
bounded-preemption choice prefix — sound but hopeless past 2-3 threads.
This module adds the Flanagan-Godefroid algorithm on top of the same
decision-hook seam: explore one interleaving, watch the *trace* the VM
already emits (``mem_read`` / ``mem_write`` / monitor / revocation
events) to find pairs of concurrent conflicting transitions, and add
backtrack points only where reordering could matter.  Sleep sets carry
"already explored from an equivalent state" facts downward so redundant
branches are pruned before they execute.  The result visits one
interleaving per Mazurkiewicz trace (equivalence class) instead of one
per schedule — the soundness battery in ``tests/test_check_dpor.py``
pins that the reduced set reaches the *identical* set of final-state
fingerprints as full enumeration wherever full enumeration is feasible.

Three design points anchor soundness:

* **Happens-before via vector clocks.**  Each committed transition gets a
  vector clock: the max of the executing thread's clock and the clocks of
  every earlier *dependent* transition.  A prior transition races with the
  new one iff it is dependent and not already in the accumulated causal
  past — the standard backward scan that merges clocks as it walks so
  dependence chains through third threads are honoured.
* **Conservative dependence.**  Footprints are extracted from trace
  events: reads/writes by location, monitor operations by monitor
  identity.  Any event kind that is not provably thread-local —
  revocation requests and denials, rollbacks, waits/notifies, wakeups,
  deadlock resolution — marks the slice *global*: dependent with
  everything.  Revocation timing depends on the virtual clock (grace
  windows, site backoff), so pretending those slices commute would drop
  real schedules; we sacrifice reduction for soundness instead.
* **Deterministic re-execution.**  The VM is fully deterministic given a
  choice sequence, so a thread's next transition from a given state is a
  fixed function of the state.  Sleep sets exploit exactly this: the
  footprint recorded when a choice's subtree completes *is* the footprint
  that choice would have again, even when the slice re-executes a rolled
  back synchronized section.

Exploration itself runs the reference policy with memory tracing (which
forces the reference interpreter); the complete schedules it emits are
then farmed through :func:`repro.check.explorer.run_check_cell` exactly
like exhaustive cells — same differential oracle, same counterexample /
ddmin / replay pipeline, same content-addressed cache, byte-identical
reports for any worker count.

Rather than replaying every explored prefix from cycle zero, the engine
checkpoints the VM (:mod:`repro.vm.snapshot`) at decision points.
Snapshots are taken sparsely (every :data:`SNAPSHOT_INTERVAL` levels of
the DFS stack): repositioning restores the nearest ancestor checkpoint
and replays at most ``SNAPSHOT_INTERVAL - 1`` recorded choices, trading
a bounded amount of deterministic re-execution for an order of magnitude
fewer deep copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.check.explorer import (
    CHECK_CYCLE_CAP,
    CHECK_VM_SEED,
    DEFAULT_MODES,
    CheckItem,
    ExplorationReport,
    _inject_plan,
    check_cell_key,
    run_check_cell,
    summarize_results,
)
from repro.check.scenarios import CheckScenario, get_scenario
from repro.errors import (
    DeadlockError,
    StarvationError,
    UncaughtGuestException,
)
from repro.vm.clock import CostModel
from repro.vm.snapshot import VMSnapshot, restore_vm, snapshot_vm
from repro.vm.vmcore import JVM, VMOptions

#: take a full VM snapshot at stack depths divisible by this; states in
#: between are repositioned by replaying their recorded choices from the
#: nearest shallower checkpoint
SNAPSHOT_INTERVAL = 8

# --------------------------------------------------------------------------
# footprints: what a slice did, as seen through the trace
# --------------------------------------------------------------------------

#: the "touches everything" footprint element — see module docstring
GLOBAL = ("g", None)

#: event kinds whose ``details["mon"]`` scopes their dependence to one
#: monitor: the plain monitor protocol, plus the revocation state machine
#: (requests, grants, completions, nonrevocable pins) whose decisions are
#: functions of monitor/section state alone
_MONITOR_KINDS = frozenset({
    "acquire", "release", "block",
    "wait", "wait_return", "wait_timeout", "notify",
    "rollback_done", "rollback_release", "handoff_returned",
    "leaked_monitor",
    "revocation_request", "rollback_begin", "nonrevocable",
})

#: ``revocation_denied`` reasons decided purely from monitor/section
#: state; denials from the robustness ladder (grace windows, per-site
#: backoff, degradation) read the virtual clock or cross-execution site
#: records and stay GLOBAL
_DENIED_MONITOR_REASONS = frozenset({"stale", "nonrevocable", "cost"})

#: event kinds that never induce dependence beyond program order: pure
#: bookkeeping on the emitting thread.  ``unwind`` is frame surgery on
#: the rolling-back thread; ``wakeup`` marks a thread turning runnable,
#: whose *cause* (release / notify / timer) is traced with its own
#: footprint in the same slice.  Everything not listed here and not
#: precisely interpreted above is conservatively GLOBAL.
_LOCAL_KINDS = frozenset({
    "mem_read", "mem_write", "spawn", "exit", "catch", "debug",
    "schedule_choice", "uncaught", "unwind", "wakeup",
})


def slice_footprint(events) -> frozenset:
    """Reduce one slice's trace events to a conflict footprint.

    Elements are ``("r", loc)`` / ``("w", loc)`` for tracked memory
    accesses, ``("m", label)`` for monitor-scoped operations, and
    :data:`GLOBAL` for anything whose dependence we cannot bound —
    grace/backoff windows, ladder degradation, deadlock resolution: all
    clock- or cross-site-mediated, so pretending they commute would drop
    schedules."""
    fp = set()
    for event in events:
        kind = event.kind
        if kind == "mem_read":
            fp.add(("r", tuple(event.details["loc"])))
        elif kind == "mem_write":
            fp.add(("w", tuple(event.details["loc"])))
        elif kind in _MONITOR_KINDS:
            fp.add(("m", event.details["mon"]))
        elif (
            kind == "revocation_denied"
            and event.details.get("reason") in _DENIED_MONITOR_REASONS
        ):
            fp.add(("m", event.details["mon"]))
        elif kind not in _LOCAL_KINDS:
            fp.add(GLOBAL)
    return frozenset(fp)


def footprints_conflict(a: frozenset, b: frozenset) -> bool:
    """Dependence relation between two slices.

    Conflict iff either is GLOBAL, both touch the same monitor, or both
    touch the same location with at least one write.  Purely local slices
    (empty footprint) commute with everything non-GLOBAL."""
    if GLOBAL in a or GLOBAL in b:
        return True
    if len(a) > len(b):
        a, b = b, a
    for tag, key in a:
        if tag == "w":
            if ("w", key) in b or ("r", key) in b:
                return True
        elif tag == "r":
            if ("w", key) in b:
                return True
        else:  # monitor op: any op on the same monitor orders the slices
            if ("m", key) in b:
                return True
    return False


# --------------------------------------------------------------------------
# SteppingRun: drive one check run decision-by-decision
# --------------------------------------------------------------------------


class _PeekSignal(Exception):
    """Aborts a scheduler step inside the decision hook, exposing the
    candidate set without executing anything."""

    def __init__(self, tids: tuple[int, ...]) -> None:
        self.tids = tids


@dataclass(frozen=True)
class Checkpoint:
    """A :class:`SteppingRun` frozen at one scheduling decision."""

    snapshot: VMSnapshot
    schedule: tuple[int, ...]
    candidates: tuple[tuple[int, ...], ...]
    pending: tuple[int, ...]


class SteppingRun:
    """One scenario run, paused at every scheduling decision.

    The protocol is ``advance() -> ("decision", tids) | ("done", outcome)``
    then ``choose(tid)`` to commit one decision and execute its slice.
    Between ``advance`` and ``choose`` the VM is quiescent, so
    :meth:`checkpoint` can capture it and :meth:`resume` can later clone
    an independent continuation positioned at the same decision.

    Runs use the exact :func:`repro.check.explorer.run_schedule` VM
    configuration plus tracing (memory tracing forces the reference
    interpreter — exploration needs per-location events), so a schedule
    found here replays identically through the normal cell pipeline.
    """

    def __init__(
        self,
        scenario: CheckScenario,
        mode: str,
        *,
        inject: Optional[str] = None,
        interp: Optional[str] = None,
        trace_memory: bool = True,
    ) -> None:
        overrides = dict(scenario.options)
        overrides["trace"] = True
        overrides["trace_memory"] = trace_memory
        if interp is not None:
            overrides["interp"] = interp
        options = VMOptions(
            mode=mode,
            seed=CHECK_VM_SEED,
            cost_model=CostModel(quantum=1),
            max_cycles=CHECK_CYCLE_CAP,
            faults=_inject_plan(inject),
            **overrides,
        )
        vm = JVM(options)
        scenario.build().install(vm)
        self._adopt(vm, schedule=(), candidates=())
        vm.begin_run()

    # ------------------------------------------------------------- plumbing
    def _adopt(self, vm: JVM, *, schedule, candidates) -> None:
        self.vm = vm
        vm.scheduler.decision_hook = self._hook
        self._peeking = False
        self._forced: Optional[int] = None
        #: committed choices so far (the prefix of a check schedule)
        self.schedule: list[int] = list(schedule)
        #: candidate tids seen at each committed decision
        self.candidates: list[tuple[int, ...]] = list(candidates)
        #: candidate tids at the currently paused decision, else None
        self.pending: Optional[tuple[int, ...]] = None
        self.outcome: Optional[str] = None

    def _hook(self, cands) -> int:
        tids = tuple(t.tid for t in cands)
        if self._peeking:
            raise _PeekSignal(tids)
        if self._forced is None:
            raise RuntimeError("scheduling decision without a choice")
        if tids != self.pending:
            raise RuntimeError(
                f"determinism violation: candidates {tids} at replayed "
                f"decision, expected {self.pending}"
            )
        forced, self._forced = self._forced, None
        return forced

    # ------------------------------------------------------------- protocol
    def advance(self) -> tuple[str, object]:
        """Run until the next decision or to termination (idempotent)."""
        if self.outcome is not None:
            return ("done", self.outcome)
        if self.pending is not None:
            return ("decision", self.pending)
        scheduler = self.vm.scheduler
        self._peeking = True
        try:
            while True:
                try:
                    res = scheduler.step()
                except _PeekSignal as sig:
                    # the aborted probe counted a decision; undo it
                    scheduler.decisions -= 1
                    self.pending = sig.tids
                    return ("decision", sig.tids)
                except DeadlockError:
                    self.outcome = "deadlock"
                    return ("done", self.outcome)
                except StarvationError:
                    self.outcome = "starvation"
                    return ("done", self.outcome)
                if res is None:
                    break
        finally:
            self._peeking = False
        try:
            self.vm.finish_run()
        except UncaughtGuestException as exc:
            self.outcome = f"uncaught:{exc.exc_class}"
            return ("done", self.outcome)
        self.outcome = "completed"
        return ("done", self.outcome)

    def choose(self, tid: int) -> None:
        """Commit ``tid`` at the pending decision and run its slice."""
        if self.pending is None:
            raise RuntimeError("choose() without a pending decision")
        if tid not in self.pending:
            raise ValueError(f"{tid} not a candidate in {self.pending}")
        self.schedule.append(tid)
        self.candidates.append(self.pending)
        self._forced = tid
        try:
            self.vm.scheduler.step()
        except DeadlockError:
            self.outcome = "deadlock"
        except StarvationError:
            self.outcome = "starvation"
        finally:
            self.pending = None

    def default_choice(self, tids: tuple[int, ...]) -> int:
        """The deterministic default policy's pick, mirroring
        :meth:`repro.check.explorer.ScheduleController._default_choice`:
        keep the thread that ran the previous slice while it stays ready,
        else the head of the candidate order."""
        last = self.vm.scheduler._last
        if last is not None and last.tid in tids:
            return last.tid
        return tids[0]

    def drive(self, choices=()) -> str:
        """Run to completion: force ``choices`` positionally (falling back
        to the default policy on drift, as the replay controller does),
        then default-continue.  Returns the outcome string."""
        choices = tuple(choices)
        index = len(self.schedule)
        while True:
            kind, data = self.advance()
            if kind == "done":
                return data
            want = choices[index] if index < len(choices) else None
            if want is None or want not in data:
                want = self.default_choice(data)
            self.choose(want)
            index += 1

    # ----------------------------------------------------------- snapshots
    def checkpoint(self) -> Checkpoint:
        """Capture the run at the pending decision."""
        if self.pending is None:
            raise RuntimeError("checkpoint() requires a pending decision")
        return Checkpoint(
            snapshot=snapshot_vm(self.vm),
            schedule=tuple(self.schedule),
            candidates=tuple(self.candidates),
            pending=self.pending,
        )

    @classmethod
    def resume(cls, checkpoint: Checkpoint) -> "SteppingRun":
        """Clone an independent run positioned at the checkpoint's
        decision.  May be called any number of times per checkpoint."""
        run = object.__new__(cls)
        run._adopt(
            restore_vm(checkpoint.snapshot),
            schedule=checkpoint.schedule,
            candidates=checkpoint.candidates,
        )
        run.pending = checkpoint.pending
        return run


# --------------------------------------------------------------------------
# the DPOR engine
# --------------------------------------------------------------------------


@dataclass
class _Transition:
    """One committed slice on the current DFS path."""

    tid: int
    footprint: frozenset
    #: vector clock *after* the transition: tid -> 1-based path position
    clock: dict
    #: this transition's own 1-based position on the path
    pos: int


@dataclass
class _State:
    """One decision point on the DFS stack (pre-state of path[depth])."""

    #: enabled candidates in scheduler order
    tids: tuple[int, ...]
    #: full VM checkpoint, or None for replay-repositioned states
    checkpoint: Optional[Checkpoint]
    #: thread -> footprint of its (fixed, deterministic) next transition,
    #: for threads whose subtree was already explored from an equivalent
    #: state — never re-explore unless something dependent ran
    sleep: dict
    #: per-thread vector clocks on entry, for restoration on backtrack
    clocks: dict
    backtrack: set = field(default_factory=set)
    #: choices fully explored from here (tid -> first-slice footprint)
    done: dict = field(default_factory=dict)


class DporExplorer:
    """Depth-first DPOR search over one scenario under one policy."""

    def __init__(
        self,
        scenario_name: str,
        *,
        mode: str = DEFAULT_MODES[0],
        inject: Optional[str] = None,
        max_schedules: int = 200_000,
        snapshot_interval: int = SNAPSHOT_INTERVAL,
    ) -> None:
        self.scenario = get_scenario(scenario_name)
        self.mode = mode
        self.inject = inject
        self.max_schedules = max_schedules
        self.snapshot_interval = max(1, snapshot_interval)
        #: complete interleavings executed
        self.explored = 0
        #: prefixes abandoned because every enabled thread was asleep
        self.pruned = 0
        #: distinct transitions committed by the search (excl. replays)
        self.transitions = 0
        #: checkpoint restores (each one clones a snapshot)
        self.restores = 0
        #: transitions re-executed while repositioning between snapshots
        self.replayed = 0

    # ------------------------------------------------------------ positioning
    def _fresh_run(self) -> SteppingRun:
        return SteppingRun(self.scenario, self.mode, inject=self.inject)

    def _make_state(self, run, tids, sleep, clocks) -> _State:
        depth = len(run.schedule)
        want_snap = depth % self.snapshot_interval == 0
        state = _State(
            tids=tuple(tids),
            checkpoint=run.checkpoint() if want_snap else None,
            sleep=dict(sleep),
            clocks={t: dict(vc) for t, vc in clocks.items()},
        )
        for tid in state.tids:
            if tid not in state.sleep:
                state.backtrack.add(tid)
                break
        return state

    def _reposition(self, stack, path) -> SteppingRun:
        """Produce a live run paused at ``stack[-1]``'s decision by
        restoring the nearest ancestor checkpoint and replaying the
        recorded choices between it and the target."""
        depth = len(stack) - 1
        anchor = depth
        while stack[anchor].checkpoint is None:
            anchor -= 1
        run = SteppingRun.resume(stack[anchor].checkpoint)
        self.restores += 1
        for transition in path[anchor:depth]:
            run.choose(transition.tid)
            kind, data = run.advance()
            if kind != "decision":
                raise RuntimeError(
                    "determinism violation: replay terminated early"
                )
            self.replayed += 1
        if run.pending != stack[depth].tids:
            raise RuntimeError(
                "determinism violation: repositioned candidates "
                f"{run.pending} != recorded {stack[depth].tids}"
            )
        return run

    # ---------------------------------------------------------- race analysis
    def _commit(self, tid, footprint, path, clocks, stack) -> _Transition:
        """Vector-clock bookkeeping for a newly executed transition, plus
        backtrack-point insertion at every race it closes.

        Backward scan with merge: ``base`` starts as the executing
        thread's clock; walking earlier transitions newest-first, a
        dependent transition not yet covered by ``base`` is a *race*
        (concurrent + conflicting) and seeds a backtrack point at its
        pre-state; covered or not, a dependent transition's clock then
        merges into ``base`` so dependence chains through other threads
        are honoured for the remainder of the scan."""
        pos = len(path) + 1
        base = dict(clocks.get(tid, {}))
        for j in range(len(path) - 1, -1, -1):
            prior = path[j]
            if prior.tid == tid:
                continue  # program order: already inside base
            if not footprints_conflict(footprint, prior.footprint):
                continue
            if prior.pos > base.get(prior.tid, 0):
                self._add_backtrack(stack[j], tid)
            for k, v in prior.clock.items():
                if v > base.get(k, 0):
                    base[k] = v
        base[tid] = pos
        clocks[tid] = dict(base)
        self.transitions += 1
        return _Transition(tid=tid, footprint=footprint, clock=base,
                           pos=pos)

    @staticmethod
    def _add_backtrack(state: _State, tid: int) -> None:
        """Flanagan-Godefroid backtrack insertion, conservative variant:
        schedule the racing thread at the race's pre-state when it was
        enabled there, otherwise every enabled thread (selection later
        skips done/slept entries)."""
        if tid in state.tids:
            state.backtrack.add(tid)
        else:
            state.backtrack.update(state.tids)

    @staticmethod
    def _select(state: _State) -> Optional[int]:
        """Next unexplored backtrack choice, in candidate order."""
        for tid in state.tids:
            if (
                tid in state.backtrack
                and tid not in state.done
                and tid not in state.sleep
            ):
                return tid
        return None

    # -------------------------------------------------------------- main loop
    def explore(self) -> list[tuple[int, ...]]:
        """Run the DFS; returns the explored complete schedules in
        deterministic search order."""
        run = self._fresh_run()
        kind, data = run.advance()
        if kind == "done":
            # no scheduling decisions at all: the single execution
            self.explored = 1
            return [()]

        schedules: list[tuple[int, ...]] = []
        clocks: dict[int, dict] = {}
        stack: list[_State] = [self._make_state(run, data, {}, clocks)]
        path: list[_Transition] = []
        live: Optional[SteppingRun] = run

        def retire(last: _Transition) -> None:
            """The subtree under ``last`` is exhausted: record it done at
            its pre-state and put it to sleep there — determinism fixes
            its footprint, so any sibling branch in which nothing
            dependent ran need not re-explore it."""
            state = stack[-1]
            state.done[last.tid] = last.footprint
            state.sleep[last.tid] = last.footprint

        while stack:
            state = stack[-1]
            pick = self._select(state)
            if pick is None:
                if not state.done:
                    # nothing explorable: every enabled thread slept
                    self.pruned += 1
                stack.pop()
                if stack:
                    retire(path.pop())
                live = None
                continue
            if live is None:
                live = self._reposition(stack, path)
                clocks = {t: dict(vc) for t, vc in state.clocks.items()}
            event_mark = len(live.vm.tracer.events)
            live.choose(pick)
            kind, data = live.advance()
            footprint = slice_footprint(
                live.vm.tracer.events[event_mark:]
            )
            path.append(
                self._commit(pick, footprint, path, clocks, stack)
            )
            if kind == "decision":
                child_sleep = {
                    t: fp
                    for t, fp in state.sleep.items()
                    if t != pick and not footprints_conflict(fp, footprint)
                }
                stack.append(
                    self._make_state(live, data, child_sleep, clocks)
                )
            else:
                self.explored += 1
                if self.explored > self.max_schedules:
                    raise RuntimeError(
                        f"DPOR exceeded {self.max_schedules} schedules; "
                        "shrink the scenario or raise max_schedules"
                    )
                schedules.append(tuple(live.schedule))
                retire(path.pop())
                live = None
        return schedules


def explore_dpor(
    scenario_name: str,
    *,
    modes: tuple[str, ...] = DEFAULT_MODES,
    inject: Optional[str] = None,
    engine=None,
    max_schedules: int = 200_000,
    snapshot_interval: int = SNAPSHOT_INTERVAL,
) -> ExplorationReport:
    """DPOR search plus the standard differential-oracle cell pipeline.

    The search runs in-process (it is inherently sequential); the explored
    schedules then fan out through ``engine`` exactly like exhaustive
    prefixes, so caching, determinism across worker counts, divergence
    reporting and counterexample handling are all shared code paths.
    ``bound`` is reported as ``-1``: DPOR needs no preemption bound."""
    modes = tuple(modes)
    if engine is None:
        from repro.bench.parallel import RunEngine

        engine = RunEngine(jobs=1)
    explorer = DporExplorer(
        scenario_name,
        mode=modes[0],
        inject=inject,
        max_schedules=max_schedules,
        snapshot_interval=snapshot_interval,
    )
    schedules = explorer.explore()
    items = [
        CheckItem(scenario_name, prefix, modes, inject)
        for prefix in schedules
    ]
    executed = engine.map(run_check_cell, items, key_fn=check_cell_key)
    return summarize_results(
        scenario_name,
        -1,
        modes,
        executed,
        [],
        strategy="dpor",
        explored=explorer.explored,
        pruned=explorer.pruned,
        transitions=explorer.transitions,
        restores=explorer.restores,
    )
