"""CHESS-style bounded schedule exploration over the deterministic VM.

The scheduler's pluggable decision hook (:mod:`repro.vm.scheduler`) is the
entire interface to the VM: at every scheduling decision the hook sees the
ordered READY candidates and picks a tid.  Exploration VMs run with a
one-cycle quantum so *every yield point* is a decision point — the
granularity at which pseudo-preemption can occur at all (paper footnote 4).

Search is stateless (no VM snapshots): a schedule is identified by its
*choice prefix*; replaying a prefix and then following the deterministic
default policy (keep running the last thread while it stays ready,
otherwise take the first candidate) re-creates the state.  From each
executed schedule, children are derived by substituting every unchosen
candidate at every decision at or past the prefix, keeping only children
whose **preemption count** — decisions that switch away from a thread that
was still ready — stays within the bound.  With preemptions bounded and
guest programs finite, the prefix space is finite and BFS terminates;
bounded-preemption search is the CHESS result that most concurrency bugs
hide at very small preemption counts.

Each executed schedule is one *cell*: run the reference policy under the
controller, then replay the recorded choice sequence under every other
policy and hand the outcomes to the differential oracle
(:mod:`repro.check.oracle`).  Cells are pure functions of their
:class:`CheckItem`, so they fan out across worker processes through the
:class:`repro.bench.parallel.RunEngine` and land in its content-addressed
result cache; BFS waves reduce in deterministic order, keeping every
report byte-identical for any worker count.

Replaying a rollback-policy schedule under a blocking policy is
*projection*, not simulation: revocations change how many decisions a run
takes and which threads are ready at each one.  When a recorded choice
names a thread that is not a candidate, the controller falls back to the
default policy for that decision and counts *drift* — the embodiment of
"equivalent modulo legal serialization order".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.check.oracle import (
    check_expectations,
    divergence_problems,
    final_fingerprint,
    fingerprint_digest,
)
from repro.check.scenarios import CheckScenario, get_scenario
from repro.errors import (
    DeadlockError,
    StarvationError,
    UncaughtGuestException,
)
from repro.util.rng import DeterministicRng, sweep_seed
from repro.vm.clock import CostModel
from repro.vm.vmcore import JVM, VMOptions

#: policies compared by default; index 0 is the reference (exploration) mode
DEFAULT_MODES = ("rollback", "inheritance", "unmodified")

#: per-run cycle cap: exploration programs are tiny, so anything that runs
#: this long is livelocked and should fail loudly, not hang the search
CHECK_CYCLE_CAP = 5_000_000

#: fixed VM seed for all check runs — schedules come from the controller,
#: not from arrival randomness, so every cell shares one seed
CHECK_VM_SEED = 0x5EED

#: named seeded defects for counterexample fixtures (CLI ``--inject-bug``)
INJECTABLE_BUGS = ("undo-drop",)


class ScheduleController:
    """Decision hook that replays a choice prefix, then continues with the
    deterministic default policy or a seeded bounded random walk.

    Records the full decision trace (candidates and choice at every
    decision), the preemption count, and the drift count (prefix choices
    that were not candidates when replayed — see module docstring).
    """

    def __init__(
        self,
        prefix: tuple[int, ...] = (),
        *,
        rng: Optional[DeterministicRng] = None,
        bound: Optional[int] = None,
    ) -> None:
        self.prefix = tuple(prefix)
        self.rng = rng
        self.bound = bound
        self.preemptions = 0
        self.drift = 0
        #: [(candidate tids, chosen tid)] per decision
        self.trace: list[tuple[tuple[int, ...], int]] = []
        self._last: Optional[int] = None

    @property
    def schedule(self) -> tuple[int, ...]:
        return tuple(chosen for _, chosen in self.trace)

    def __call__(self, candidates) -> int:
        tids = tuple(t.tid for t in candidates)
        index = len(self.trace)
        chosen: Optional[int] = None
        if index < len(self.prefix):
            want = self.prefix[index]
            if want in tids:
                chosen = want
            else:
                self.drift += 1
        if chosen is None:
            chosen = (
                self._walk_choice(tids)
                if self.rng is not None
                else self._default_choice(tids)
            )
        if (
            self._last is not None
            and self._last in tids
            and chosen != self._last
        ):
            self.preemptions += 1
        self._last = chosen
        self.trace.append((tids, chosen))
        return chosen

    def _default_choice(self, tids: tuple[int, ...]) -> int:
        """Zero-preemption continuation: keep the last thread while it is
        still ready, otherwise the head of the candidate order."""
        if self._last is not None and self._last in tids:
            return self._last
        return tids[0]

    def _walk_choice(self, tids: tuple[int, ...]) -> int:
        """Seeded random walk honouring the preemption budget: once the
        budget is spent, preemptive switches are off the menu."""
        if (
            self.bound is not None
            and self.preemptions >= self.bound
            and self._last is not None
            and self._last in tids
        ):
            return self._last
        return self.rng.choice(tids)


def _inject_plan(inject: Optional[str]):
    if inject is None:
        return None
    from repro.faults.plane import FaultPlan

    if inject == "undo-drop":
        # Every rollback loses one undo entry: the canonical seeded
        # serializability defect for counterexample round-trips.
        return FaultPlan(undo_drop_rate=1.0)
    raise ValueError(
        f"unknown injected bug {inject!r}; known: {INJECTABLE_BUGS}"
    )


def run_schedule(
    scenario: CheckScenario,
    mode: str,
    controller: ScheduleController,
    *,
    inject: Optional[str] = None,
) -> tuple[JVM, str]:
    """Run one scenario under one policy, scheduled by ``controller``."""
    options = VMOptions(
        mode=mode,
        seed=CHECK_VM_SEED,
        cost_model=CostModel(quantum=1),
        max_cycles=CHECK_CYCLE_CAP,
        faults=_inject_plan(inject),
        **scenario.options,
    )
    vm = JVM(options)
    scenario.build().install(vm)
    vm.scheduler.decision_hook = controller
    outcome = "completed"
    try:
        vm.run()
    except DeadlockError:
        outcome = "deadlock"
    except StarvationError:
        outcome = "starvation"
    except UncaughtGuestException as exc:
        outcome = f"uncaught:{exc.exc_class}"
    return vm, outcome


@dataclass(frozen=True)
class CheckItem:
    """One exploration cell: pure, picklable input to :func:`run_check_cell`."""

    scenario: str
    prefix: tuple[int, ...] = ()
    modes: tuple[str, ...] = DEFAULT_MODES
    inject: Optional[str] = None
    #: non-None: continue past the prefix with a seeded random walk
    walk_seed: Optional[int] = None
    #: preemption budget for the walk portion
    walk_bound: Optional[int] = None


def run_check_cell(item: CheckItem) -> dict:
    """Execute one schedule under every policy; return plain report data."""
    scenario = get_scenario(item.scenario)
    reference = item.modes[0]
    rng = (
        DeterministicRng(item.walk_seed)
        if item.walk_seed is not None
        else None
    )
    ref_ctrl = ScheduleController(
        item.prefix, rng=rng, bound=item.walk_bound
    )
    vm, outcome = run_schedule(
        scenario, reference, ref_ctrl, inject=item.inject
    )
    outcomes = {reference: outcome}
    digests = {
        reference: fingerprint_digest(final_fingerprint(vm, outcome))
    }
    drift = {reference: ref_ctrl.drift}
    expectation_problems = (
        check_expectations(scenario, vm) if outcome == "completed" else []
    )
    for mode in item.modes[1:]:
        ctrl = ScheduleController(ref_ctrl.schedule)
        vm2, outcome2 = run_schedule(
            scenario, mode, ctrl, inject=item.inject
        )
        outcomes[mode] = outcome2
        digests[mode] = fingerprint_digest(
            final_fingerprint(vm2, outcome2)
        )
        drift[mode] = ctrl.drift
    return {
        "schedule": list(ref_ctrl.schedule),
        "candidates": [list(tids) for tids, _ in ref_ctrl.trace],
        "preemptions": ref_ctrl.preemptions,
        "outcomes": outcomes,
        "digests": digests,
        "drift": drift,
        "problems": divergence_problems(
            item.modes, outcomes, digests, expectation_problems
        ),
    }


def check_cell_key(item: CheckItem) -> str:
    """Content address of one cell (identity + repro source digest)."""
    from repro.bench.parallel import cache_key, source_digest

    return cache_key(
        "check-cell",
        item.scenario,
        item.prefix,
        item.modes,
        item.inject,
        item.walk_seed,
        item.walk_bound,
        source_digest(),
    )


def derive_children(
    prefix: tuple[int, ...], result: dict, bound: int
) -> Iterator[tuple[int, ...]]:
    """Child prefixes of one executed schedule, within the preemption bound.

    At every decision at or past the executed prefix, each unchosen
    candidate spawns the child ``schedule[:i] + (candidate,)``.  The
    child's preemption count is exact: the default continuation beyond a
    prefix never preempts, so a child's preemptions are those of its own
    choice list."""
    schedule = result["schedule"]
    candidates = result["candidates"]
    last: Optional[int] = None
    preemptions = 0
    for i, (tids, chosen) in enumerate(zip(candidates, schedule)):
        if i >= len(prefix):
            for alt in tids:
                if alt == chosen:
                    continue
                extra = (
                    1
                    if last is not None and last in tids and alt != last
                    else 0
                )
                if preemptions + extra <= bound:
                    yield tuple(schedule[:i]) + (alt,)
        if last is not None and last in tids and chosen != last:
            preemptions += 1
        last = chosen


@dataclass
class ExplorationReport:
    """Aggregated, deterministic result of one exploration."""

    scenario: str
    bound: int
    modes: tuple[str, ...]
    schedules: int = 0        # strategy cells executed (exhaustive / dpor)
    walks: int = 0            # random-walk cells executed
    distinct_schedules: int = 0
    distinct_states: int = 0  # reference-policy final-state digests
    max_decisions: int = 0
    policy_outcomes: dict = field(default_factory=dict)
    divergences: list = field(default_factory=list)
    #: which search produced the cells: "exhaustive", "dpor", or "random"
    strategy: str = "exhaustive"
    #: complete interleavings the strategy executed
    explored: int = 0
    #: prefixes abandoned as provably redundant (sleep-set prunes; 0 for
    #: the stateless strategies)
    pruned: int = 0
    #: scheduler transitions executed by the strategy's own search (dpor)
    transitions: int = 0
    #: snapshot restores performed by the strategy's own search (dpor)
    restores: int = 0
    #: (schedule, reference digest, reference outcome) per executed cell —
    #: the raw material of the DPOR soundness battery
    executions: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.divergences

    def reduction_line(self) -> str:
        """Deterministic one-line search-effort summary.  Identical for
        any ``REPRO_BENCH_JOBS`` value: every count is a pure function of
        (scenario, strategy, bound, modes, inject)."""
        return (
            f"strategy={self.strategy} explored={self.explored} "
            f"pruned={self.pruned} transitions={self.transitions} "
            f"restores={self.restores}"
        )


def summarize_results(
    scenario_name: str,
    bound: int,
    modes: tuple[str, ...],
    executed: list[dict],
    walk_results: list[dict],
    **extra,
) -> ExplorationReport:
    """Fold executed cell results into an :class:`ExplorationReport`.

    Shared by every strategy so reports stay byte-comparable; ``extra``
    carries strategy-specific fields (explored/pruned/...)."""
    reference = modes[0]
    everything = executed + walk_results
    outcome_counts: dict[str, Counter] = {m: Counter() for m in modes}
    for result in everything:
        for mode in modes:
            outcome_counts[mode][result["outcomes"][mode]] += 1
    return ExplorationReport(
        scenario=scenario_name,
        bound=bound,
        modes=modes,
        schedules=len(executed),
        walks=len(walk_results),
        distinct_schedules=len(
            {tuple(r["schedule"]) for r in everything}
        ),
        distinct_states=len(
            {r["digests"][reference] for r in everything}
        ),
        max_decisions=max(
            (len(r["schedule"]) for r in everything), default=0
        ),
        policy_outcomes={
            mode: dict(sorted(outcome_counts[mode].items()))
            for mode in modes
        },
        divergences=[r for r in everything if r["problems"]],
        executions=tuple(
            (
                tuple(r["schedule"]),
                r["digests"][reference],
                r["outcomes"][reference],
            )
            for r in everything
        ),
        **extra,
    )


def explore(
    scenario_name: str,
    bound: int,
    *,
    modes: tuple[str, ...] = DEFAULT_MODES,
    inject: Optional[str] = None,
    walks: int = 0,
    walk_bound: Optional[int] = None,
    engine=None,
    max_schedules: int = 200_000,
    exhaustive: bool = True,
) -> ExplorationReport:
    """Exhaustive bounded-preemption BFS plus optional random walks.

    With ``exhaustive=False`` the BFS is skipped entirely and only the
    seeded walks run — the CLI's ``--strategy random``.

    Random-walk cell ``k`` uses the repo-wide seed-namespace convention
    (:func:`repro.util.rng.sweep_seed`): its walk seed is
    ``sweep_seed("check", scenario_name, k)`` with ``k`` 0-based.
    """
    get_scenario(scenario_name)  # fail fast on unknown names
    if engine is None:
        from repro.bench.parallel import RunEngine

        engine = RunEngine(jobs=1)
    modes = tuple(modes)
    visited: set[tuple[int, ...]] = {()}
    frontier: list[tuple[int, ...]] = [()] if exhaustive else []
    executed: list[dict] = []
    while frontier:
        items = [
            CheckItem(scenario_name, prefix, modes, inject)
            for prefix in frontier
        ]
        results = engine.map(run_check_cell, items, key_fn=check_cell_key)
        next_frontier: list[tuple[int, ...]] = []
        for prefix, result in zip(frontier, results):
            executed.append(result)
            for child in derive_children(prefix, result, bound):
                if child not in visited:
                    visited.add(child)
                    next_frontier.append(child)
        if len(visited) > max_schedules:
            raise RuntimeError(
                f"exploration exceeded {max_schedules} schedules; "
                "shrink the scenario or the bound"
            )
        frontier = next_frontier

    walk_results: list[dict] = []
    if walks:
        walk_items = [
            CheckItem(
                scenario_name,
                (),
                modes,
                inject,
                walk_seed=sweep_seed("check", scenario_name, k),
                walk_bound=bound if walk_bound is None else walk_bound,
            )
            for k in range(walks)
        ]
        walk_results = engine.map(
            run_check_cell, walk_items, key_fn=check_cell_key
        )

    return summarize_results(
        scenario_name,
        bound,
        modes,
        executed,
        walk_results,
        strategy="exhaustive" if exhaustive else "random",
        explored=len(executed) + len(walk_results),
    )
