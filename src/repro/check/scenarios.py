"""Small guest programs for schedule exploration.

Exploration cost is exponential in program length, so these scenarios are
deliberately tiny: a handful of threads, two or three yield points per
critical section.  What matters is that each one embodies a distinct
synchronization shape:

* ``handoff`` — the paper's core scenario: a low-priority and a
  high-priority thread contend on one lock around a shared counter.
  Preemptive schedules make the high thread arrive mid-section, which
  (on the rollback VM) triggers inversion detection and revocation; the
  counter's final value must nevertheless equal the fixed total under
  *every* policy — the serializability claim in miniature (§3).
* ``barge`` — three priorities on one lock: exercises the prioritized
  entry queue and multi-candidate scheduling decisions.
* ``racy-yield`` — increments with *no* lock and an explicit yield
  between read and write: the classic lost-update race.  Final states
  legitimately differ across schedules (but never across policies for
  one schedule); the lockset pass must flag the race.
* ``lock-order`` — two locks acquired in opposite orders by two threads:
  feeds the lock-order-inversion detector; some schedules deadlock under
  blocking policies while revocation resolves them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.bench.workloads import Workload
from repro.vm.assembler import Asm
from repro.vm.classfile import ClassDef, FieldDef

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vmcore import JVM


@dataclass(frozen=True)
class CheckScenario:
    """One explorable guest program plus its oracle expectations."""

    name: str
    description: str
    build: Callable[[], Workload]
    #: VMOptions overrides applied identically in every policy mode
    options: dict = field(default_factory=dict)
    #: expected final static values ``(class, field) -> value`` asserted on
    #: the reference run of every schedule (None = schedule-dependent)
    expected_statics: Optional[dict] = None


def _counter_increments(run: Asm, cls: str, i: int, iters_arg: int,
                        *, yield_between: bool) -> None:
    """Emit ``for (i = 0; i < iters; i++) counter++`` with an optional
    explicit yield between the read and the write of the counter."""
    def increment() -> None:
        run.getstatic(cls, "counter")
        if yield_between:
            run.yield_()
        run.const(1).add()
        run.putstatic(cls, "counter")

    run.for_range(i, lambda: run.load(iters_arg), increment)


def build_locked_counter(
    cls_name: str,
    spawns: list[tuple[int, str]],
    *,
    sections: int = 2,
    iters: int = 2,
) -> Workload:
    """``spawns`` threads each run ``sections`` synchronized sections on one
    shared lock, incrementing a static counter ``iters`` times per section.
    Final counter = ``len(spawns) * sections * iters`` in any legal
    serialization."""
    cls = ClassDef(
        cls_name,
        fields=[
            FieldDef("lock", "ref", is_static=True),
            FieldDef("counter", "int", is_static=True),
        ],
    )
    run = Asm("run", argc=1)
    iters_arg = run.arg(0)
    s = run.local("s")
    i = run.local("i")

    def section_body() -> None:
        run.getstatic(cls_name, "lock")
        with run.sync():
            _counter_increments(run, cls_name, i, iters_arg,
                                yield_between=False)

    run.for_range(s, lambda: run.const(sections), section_body)
    run.ret()
    cls.add_method(run.build())

    def setup(vm: "JVM") -> None:
        vm.set_static(cls_name, "lock", vm.new_object(cls_name))

    return Workload(
        name=cls_name.lower(),
        classdef=cls,
        setup=setup,
        spawns=[
            ("run", [iters], priority, name) for priority, name in spawns
        ],
    )


def build_paired_handoffs(
    cls_name: str,
    pairs: int,
    *,
    sections: int = 1,
    iters: int = 1,
) -> Workload:
    """``pairs`` low/high priority thread pairs, each contending on its
    *own* lock around its own counter slot.  Pairs are mutually
    independent, so the schedule space is the product of the per-pair
    spaces — exhaustive enumeration explodes combinatorially while a
    partial-order-reducing strategy collapses the cross-pair orderings.
    Every counter slot ends at ``sections * iters`` in any legal
    serialization."""
    cls = ClassDef(
        cls_name,
        fields=[
            FieldDef("locks", "ref", is_static=True),
            FieldDef("counters", "ref", is_static=True),
        ],
    )
    run = Asm("run", argc=2)
    pair = run.arg(0)
    iters_arg = run.arg(1)
    s = run.local("s")
    i = run.local("i")

    def increment() -> None:
        # counters[pair] = counters[pair] + 1
        run.getstatic(cls_name, "counters").load(pair)
        run.getstatic(cls_name, "counters").load(pair).aload()
        run.const(1).add()
        run.astore()

    def section_body() -> None:
        run.getstatic(cls_name, "locks").load(pair).aload()
        with run.sync():
            run.for_range(i, lambda: run.load(iters_arg), increment)

    run.for_range(s, lambda: run.const(sections), section_body)
    run.ret()
    cls.add_method(run.build())

    def setup(vm: "JVM") -> None:
        locks = vm.new_array(pairs)
        counters = vm.new_array(pairs)
        for k in range(pairs):
            locks.put(k, vm.new_object(cls_name))
            counters.put(k, 0)
        vm.set_static(cls_name, "locks", locks)
        vm.set_static(cls_name, "counters", counters)

    spawns = []
    for k in range(pairs):
        spawns.append(("run", [k, iters], 1, f"low{k}"))
        spawns.append(("run", [k, iters], 10, f"high{k}"))
    return Workload(
        name=cls_name.lower(), classdef=cls, setup=setup, spawns=spawns
    )


def build_racy_counter(*, iters: int = 3) -> Workload:
    """Two threads increment an unprotected counter with a yield between
    the read and the write: lost updates under preemptive schedules."""
    cls = ClassDef(
        "Racy", fields=[FieldDef("counter", "int", is_static=True)]
    )
    run = Asm("run", argc=1)
    iters_arg = run.arg(0)
    i = run.local("i")
    _counter_increments(run, "Racy", i, iters_arg, yield_between=True)
    run.ret()
    cls.add_method(run.build())
    return Workload(
        name="racy",
        classdef=cls,
        setup=lambda vm: None,
        spawns=[("run", [iters], 5, "t1"), ("run", [iters], 5, "t2")],
    )


def build_lock_order(*, iters: int = 2) -> Workload:
    """Two threads nest two locks in opposite orders (deadlock-prone)."""
    cls = ClassDef(
        "LockOrder",
        fields=[
            FieldDef("locks", "ref", is_static=True),
            FieldDef("counter", "int", is_static=True),
        ],
    )
    run = Asm("run", argc=2)
    first, second = run.arg(0), run.arg(1)
    i = run.local("i")
    iters_local = run.local("n")
    run.const(iters).store(iters_local)
    run.getstatic("LockOrder", "locks").load(first).aload()
    with run.sync():
        run.getstatic("LockOrder", "locks").load(second).aload()
        with run.sync():
            _counter_increments(run, "LockOrder", i, iters_local,
                                yield_between=False)
    run.ret()
    cls.add_method(run.build())

    def setup(vm: "JVM") -> None:
        locks = vm.new_array(2)
        locks.put(0, vm.new_object("LockOrder"))
        locks.put(1, vm.new_object("LockOrder"))
        vm.set_static("LockOrder", "locks", locks)

    return Workload(
        name="lock-order",
        classdef=cls,
        setup=setup,
        spawns=[("run", [0, 1], 5, "t1"), ("run", [1, 0], 5, "t2")],
    )


def _scenario_list() -> list[CheckScenario]:
    return [
        CheckScenario(
            name="handoff",
            description="low/high contention on one lock; revocation "
                        "hand-off must preserve the counter total",
            build=lambda: build_locked_counter(
                "Handoff", [(1, "low"), (10, "high")],
                sections=2, iters=2,
            ),
            expected_statics={("Handoff", "counter"): 2 * 2 * 2},
        ),
        CheckScenario(
            name="barge",
            description="three priorities barging on one lock",
            build=lambda: build_locked_counter(
                "Barge", [(2, "t-lo"), (5, "t-mid"), (9, "t-hi")],
                sections=1, iters=2,
            ),
            expected_statics={("Barge", "counter"): 3 * 1 * 2},
        ),
        CheckScenario(
            name="mini-handoff",
            description="handoff shrunk to one section and one increment "
                        "per thread: small enough for full (unbounded) "
                        "exhaustive enumeration — the DPOR soundness "
                        "battery's anchor",
            build=lambda: build_locked_counter(
                "MiniHandoff", [(1, "low"), (10, "high")],
                sections=1, iters=1,
            ),
            expected_statics={("MiniHandoff", "counter"): 2 * 1 * 1},
        ),
        CheckScenario(
            name="mini-barge",
            description="barge shrunk to one increment per section: "
                        "three priorities, one lock, small enough for "
                        "full exhaustive enumeration",
            build=lambda: build_locked_counter(
                "MiniBarge", [(2, "t-lo"), (5, "t-mid"), (9, "t-hi")],
                sections=1, iters=1,
            ),
            expected_statics={("MiniBarge", "counter"): 3 * 1 * 1},
        ),
        CheckScenario(
            name="mini-racy",
            description="one unprotected read-yield-write increment per "
                        "thread: the smallest scenario with genuinely "
                        "schedule-dependent final states",
            build=lambda: build_racy_counter(iters=1),
            expected_statics=None,
        ),
        CheckScenario(
            name="pileup4",
            description="four priorities piling onto one lock: the DPOR "
                        "battery's largest fully-enumerable member",
            build=lambda: build_locked_counter(
                "Pileup4",
                [(1, "t1"), (4, "t2"), (7, "t3"), (10, "t4")],
                sections=1, iters=1,
            ),
            expected_statics={("Pileup4", "counter"): 4 * 1 * 1},
        ),
        CheckScenario(
            name="handoff-trio",
            description="three independent low/high handoff pairs on "
                        "three locks (6 threads, monitors + revocation): "
                        "the DPOR acceptance scenario — the product "
                        "schedule space is far beyond exhaustive "
                        "enumeration, but cross-pair slices commute",
            build=lambda: build_paired_handoffs(
                "HandoffTrio", 3, sections=1, iters=1,
            ),
            expected_statics=None,
        ),
        CheckScenario(
            name="pileup6",
            description="six priorities piling onto one lock with "
                        "revocation in play: the DPOR acceptance "
                        "scenario — exhaustive enumeration is infeasible",
            build=lambda: build_locked_counter(
                "Pileup6",
                [(1, "t1"), (2, "t2"), (4, "t3"),
                 (6, "t4"), (8, "t5"), (10, "t6")],
                sections=1, iters=1,
            ),
            expected_statics={("Pileup6", "counter"): 6 * 1 * 1},
        ),
        CheckScenario(
            name="racy-yield",
            description="unprotected read-yield-write increments: lost "
                        "updates across schedules, a data race for the "
                        "lockset pass",
            build=lambda: build_racy_counter(iters=3),
            expected_statics=None,
        ),
        CheckScenario(
            name="lock-order",
            description="opposite-order nested locks: lock-order "
                        "inversion, deadlock-prone under blocking "
                        "policies",
            build=lambda: build_lock_order(iters=2),
            expected_statics=None,
        ),
    ]


def scenarios() -> dict[str, CheckScenario]:
    """The scenario registry (rebuilt on demand; source-identical in every
    worker process, like the campaign's)."""
    return {s.name: s for s in _scenario_list()}


def get_scenario(name: str) -> CheckScenario:
    try:
        return scenarios()[name]
    except KeyError:
        raise ValueError(
            f"unknown check scenario {name!r}; "
            f"known: {', '.join(sorted(scenarios()))}"
        ) from None
