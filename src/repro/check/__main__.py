"""Command-line schedule checker.

Usage::

    PYTHONPATH=src python -m repro.check --scenario handoff --bound 2
    PYTHONPATH=src python -m repro.check --scenario barge --bound 2 --jobs 4
    PYTHONPATH=src python -m repro.check --scenario handoff --bound 1 \\
        --inject-bug undo-drop --out counterexample.json
    PYTHONPATH=src python -m repro.check --replay counterexample.json
    PYTHONPATH=src python -m repro.check --lockset fig5
    PYTHONPATH=src python -m repro.check --lockset racy-yield

Exit status 0 when the oracle saw no divergence (or the lockset pass saw
no race/inversion), 1 otherwise.  Everything on stdout is a pure function
of the arguments — byte-identical across ``REPRO_BENCH_JOBS`` settings and
cache state; engine statistics go to stderr.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.check.explorer import DEFAULT_MODES, INJECTABLE_BUGS, explore
from repro.check.minimize import minimize_counterexample
from repro.check.oracle import (
    counterexample_payload,
    replay_counterexample,
)
from repro.check.scenarios import scenarios


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="schedule exploration with a cross-policy "
                    "differential oracle",
    )
    parser.add_argument(
        "--scenario", default="handoff",
        help="check scenario to explore (see --list; default handoff)",
    )
    parser.add_argument(
        "--strategy", default="exhaustive",
        choices=("exhaustive", "dpor", "random"),
        help="search strategy: exhaustive bounded-preemption BFS, "
             "dynamic partial-order reduction with sleep sets, or "
             "seeded random walks only (default exhaustive)",
    )
    parser.add_argument(
        "--bound", type=int, default=2,
        help="preemption bound for exhaustive exploration (default 2; "
             "ignored by --strategy dpor)",
    )
    parser.add_argument(
        "--walks", type=int, default=0,
        help="additional seeded random-walk schedules (default 0)",
    )
    parser.add_argument(
        "--walk-bound", type=int, default=None,
        help="preemption budget for walks (default: same as --bound)",
    )
    parser.add_argument(
        "--modes", default=",".join(DEFAULT_MODES),
        help="comma-separated policies; the first is the reference "
             f"(default {','.join(DEFAULT_MODES)})",
    )
    parser.add_argument(
        "--inject-bug", default=None, choices=INJECTABLE_BUGS,
        help="enable a seeded defect so the oracle has something to find",
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="skip ddmin minimization of the first divergence",
    )
    parser.add_argument(
        "--out", default="check-counterexample.json",
        help="where to write the counterexample on divergence",
    )
    parser.add_argument(
        "--replay", default=None, metavar="PATH",
        help="replay a serialized counterexample instead of exploring",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="with --replay: also re-run the minimized schedule with "
             "tracing/profiling on and write a Perfetto-openable Chrome "
             "trace to PATH (see repro.obs)",
    )
    parser.add_argument(
        "--trace-mode", default=None, metavar="MODE",
        help="policy to trace with --trace-out (default: the "
             "counterexample's reference mode)",
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="with --replay: open the counterexample in the time-travel "
             "debugger (repro.obs.debug) after replaying",
    )
    parser.add_argument(
        "--debug-seek", type=int, default=None, metavar="CYCLE",
        help="with --replay --debug: position at virtual cycle CYCLE "
             "instead of the start",
    )
    parser.add_argument(
        "--debug-state", action="store_true",
        help="with --replay --debug: print the inspector state and exit "
             "(headless; no REPL)",
    )
    parser.add_argument(
        "--lockset", default=None, metavar="TARGET",
        help="run the Eraser-style lockset pass over TARGET (a scenario "
             "name, or 'fig5' for the micro-benchmark) instead of "
             "exploring",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default REPRO_BENCH_JOBS or cpu count; "
             "1 = serial)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    from repro.fleet.cli import add_fleet_args

    add_fleet_args(parser)
    return parser


def _engine(args):
    from repro.bench.parallel import RunEngine
    from repro.fleet.cli import resolve_fleet_engine

    engine = RunEngine.from_env()
    if args.jobs is not None:
        engine = RunEngine(jobs=max(1, args.jobs), cache=engine.cache)
    fleet = resolve_fleet_engine(args, engine.cache)
    return fleet if fleet is not None else engine


def _cmd_list() -> int:
    for name, scenario in sorted(scenarios().items()):
        print(f"{name}: {scenario.description}")
    return 0


def _cmd_replay(
    path: str,
    trace_out: str | None = None,
    trace_mode: str | None = None,
    debug: bool = False,
    debug_seek: int | None = None,
    debug_state: bool = False,
) -> int:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    verdict = replay_counterexample(payload)
    result = verdict["result"]
    print(f"replay: scenario={payload['scenario']} "
          f"schedule={payload['minimized_schedule']}")
    for mode in payload["modes"]:
        print(f"  {mode}: outcome={result['outcomes'][mode]} "
              f"digest={result['digests'][mode]}")
    for problem in result["problems"]:
        print(f"  problem: {problem}")
    if trace_out is not None:
        from repro.obs.capture import capture_replay

        artifact = capture_replay(payload, mode=trace_mode)
        with open(trace_out, "w", encoding="utf-8") as fh:
            fh.write(artifact["chrome_json"])
        print(
            f"chrome trace of the {artifact['mode']} replay written to "
            f"{trace_out} (open at https://ui.perfetto.dev)",
            file=sys.stderr,
        )
    if debug:
        from repro.obs.debug import (
            DebugSession,
            record_replay,
            render_state,
            repl,
        )

        session = DebugSession(record_replay(payload, mode=trace_mode))
        if debug_seek is not None:
            session.seek(debug_seek)
        if debug_state:
            print(render_state(session.state()))
        else:
            repl(session)
    if verdict["reproduced"]:
        print("divergence reproduced")
        return 0
    print("divergence did NOT reproduce")
    return 1


def _cmd_lockset(target: str) -> int:
    if target == "fig5":
        from repro.check.lockset import run_lockset_fig5

        report = run_lockset_fig5()
    else:
        from repro.check.lockset import run_lockset_scenario

        report = run_lockset_scenario(target)
    print(json.dumps(report, indent=2, sort_keys=True))
    bad = len(report["races"]) + len(report["lock_order_inversions"])
    if bad:
        print(f"FAIL: {len(report['races'])} race(s), "
              f"{len(report['lock_order_inversions'])} lock-order "
              "inversion(s)", file=sys.stderr)
        return 1
    print("OK: no races, no lock-order inversions", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        return _cmd_list()
    if args.fleet == "worker":
        from repro.fleet.cli import run_fleet_worker

        return run_fleet_worker(args)
    if args.replay is not None:
        return _cmd_replay(
            args.replay, args.trace_out, args.trace_mode,
            debug=args.debug, debug_seek=args.debug_seek,
            debug_state=args.debug_state,
        )
    if args.lockset is not None:
        return _cmd_lockset(args.lockset)

    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    engine = _engine(args)
    try:
        if args.strategy == "dpor":
            from repro.check.dpor import explore_dpor

            report = explore_dpor(
                args.scenario,
                modes=modes,
                inject=args.inject_bug,
                engine=engine,
            )
        else:
            report = explore(
                args.scenario,
                args.bound,
                modes=modes,
                inject=args.inject_bug,
                walks=args.walks if args.strategy == "exhaustive"
                else (args.walks or 64),
                walk_bound=args.walk_bound,
                engine=engine,
                exhaustive=args.strategy == "exhaustive",
            )
    finally:
        engine.close()
    bound_part = "" if report.bound < 0 else f" bound={report.bound}"
    print(f"repro.check scenario={report.scenario} "
          f"strategy={report.strategy}{bound_part} "
          f"modes={','.join(report.modes)}"
          + (f" inject={args.inject_bug}" if args.inject_bug else ""))
    print(f"schedules: {report.schedules} searched + {report.walks} "
          f"walks ({report.distinct_schedules} distinct), "
          f"max {report.max_decisions} decisions")
    print(f"reduction: {report.reduction_line()}")
    print(f"states: {report.distinct_states} distinct final state(s) "
          f"under {report.modes[0]}")
    for mode in report.modes:
        summary = ", ".join(
            f"{outcome}={count}"
            for outcome, count in report.policy_outcomes[mode].items()
        )
        print(f"  {mode}: {summary}")
    print(f"divergences: {len(report.divergences)}")
    print(f"repro.check {report.reduction_line()}", file=sys.stderr)
    print(engine.stats.render(), file=sys.stderr)
    for line in engine.stats.render_workers():
        print(line, file=sys.stderr)
    if not report.divergences:
        print("OK: all explored schedules are policy-equivalent")
        return 0

    first = report.divergences[0]
    for problem in first["problems"]:
        print(f"  problem: {problem}")
    schedule = list(first["schedule"])
    minimized = schedule
    if not args.no_minimize:
        minimized = minimize_counterexample(
            args.scenario, schedule, modes=modes, inject=args.inject_bug,
        )
    payload = counterexample_payload(
        scenario=args.scenario,
        bound=args.bound,
        modes=modes,
        inject=args.inject_bug,
        result=first,
        minimized=minimized,
    )
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"counterexample: schedule of {len(schedule)} choices "
          f"minimized to {len(minimized)}, written to {args.out}")
    print(f"FAIL: {len(report.divergences)} divergent schedule(s)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
