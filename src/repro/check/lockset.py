"""Eraser-style dynamic lockset analysis over the VM trace stream.

Consumes trace events as a streaming :class:`repro.vm.tracing.Tracer`
sink — monitor events (``acquire``/``release``/``rollback_release``/
``wait``/``wait_return``/...) maintain each thread's held-lock multiset,
and memory events (``mem_read``/``mem_write``, emitted when
``VMOptions.trace_memory`` is on) drive the per-location state machine:

    Virgin -> Exclusive(first thread) -> Shared / Shared-Modified

with the *candidate lockset* of a location intersected with the accessing
thread's held locks on every access after the location becomes shared.  A
location in Shared-Modified with an empty candidate lockset is reported as
a data race (Savage et al., "Eraser", SOSP '97).  Unlike a happens-before
detector, the lockset discipline flags racy *access patterns* even on
schedules where the race did not strike.

The pass also records the lock-order graph — an edge ``a -> b`` whenever a
thread acquires ``b`` while holding ``a`` — and reports every antisymmetric
pair (both ``a -> b`` and ``b -> a`` observed) as a lock-order inversion:
the dynamic witness of deadlock potential.

Caveats (documented, deliberate): initialization writes by the *host*
(workload ``setup``) precede tracing and are invisible, matching Eraser's
virgin-state grace for initialization; a ``wait`` drops every recursion
level of the waited monitor and ``wait_return`` restores depth 1, so
locksets are approximate for threads that ``wait`` while holding a
monitor recursively (none of our guests do).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.tracing import TraceEvent

VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MOD = "shared-modified"

#: monitor-event kinds that drop the monitor from the holder entirely
_FULL_RELEASE_KINDS = (
    "rollback_release",
    "leaked_monitor",
    "handoff_returned",
    "wait",
)


class _LocationState:
    __slots__ = ("state", "first_thread", "lockset", "threads")

    def __init__(self) -> None:
        self.state = VIRGIN
        self.first_thread: Optional[str] = None
        self.lockset: Optional[frozenset] = None
        self.threads: set[str] = set()


class LocksetAnalyzer:
    """Streaming lockset + lock-order analysis (register as a tracer sink)."""

    def __init__(self) -> None:
        #: thread name -> lock label -> recursion depth
        self._held: dict[str, dict[str, int]] = {}
        self._locations: dict[tuple, _LocationState] = {}
        #: (held lock, acquired lock) -> thread names that created the edge
        self._edges: dict[tuple[str, str], set[str]] = {}
        self._raced: set[tuple] = set()
        self.races: list[dict] = []

    # ------------------------------------------------------------- sink API
    def __call__(self, event: "TraceEvent") -> None:
        self.feed(event)

    def feed(self, event: "TraceEvent") -> None:
        kind = event.kind
        if kind == "mem_read":
            self._access(event.thread, event.details["loc"], write=False)
        elif kind == "mem_write":
            self._access(event.thread, event.details["loc"], write=True)
        elif kind == "acquire":
            self._acquire(event.thread, event.details["mon"])
        elif kind == "release":
            self._release(event.thread, event.details["mon"])
        elif kind == "wait_return":
            # the waiter owns the monitor again (depth approximated as 1)
            self._held.setdefault(event.thread, {})[
                event.details["mon"]
            ] = 1
        elif kind in _FULL_RELEASE_KINDS:
            self._held.get(event.thread, {}).pop(
                event.details["mon"], None
            )

    # ------------------------------------------------------------- tracking
    def _acquire(self, thread: str, mon: str) -> None:
        held = self._held.setdefault(thread, {})
        depth = held.get(mon, 0)
        if depth == 0:
            for other in held:
                if other != mon:
                    self._edges.setdefault((other, mon), set()).add(thread)
        held[mon] = depth + 1

    def _release(self, thread: str, mon: str) -> None:
        held = self._held.get(thread)
        if held is None or mon not in held:
            return
        held[mon] -= 1
        if held[mon] <= 0:
            del held[mon]

    def _access(self, thread: str, loc: tuple, *, write: bool) -> None:
        loc = tuple(loc)
        held = frozenset(self._held.get(thread, ()))
        st = self._locations.setdefault(loc, _LocationState())
        st.threads.add(thread)
        if st.state == VIRGIN:
            st.state = EXCLUSIVE
            st.first_thread = thread
            return
        if st.state == EXCLUSIVE:
            if thread == st.first_thread:
                return
            # second thread arrives: the candidate lockset starts here
            st.lockset = held
            st.state = SHARED_MOD if write else SHARED
        else:
            st.lockset &= held
            if write:
                st.state = SHARED_MOD
        if st.state == SHARED_MOD and not st.lockset:
            self._report_race(loc, st, write)

    def _report_race(
        self, loc: tuple, st: _LocationState, write: bool
    ) -> None:
        if loc in self._raced:
            return
        self._raced.add(loc)
        self.races.append(
            {
                "location": list(loc),
                "threads": sorted(st.threads),
                "access": "write" if write else "read",
            }
        )

    # --------------------------------------------------------------- report
    def lock_order_inversions(self) -> list[dict]:
        inversions = []
        for a, b in sorted(self._edges):
            if a < b and (b, a) in self._edges:
                inversions.append(
                    {
                        "locks": [a, b],
                        "threads": sorted(
                            self._edges[(a, b)] | self._edges[(b, a)]
                        ),
                    }
                )
        return inversions

    def report(self) -> dict:
        """Deterministic summary (sorted; safe to diff across runs)."""
        return {
            "locations": len(self._locations),
            "races": sorted(self.races, key=lambda r: str(r["location"])),
            "lock_order_inversions": self.lock_order_inversions(),
        }


# ------------------------------------------------------------ entry points
def _lockset_vm(options, build_and_install) -> dict:
    """Run a traced VM with the analyzer attached; return its report."""
    from repro.vm.vmcore import JVM

    vm = JVM(options)
    analyzer = LocksetAnalyzer()
    vm.tracer.add_sink(analyzer.feed)
    vm.tracer.store = False  # stream-only: memory stays flat
    build_and_install(vm)
    vm.run()
    return analyzer.report()


def run_lockset_scenario(name: str, *, mode: str = "rollback") -> dict:
    """Lockset pass over one check scenario's default-policy execution."""
    from repro.check.explorer import CHECK_CYCLE_CAP, CHECK_VM_SEED
    from repro.check.scenarios import get_scenario
    from repro.vm.vmcore import VMOptions

    scenario = get_scenario(name)
    options = VMOptions(
        mode=mode,
        seed=CHECK_VM_SEED,
        trace=True,
        trace_memory=True,
        max_cycles=CHECK_CYCLE_CAP,
        **scenario.options,
    )
    return _lockset_vm(options, lambda vm: scenario.build().install(vm))


def run_lockset_fig5(*, mode: str = "rollback") -> dict:
    """Lockset pass over a compact Fig. 5-shaped micro-benchmark run.

    Every shared-array access sits inside the one global lock, so the
    report must show zero races and zero inversions — the CI smoke
    contract."""
    from repro.bench.microbench import MicrobenchConfig, setup_microbench_vm
    from repro.vm.vmcore import VMOptions

    config = MicrobenchConfig(
        high_threads=1,
        low_threads=2,
        iters_high=30,
        iters_low=60,
        sections=3,
        write_pct=50,
        array_size=8,
        pause_mean=2_000,
    )
    options = VMOptions(
        mode=mode,
        seed=config.seed,
        trace=True,
        trace_memory=True,
        max_cycles=40_000_000,
    )
    return _lockset_vm(options, lambda vm: setup_microbench_vm(vm, config))
