"""Delta-debugging minimization of schedule choice lists.

A counterexample schedule from the explorer is typically padded with
choices that merely replay the default policy.  Classic ddmin (Zeller &
Hildebrandt) shrinks the choice list to a locally 1-minimal subsequence
that still reproduces the divergence: remove chunks at decreasing
granularity, keeping any removal that still fails the oracle.

Removing *interior* choices is sound because the controller treats the
choice list as advisory: a choice that no longer matches a candidate set
falls back to the default policy (drift), so every subsequence is a valid
schedule — it just may reproduce or not, which is exactly what the test
predicate decides.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence


def ddmin(
    test: Callable[[list[int]], bool], schedule: Sequence[int]
) -> list[int]:
    """Smallest (locally 1-minimal) subsequence of ``schedule`` for which
    ``test`` still returns True.

    ``test`` must be deterministic and must hold for ``schedule`` itself.
    """
    current = list(schedule)
    if not test(current):
        raise ValueError("initial schedule does not satisfy the predicate")
    granularity = 2
    while len(current) >= 2:
        chunk = math.ceil(len(current) / granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            if test(candidate):
                current = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    if len(current) == 1 and test([]):
        current = []
    return current


def minimize_counterexample(
    scenario: str,
    schedule: Sequence[int],
    *,
    modes: tuple[str, ...],
    inject: str | None = None,
) -> list[int]:
    """ddmin a divergent schedule down to a minimal reproducing prefix.

    The predicate re-runs the full differential cell (reference policy
    plus projections) for each candidate choice list — slow but exact,
    and every probe is deterministic, so the minimized schedule is too.
    """
    from repro.check.explorer import CheckItem, run_check_cell

    def reproduces(candidate: list[int]) -> bool:
        item = CheckItem(
            scenario=scenario,
            prefix=tuple(candidate),
            modes=modes,
            inject=inject,
        )
        return bool(run_check_cell(item)["problems"])

    return ddmin(reproduces, schedule)
