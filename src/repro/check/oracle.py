"""The cross-policy differential oracle.

The paper's correctness claim (§3) is *serializability*: an execution in
which synchronized sections are preempted and rolled back must be
equivalent to some legal execution in which each section ran under plain
mutual exclusion.  The oracle operationalizes that claim: run one explored
schedule under every policy — ``rollback`` (the paper), ``inheritance``
(classical avoidance) and ``unmodified`` (plain blocking monitors) — and
require that every run that *completes* quiesces in the same
guest-observable final state.

What "same final state" means here:

* the **structural render of all static roots** — every static field,
  with reachable objects and arrays rendered by shape (class name, field
  names, element values) and *never* by object id: allocation order
  differs across interleavings, so oids are not guest-observable;
* the set of **uncaught guest exceptions** (per thread, by class);
* **quiescence violations**: any monitor still held or queued after the
  VM drained, and the policy support's own residual state
  (:meth:`repro.vm.support.RuntimeSupport.state_fingerprint` —
  undrained undo logs, uncommitted sections, unreturned priority
  boosts).  A clean run contributes empty lists, so this term only
  perturbs the digest when a policy actually corrupted something.

Runs that end in ``DeadlockError`` under a blocking policy while the
rollback VM revokes its way out are a *legal* policy difference (breaking
deadlocks is the paper's §1 selling point); outcomes are therefore
reported per mode but only completed runs join the digest comparison.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.vm.heap import VMArray, VMObject
from repro.vm.values import NULL

#: bump when the fingerprint schema changes (part of cache keys)
FINGERPRINT_VERSION = 1

COUNTEREXAMPLE_FORMAT = "repro-check-counterexample/1"


# ------------------------------------------------------------ fingerprints
def _render(value: Any, on_path: set) -> Any:
    """Structural, oid-free render of one guest value (JSON-serializable)."""
    if value is NULL or value is None:
        return None
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, VMArray):
        if value.oid in on_path:
            return ["cycle"]
        on_path.add(value.oid)
        try:
            return ["array", [_render(v, on_path) for v in value.storage]]
        finally:
            on_path.discard(value.oid)
    if isinstance(value, VMObject):
        if value.oid in on_path:
            return ["cycle"]
        on_path.add(value.oid)
        try:
            return [
                "object",
                value.classdef.name,
                [
                    [name, _render(value.fields[name], on_path)]
                    for name in sorted(value.fields)
                ],
            ]
        finally:
            on_path.discard(value.oid)
    return ["opaque", type(value).__name__]


def _monitor_violations(vm) -> list[str]:
    """Monitors still held/contended at quiescence, found from the static
    roots and class objects (sorted, path-labelled, oid-free)."""
    violations: list[str] = []
    seen: set[int] = set()

    def visit(value: Any, path: str) -> None:
        if isinstance(value, (VMObject, VMArray)):
            if value.oid in seen:
                return
            seen.add(value.oid)
            mon = value.monitor
            if mon is not None and (
                mon.is_locked() or mon.entry_queue or mon.wait_set
            ):
                owner = mon.owner.name if mon.owner is not None else None
                violations.append(
                    f"{path}: owner={owner} queued={len(mon.entry_queue)} "
                    f"waiting={len(mon.wait_set)}"
                )
            if isinstance(value, VMArray):
                for idx, v in enumerate(value.storage):
                    visit(v, f"{path}[{idx}]")
            else:
                for name in sorted(value.fields):
                    visit(value.fields[name], f"{path}.{name}")

    for (cls, fname) in sorted(vm.heap.statics):
        visit(vm.heap.statics[(cls, fname)], f"{cls}.{fname}")
    for cls in sorted(vm.heap.class_objects):
        visit(vm.heap.class_objects[cls], f"class:{cls}")
    return sorted(violations)


def final_fingerprint(vm, outcome: str) -> dict:
    """The guest-observable final state of a quiesced VM (plain data)."""
    statics = {
        f"{cls}.{fname}": _render(value, set())
        for (cls, fname), value in sorted(vm.heap.iter_statics())
    }
    uncaught = sorted(
        f"{thread.name}:{exc.classdef.name}" for thread, exc in vm.uncaught
    )
    support_fp = vm.support.state_fingerprint()
    return {
        "version": FINGERPRINT_VERSION,
        "outcome": outcome,
        "statics": statics,
        "uncaught": uncaught,
        "monitor_violations": _monitor_violations(vm),
        "support_violations": sorted(support_fp.get("violations", [])),
    }


def fingerprint_digest(fingerprint: dict) -> str:
    """Short stable digest of a fingerprint (canonical-JSON sha256)."""
    blob = json.dumps(
        fingerprint, sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


# -------------------------------------------------------------- divergence
def check_expectations(scenario, vm) -> list[str]:
    """Compare a completed reference run against the scenario's declared
    final statics (when it declares any)."""
    expected = scenario.expected_statics
    if not expected:
        return []
    problems = []
    for (cls, fname), want in sorted(expected.items()):
        got = vm.get_static(cls, fname)
        if got != want:
            problems.append(
                f"expected {cls}.{fname} == {want!r}, got {got!r}"
            )
    return problems


def divergence_problems(
    modes: tuple[str, ...],
    outcomes: dict[str, str],
    digests: dict[str, str],
    expectation_problems: list[str],
) -> list[str]:
    """The oracle verdict for one schedule: a (possibly empty) list of
    human-readable divergence descriptions."""
    problems = list(expectation_problems)
    completed = [m for m in modes if outcomes.get(m) == "completed"]
    if len({digests[m] for m in completed}) > 1:
        detail = ", ".join(f"{m}={digests[m]}" for m in completed)
        problems.append(f"final-state divergence: {detail}")
    reference = modes[0]
    if outcomes.get(reference) not in ("completed",):
        problems.append(
            f"reference policy {reference!r} did not complete: "
            f"{outcomes.get(reference)}"
        )
    return problems


# --------------------------------------------------------- counterexamples
def counterexample_payload(
    *,
    scenario: str,
    bound: int,
    modes: tuple[str, ...],
    inject: str | None,
    result: dict,
    minimized: list[int],
) -> dict:
    """Serializable, replayable record of one divergent schedule."""
    return {
        "format": COUNTEREXAMPLE_FORMAT,
        "scenario": scenario,
        "bound": bound,
        "modes": list(modes),
        "inject": inject,
        "schedule": list(result["schedule"]),
        "minimized_schedule": list(minimized),
        "problems": list(result["problems"]),
        "outcomes": dict(result["outcomes"]),
        "digests": dict(result["digests"]),
    }


def replay_counterexample(payload: dict) -> dict:
    """Re-run a serialized counterexample's minimized schedule.

    Returns ``{"result": <fresh cell result>, "reproduced": bool}`` where
    ``reproduced`` means the replay still exhibits a divergence."""
    if payload.get("format") != COUNTEREXAMPLE_FORMAT:
        raise ValueError(
            f"not a {COUNTEREXAMPLE_FORMAT} payload: "
            f"{payload.get('format')!r}"
        )
    from repro.check.explorer import CheckItem, run_check_cell

    item = CheckItem(
        scenario=payload["scenario"],
        prefix=tuple(payload["minimized_schedule"]),
        modes=tuple(payload["modes"]),
        inject=payload.get("inject"),
    )
    result = run_check_cell(item)
    return {"result": result, "reproduced": bool(result["problems"])}
