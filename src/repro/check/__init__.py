"""Schedule-exploration checking: systematic interleaving coverage.

The deterministic VM makes every schedule a pure function of its choice
list; this package turns that determinism into a verification engine:

* :mod:`repro.check.explorer` — CHESS-style bounded-preemption
  enumeration of scheduler decisions, plus seeded random walks;
* :mod:`repro.check.oracle` — the cross-policy differential oracle
  (rollback vs. inheritance vs. unmodified must agree on final state);
* :mod:`repro.check.lockset` — Eraser-style dynamic data-race and
  lock-order-inversion detection over the trace stream;
* :mod:`repro.check.minimize` — ddmin schedule minimization;
* ``python -m repro.check`` — the command-line front end.

See ``docs/checking.md`` for the algorithm and the counterexample format.
"""

from repro.check.explorer import (
    DEFAULT_MODES,
    CheckItem,
    ExplorationReport,
    ScheduleController,
    explore,
    run_check_cell,
    run_schedule,
)
from repro.check.lockset import (
    LocksetAnalyzer,
    run_lockset_fig5,
    run_lockset_scenario,
)
from repro.check.minimize import ddmin, minimize_counterexample
from repro.check.oracle import (
    COUNTEREXAMPLE_FORMAT,
    counterexample_payload,
    final_fingerprint,
    fingerprint_digest,
    replay_counterexample,
)
from repro.check.scenarios import CheckScenario, get_scenario, scenarios

__all__ = [
    "DEFAULT_MODES",
    "COUNTEREXAMPLE_FORMAT",
    "CheckItem",
    "CheckScenario",
    "ExplorationReport",
    "LocksetAnalyzer",
    "ScheduleController",
    "counterexample_payload",
    "ddmin",
    "explore",
    "final_fingerprint",
    "fingerprint_digest",
    "get_scenario",
    "minimize_counterexample",
    "replay_counterexample",
    "run_check_cell",
    "run_lockset_fig5",
    "run_lockset_scenario",
    "run_schedule",
    "scenarios",
]
