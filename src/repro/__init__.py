"""repro — reproduction of *Preemption-Based Avoidance of Priority
Inversion for Java* (Welc, Hosking, Jagannathan; ICPP 2004).

The package provides:

* a deterministic virtual-time JVM substrate (:mod:`repro.vm`),
* the paper's revocable-synchronized-sections runtime and bytecode
  transformer (:mod:`repro.core`),
* the evaluation harness regenerating the paper's Figures 5–8
  (:mod:`repro.bench`),
* a deterministic observability plane — causal spans, an exact
  virtual-cycle profiler and Perfetto-openable trace export
  (:mod:`repro.obs`, CLI ``python -m repro.obs``).

Quickstart::

    from repro import JVM, VMOptions, Asm, ClassDef, FieldDef

    counter = ClassDef("Counter", fields=[
        FieldDef("value", "int", is_static=True),
        FieldDef("lock", "ref", is_static=True),
    ])
    run = Asm("run", argc=0)
    run.getstatic("Counter", "lock")
    with run.sync():
        loop = run.local()
        run.for_range(loop, lambda: run.const(1000), lambda: (
            run.getstatic("Counter", "value"),
            run.const(1), run.add(),
            run.putstatic("Counter", "value"),
        ))
    run.ret()
    counter.add_method(run.build())

    vm = JVM(VMOptions(mode="rollback"))
    vm.load(counter)
    vm.set_static("Counter", "lock", vm.new_object("Counter"))
    for i in range(4):
        vm.spawn("Counter", "run", priority=1 + i, name=f"t{i}")
    vm.run()
    assert vm.get_static("Counter", "value") == 4000
"""

from repro.errors import (
    DeadlockError,
    GuestRuntimeError,
    InvariantViolation,
    LinkError,
    ReproError,
    StarvationError,
    TransformError,
    UncaughtGuestException,
    VerifyError,
    VMStateError,
)
from repro.faults import FaultPlan
from repro.vm import (
    Asm,
    Inspector,
    ClassDef,
    CostModel,
    ExceptionTableEntry,
    FieldDef,
    Instruction,
    JVM,
    Label,
    MethodDef,
    Monitor,
    NULL,
    PriorityScheduler,
    RoundRobinScheduler,
    ThreadState,
    VMArray,
    VMObject,
    VMOptions,
    VMThread,
    VirtualClock,
    render_timeline,
)
from repro.lang import CompileError, LexError, ParseError, compile_source
from repro.core import (
    JmmTracker,
    RollbackSupport,
    Section,
    SupportMetrics,
    UndoLog,
    elide_barriers,
    make_support,
    set_ceiling,
    transform_class,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "DeadlockError",
    "GuestRuntimeError",
    "InvariantViolation",
    "LinkError",
    "ReproError",
    "StarvationError",
    "TransformError",
    "UncaughtGuestException",
    "VerifyError",
    "VMStateError",
    # faults
    "FaultPlan",
    # vm
    "Asm",
    "Inspector",
    "ClassDef",
    "CostModel",
    "ExceptionTableEntry",
    "FieldDef",
    "Instruction",
    "JVM",
    "Label",
    "MethodDef",
    "Monitor",
    "NULL",
    "PriorityScheduler",
    "RoundRobinScheduler",
    "ThreadState",
    "VMArray",
    "VMObject",
    "VMOptions",
    "VMThread",
    "VirtualClock",
    "render_timeline",
    # lang
    "CompileError",
    "LexError",
    "ParseError",
    "compile_source",
    # core
    "JmmTracker",
    "RollbackSupport",
    "Section",
    "SupportMetrics",
    "UndoLog",
    "elide_barriers",
    "make_support",
    "set_ceiling",
    "transform_class",
    "__version__",
]
