"""Unit tests for the guest value model."""

import pytest

from repro.vm.classfile import ClassDef
from repro.vm.heap import VMArray, VMObject
from repro.vm.values import NULL, default_value, is_reference, kind_of, truthy


class TestNull:
    def test_singleton(self):
        from repro.vm.values import _Null

        assert _Null() is NULL

    def test_falsy(self):
        assert not NULL
        assert not truthy(NULL)

    def test_repr(self):
        assert repr(NULL) == "null"

    def test_is_not_python_none(self):
        assert NULL is not None


class TestTruthy:
    @pytest.mark.parametrize("value,expected", [
        (0, False), (1, True), (-1, True),
        (0.0, False), (0.5, True),
        ("", False), ("x", True),
    ])
    def test_scalars(self, value, expected):
        assert truthy(value) is expected

    def test_references_are_truthy(self):
        obj = VMObject(1, ClassDef("C"))
        assert truthy(obj)


class TestDefaults:
    @pytest.mark.parametrize("kind,expected", [
        ("int", 0), ("float", 0.0), ("ref", NULL), ("str", ""),
    ])
    def test_defaults(self, kind, expected):
        assert default_value(kind) == expected or (
            expected is NULL and default_value(kind) is NULL
        )

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            default_value("long")


class TestClassification:
    def test_is_reference(self):
        assert is_reference(NULL)
        assert is_reference(VMObject(1, ClassDef("C")))
        assert is_reference(VMArray(2, 3))
        assert not is_reference(5)
        assert not is_reference("s")

    def test_kind_of(self):
        assert kind_of(1) == "int"
        assert kind_of(True) == "int"  # guest booleans are ints
        assert kind_of(1.5) == "float"
        assert kind_of(NULL) == "ref"
        assert kind_of(VMArray(1, 0)) == "ref"
        assert kind_of("s") == "str"

    def test_kind_of_rejects_host_objects(self):
        with pytest.raises(TypeError):
            kind_of(object())

    def test_kind_of_rejects_none(self):
        # Host None leaking into guest state must be caught loudly.
        with pytest.raises(TypeError):
            kind_of(None)
