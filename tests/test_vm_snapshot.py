"""Snapshot fidelity property tests.

The contract (``repro.vm.snapshot``): a restored VM driven forward with
the same scheduling choices is *byte-identical* to a from-zero replay of
the full schedule — final clock, clock-event count, rendered trace,
metrics dict, and final-state fingerprint all agree exactly.  Anything a
deepcopy might silently share (heap aliasing), drop (RNG state, undo
logs, degradation ladders), or double-count (profiler listener re-wiring)
breaks one of these five comparisons.

The matrix crosses scenarios (locked handoff with revocation, priority
barge, unprotected race) with both interpreters (``reference`` and
``fast`` — the fast interpreter's predecode caches are host-side closures
that must be dropped and rebuilt, not cloned) and seeded random-walk
drivers.  The revocation case additionally checkpoints at *every*
decision of a schedule known to revoke, so snapshots taken mid-rollback
(live undo log, in-flight section records) are covered, not just quiet
points.
"""

import pytest

from repro.check.dpor import SteppingRun
from repro.check.oracle import final_fingerprint, fingerprint_digest
from repro.check.scenarios import get_scenario
from repro.util.rng import DeterministicRng
from repro.vm.snapshot import snapshot_vm

#: the mini-handoff schedule (from the pinned DPOR tree) whose replay
#: preempts the low thread mid-section and triggers a revocation
REVOKING_SCHEDULE = (0, 1, 0, 1, 1, 0, 1, 0, 0)


def _observe(run: SteppingRun, outcome: str) -> dict:
    """Everything the fidelity contract compares, as plain data."""
    vm = run.vm
    return {
        "outcome": outcome,
        "clock": vm.clock.now,
        "clock_events": vm.clock.events,
        "trace": vm.tracer.render(),
        "metrics": vm.metrics(),
        "digest": fingerprint_digest(final_fingerprint(vm, outcome)),
        "schedule": tuple(run.schedule),
    }


def _stepping_run(name: str, interp: str) -> SteppingRun:
    # memory tracing forces the reference interpreter, so the fast-interp
    # leg of the matrix runs without per-location events
    return SteppingRun(
        get_scenario(name), "rollback",
        interp=interp, trace_memory=interp == "reference",
    )


def _random_walk_with_checkpoint(name, interp, seed, checkpoint_at):
    """Drive a seeded random walk, checkpointing at decision
    ``checkpoint_at``; finish the walk and return
    (checkpoint, full choice list, observations of the original run)."""
    rng = DeterministicRng(seed)
    run = _stepping_run(name, interp)
    checkpoint = None
    choices = []
    while True:
        kind, data = run.advance()
        if kind == "done":
            assert checkpoint is not None, (
                f"walk ended after {len(choices)} decisions, before the "
                f"requested checkpoint at {checkpoint_at}"
            )
            return checkpoint, choices, _observe(run, data)
        if len(choices) == checkpoint_at:
            checkpoint = run.checkpoint()
        tid = data[rng.randint(0, len(data) - 1)]
        run.choose(tid)
        choices.append(tid)


CASES = [
    (name, interp, seed)
    for name in ("mini-handoff", "mini-barge", "mini-racy")
    for interp in ("reference", "fast")
    for seed in (7, 1234)
]


@pytest.mark.parametrize(
    "name,interp,seed", CASES,
    ids=[f"{n}-{i}-s{s}" for n, i, s in CASES],
)
def test_restored_continuation_matches_from_zero_replay(
    name, interp, seed
):
    checkpoint, choices, original = _random_walk_with_checkpoint(
        name, interp, seed, checkpoint_at=3
    )

    # leg 1: resume from the checkpoint, replay the remaining choices
    resumed = SteppingRun.resume(checkpoint)
    assert resumed.schedule == choices[:3]
    outcome = resumed.drive(choices)
    assert _observe(resumed, outcome) == original

    # leg 2: from-zero replay of the full schedule on a fresh VM
    replay = _stepping_run(name, interp)
    outcome = replay.drive(choices)
    assert _observe(replay, outcome) == original


def test_one_checkpoint_seeds_independent_divergent_continuations():
    """Restores are isolated clones: two continuations from one
    checkpoint can diverge without contaminating each other or the
    master, and a third restore still reproduces the first's result."""
    checkpoint, choices, _ = _random_walk_with_checkpoint(
        "mini-racy", "reference", 99, checkpoint_at=2
    )
    a = SteppingRun.resume(checkpoint)
    b = SteppingRun.resume(checkpoint)
    kind_a, tids_a = a.advance()
    kind_b, tids_b = b.advance()
    assert (kind_a, tids_a) == (kind_b, tids_b) == ("decision", tids_a)
    # drive them apart: a takes the first candidate everywhere, b the last
    while a.advance()[0] == "decision":
        a.choose(a.pending[0])
    while b.advance()[0] == "decision":
        b.choose(b.pending[-1])
    out_a = _observe(a, a.outcome)
    out_b = _observe(b, b.outcome)
    assert out_a["schedule"] != out_b["schedule"]

    # a third restore retracing a's choices reproduces a byte-for-byte
    c = SteppingRun.resume(checkpoint)
    outcome = c.drive(out_a["schedule"])
    assert _observe(c, outcome) == out_a


@pytest.mark.parametrize("interp", ["reference", "fast"])
def test_checkpoint_at_every_decision_of_a_revoking_schedule(interp):
    """Walk the revoking schedule, checkpointing at each decision —
    including the ones where a rollback is in flight — and require every
    resumed continuation to land on the from-zero observation."""
    baseline = _stepping_run("mini-handoff", interp)
    outcome = baseline.drive(REVOKING_SCHEDULE)
    expected = _observe(baseline, outcome)
    if interp == "reference":
        revocations = sum(t.revocations for t in baseline.vm.threads)
        assert revocations > 0, "schedule no longer revokes; re-pin it"

    for stop in range(len(REVOKING_SCHEDULE)):
        run = _stepping_run("mini-handoff", interp)
        for tid in REVOKING_SCHEDULE[:stop]:
            kind, data = run.advance()
            assert kind == "decision"
            run.choose(tid if tid in data else run.default_choice(data))
        kind, _ = run.advance()
        if kind == "done":
            break
        resumed = SteppingRun.resume(run.checkpoint())
        outcome = resumed.drive(REVOKING_SCHEDULE)
        assert _observe(resumed, outcome) == expected, (
            f"divergence resuming from decision {stop}"
        )


def test_snapshot_leaves_the_original_run_untouched():
    """snapshot_vm detaches observers during the deepcopy and must put
    every one of them back: the donor run continues exactly as if never
    snapshotted."""
    undisturbed = _stepping_run("mini-handoff", "reference")
    outcome = undisturbed.drive(REVOKING_SCHEDULE)
    expected = _observe(undisturbed, outcome)

    donor = _stepping_run("mini-handoff", "reference")
    for tid in REVOKING_SCHEDULE[:4]:
        kind, data = donor.advance()
        assert kind == "decision"
        donor.checkpoint()                 # snapshot, discard, keep going
        donor.choose(tid if tid in data else donor.default_choice(data))
    outcome = donor.drive(REVOKING_SCHEDULE)
    assert _observe(donor, outcome) == expected


def test_snapshot_requires_a_quiescent_vm():
    run = _stepping_run("mini-handoff", "reference")
    kind, data = run.advance()
    assert kind == "decision"
    vm = run.vm
    vm.current_thread = vm.threads[0]      # simulate a slice in flight
    with pytest.raises(ValueError, match="quiescent"):
        snapshot_vm(vm)
    vm.current_thread = None
    snapshot_vm(vm)                        # quiescent again: fine


def test_checkpoint_requires_a_pending_decision():
    run = _stepping_run("mini-handoff", "reference")
    with pytest.raises(RuntimeError, match="pending decision"):
        run.checkpoint()
