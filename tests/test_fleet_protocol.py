"""Wire-protocol unit tests: framing, EOF, bounds, function references."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.bench.parallel import execute_spec, payload_digest
from repro.fleet.protocol import (
    FrameSocket,
    ProtocolError,
    fn_reference,
    resolve_fn,
)


def _pair() -> tuple[FrameSocket, FrameSocket]:
    a, b = socket.socketpair()
    return FrameSocket(a), FrameSocket(b)


class TestFraming:
    def test_header_roundtrip(self):
        left, right = _pair()
        left.send({"type": "hello", "worker": "w1", "pid": 7})
        msg, payload = right.recv()
        assert msg == {"type": "hello", "worker": "w1", "pid": 7}
        assert payload == b""

    def test_payload_roundtrip(self):
        left, right = _pair()
        body = bytes(range(256)) * 17
        left.send({"type": "result", "task": 3,
                   "digest": payload_digest(body)}, body)
        msg, payload = right.recv()
        assert payload == body
        assert msg["plen"] == len(body)
        assert payload_digest(payload) == msg["digest"]

    def test_large_payload(self):
        left, right = _pair()
        body = b"\xab" * (1 << 20)
        done = {}

        def sender():
            done["sent"] = left.send({"type": "task", "task": 0}, body)

        t = threading.Thread(target=sender)
        t.start()
        msg, payload = right.recv()
        t.join(10)
        assert payload == body
        assert done["sent"] == right.bytes_received

    def test_messages_keep_order(self):
        left, right = _pair()
        for i in range(20):
            left.send({"type": "ready", "seq": i})
        for i in range(20):
            msg, _ = right.recv()
            assert msg["seq"] == i

    def test_clean_eof_is_none(self):
        left, right = _pair()
        left.close()
        assert right.recv() == (None, b"")

    def test_mid_frame_eof_raises(self):
        left, right = _pair()
        left.sock.sendall(b"\x00\x00\x00\x10partial")
        left.close()
        with pytest.raises(ConnectionError):
            right.recv()

    def test_garbage_header_raises(self):
        left, right = _pair()
        left.sock.sendall(b"\x00\x00\x00\x04WXYZ")
        with pytest.raises(ProtocolError):
            right.recv()

    def test_header_without_type_raises(self):
        left, right = _pair()
        left.sock.sendall(b'\x00\x00\x00\x08{"x": 1}')
        with pytest.raises(ProtocolError):
            right.recv()

    def test_implausible_header_length_raises(self):
        left, right = _pair()
        left.sock.sendall(b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError):
            right.recv()

    def test_byte_counters_accumulate(self):
        left, right = _pair()
        sent = left.send({"type": "ready"})
        sent += left.send({"type": "heartbeat"})
        right.recv()
        right.recv()
        assert left.bytes_sent == sent
        assert right.bytes_received == sent


class TestFnReference:
    def test_roundtrip_module_function(self):
        ref = fn_reference(execute_spec)
        assert ref == "repro.bench.parallel:execute_spec"
        assert resolve_fn(ref) is execute_spec

    def test_builtin_roundtrip(self):
        assert resolve_fn(fn_reference(len)) is len

    def test_lambda_rejected(self):
        with pytest.raises(ValueError):
            fn_reference(lambda x: x)

    def test_local_function_rejected(self):
        def local(x):
            return x

        with pytest.raises(ValueError):
            fn_reference(local)

    def test_malformed_reference_raises(self):
        with pytest.raises(ProtocolError):
            resolve_fn("no-colon-here")

    def test_non_callable_reference_raises(self):
        with pytest.raises(ProtocolError):
            resolve_fn("repro.bench.parallel:DEFAULT_CACHE_DIR")
