"""Integration tests for the revocation protocol (paper §3.1).

These drive real multi-threaded guest programs on the modified VM and
assert the paper's core guarantees: revocation is transparent (no trace of
undone work), the undo log is processed before any lock release, default
handlers and finally blocks never run during a rollback, and nested /
cross-frame sections unwind correctly.
"""

import pytest

from repro import Asm, ClassDef, FieldDef

from conftest import build_class, make_vm


def inversion_class(section_iters=1_500, *, body=None, extra_fields=()):
    """One shared lock; ``run(iters, delay)`` sleeps ``delay`` cycles, then
    executes one synchronized section of read-modify-write work.

    Explicit delays (instead of the benchmark's random pauses) make the
    inversion deterministic: the low thread enters first, the high thread
    arrives mid-section.
    """
    cls_fields = ["lock:ref", "counter:int", *extra_fields]
    run = Asm("run", argc=2)
    run.load(1).sleep()
    run.getstatic("T", "lock")
    with run.sync():
        if body is None:
            i = run.local()
            run.for_range(i, lambda: run.load(0), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        else:
            body(run)
    run.ret()
    return build_class("T", cls_fields, [run]), section_iters


#: lands inside a ~1500-iteration section that starts near time 0
MID_SECTION = 4_000


def run_inversion(vm, cls, *, low=1, high=1, iters=1_500, high_iters=100):
    vm.load(cls)
    vm.set_static("T", "lock", vm.new_object("T"))
    for k in range(low):
        vm.spawn("T", "run", args=[iters, 1 + k], priority=1,
                 name=f"low-{k}")
    for k in range(high):
        # successive high threads arrive after the low thread has had time
        # to re-enter its (re-executed) section, so each can revoke anew
        vm.spawn("T", "run", args=[high_iters, MID_SECTION * (1 + 4 * k)],
                 priority=10, name=f"high-{k}")
    vm.run()
    return vm


class TestBasicRevocation:
    def test_rollback_happens_and_state_is_exact(self):
        cls, iters = inversion_class()
        vm = make_vm("rollback", seed=3)
        run_inversion(vm, cls, iters=iters)
        support = vm.metrics()["support"]
        assert support["revocations_completed"] >= 1
        # transparency: the counter is exactly the sum of both loops
        assert vm.get_static("T", "counter") == 1_500 + 100

    def test_unmodified_vm_never_rolls_back(self):
        cls, iters = inversion_class()
        vm = make_vm("unmodified", seed=3)
        run_inversion(vm, cls, iters=iters)
        assert vm.metrics()["support"] == {}
        assert vm.tracer.count("rollback_begin") == 0
        assert vm.get_static("T", "counter") == 1_600

    def test_high_priority_enters_after_revocation(self):
        """After the low thread rolls back, the monitor is handed to the
        queued high-priority thread."""
        cls, iters = inversion_class()
        vm = make_vm("rollback", seed=3)
        run_inversion(vm, cls, iters=iters)
        events = vm.tracer.events
        rollback_pcs = [i for i, e in enumerate(events)
                        if e.kind == "rollback_done"]
        assert rollback_pcs
        after = events[rollback_pcs[0]:]
        next_acquire = next(e for e in after if e.kind == "acquire")
        assert next_acquire.thread.startswith("high")

    def test_undo_processed_before_any_release(self):
        """§3.1.2: 'the procedure ... is invoked before a thread that has
        been interrupted releases any of its locks'."""
        cls, iters = inversion_class()
        vm = make_vm("rollback", seed=3)
        run_inversion(vm, cls, iters=iters)
        events = vm.tracer.events
        begin = next(i for i, e in enumerate(events)
                     if e.kind == "rollback_begin")
        release = next(i for i, e in enumerate(events)
                       if e.kind == "rollback_release")
        assert begin < release

    def test_thread_revocation_counters(self):
        cls, iters = inversion_class()
        vm = make_vm("rollback", seed=3)
        run_inversion(vm, cls, iters=iters)
        low = vm.thread_named("low-0")
        high = vm.thread_named("high-0")
        assert low.revocations >= 1
        assert high.revocations == 0  # the paper's benchmark invariant

    def test_high_priority_threads_also_log(self):
        """'updates of both low-priority and high-priority threads are
        logged for fairness' — barriers fire for everyone."""
        cls, iters = inversion_class()
        vm = make_vm("rollback", seed=3)
        run_inversion(vm, cls, iters=iters)
        support = vm.metrics()["support"]
        # more entries logged than the low thread alone could produce
        # (1500 per attempt + re-execution; high adds its own 100)
        assert support["undo_entries_logged"] > support[
            "undo_entries_restored"
        ]

    def test_stale_request_after_commit_is_ignored(self):
        """If the holder exits the section before its next yield point,
        the pending request must be dropped, not applied to the next
        section."""
        from repro.core.revocation import RollbackSupport

        cls, iters = inversion_class()
        vm = make_vm("rollback", seed=3)
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        t = vm.spawn("T", "run", args=[50, 1], priority=1, name="low-0")
        vm.run()
        support = vm.support
        assert isinstance(support, RollbackSupport)
        # post a bogus request for a long-gone section
        class Dead:  # noqa: N801 - minimal stand-in
            pass

        t.revocation_request = Dead()
        assert support.check_yield(t) is None


class TestStateRestoration:
    def test_array_contents_restored(self):
        """The revoked section's array writes disappear: a high-priority
        observer never sees a partially stamped array."""
        def body(a: Asm):
            # stamp all 4 slots with my tid, one per loop, with yields
            i = a.local()
            a.for_range(i, lambda: a.const(4), lambda: (
                a.getstatic("T", "data"), a.load(i), a.tid(), a.astore(),
                a.yield_(),
            ))
            # verify all 4 slots hold my tid; else set corrupt flag
            a.for_range(i, lambda: a.const(4), lambda:
                a.if_then(
                    lambda: (a.getstatic("T", "data"), a.load(i), a.aload(),
                             a.tid(), a.ne()),
                    lambda: a.const(1).putstatic("T", "corrupt"),
                ))

        def _section(a, inner):
            a.getstatic("T", "lock")
            ctx = a.sync()
            with ctx:
                inner(a)

        run = Asm("run", argc=1)  # arg: start delay
        run.load(0).sleep()
        s = run.local()
        run.for_range(s, lambda: run.const(6), lambda: _section(run, body))
        run.ret()

        cls = build_class(
            "T", ["lock:ref", "data:ref", "corrupt:int"], [run]
        )
        vm = make_vm("rollback", seed=11)
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.set_static("T", "data", vm.new_array(4, -1))
        vm.spawn("T", "run", args=[1], priority=1, name="low-0")
        vm.spawn("T", "run", args=[2], priority=1, name="low-1")
        vm.spawn("T", "run", args=[700], priority=10, name="high-0")
        vm.run()
        assert vm.get_static("T", "corrupt") == 0
        assert vm.metrics()["support"]["revocations_completed"] >= 1

    def test_locals_and_stack_restored_on_reexecution(self):
        """A local mutated inside the section must be restored to its
        pre-section value for the re-execution (SAVESTATE semantics)."""
        def body(a: Asm, x):
            # x was saved as 5 before the section; section doubles it.
            # On re-execution it must start from 5 again, so the final
            # value is always exactly 10 — never 20.
            a.load(x).const(2).mul().store(x)
            i = a.local()
            a.for_range(i, lambda: a.const(1_200), lambda: (
                a.getstatic("T", "counter"), a.const(1), a.add(),
                a.putstatic("T", "counter"),
            ))

        run = Asm("run", argc=0)
        x = run.local()
        run.const(5).store(x)
        run.const(1).sleep()
        run.getstatic("T", "lock")
        with run.sync():
            body(run, x)
        run.load(x).putstatic("T", "final_x")
        run.ret()

        high = Asm("grab", argc=0)
        high.const(MID_SECTION).sleep()
        high.getstatic("T", "lock")
        with high.sync():
            high.const(0).pop()
        high.ret()

        cls = build_class(
            "T", ["lock:ref", "counter:int", "final_x:int"], [run, high]
        )
        vm = make_vm("rollback", seed=5)
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", priority=1, name="low")
        vm.spawn("T", "grab", priority=10, name="high")
        vm.run()
        assert vm.metrics()["support"]["revocations_completed"] >= 1
        assert vm.get_static("T", "final_x") == 10

    def test_multiple_revocations_of_same_thread(self):
        """Several high-priority threads arriving one after another can
        revoke the same low section repeatedly; the end state stays
        exact."""
        cls, iters = inversion_class()
        vm = make_vm("rollback", seed=13,
                     livelock_threshold=100)  # disable grace for this test
        run_inversion(vm, cls, low=1, high=3, iters=3_000, high_iters=50)
        assert vm.get_static("T", "counter") == 3_000 + 3 * 50
        assert vm.metrics()["support"]["revocations_completed"] >= 2


class TestHandlerSkipping:
    def test_finally_does_not_run_during_rollback(self):
        """§3.1.2: the augmented dispatch ignores finally blocks and
        catch-all handlers while unwinding a rollback."""
        def body(a: Asm):
            a.try_(
                body=lambda: _work(a),
                finally_=lambda: (
                    a.getstatic("T", "finallies"), a.const(1), a.add(),
                    a.putstatic("T", "finallies"),
                ),
            )

        def _work(a: Asm):
            i = a.local()
            a.for_range(i, lambda: a.const(1_500), lambda: (
                a.getstatic("T", "counter"), a.const(1), a.add(),
                a.putstatic("T", "counter"),
            ))

        cls, _ = inversion_class(body=body, extra_fields=["finallies:int"])
        vm = make_vm("rollback", seed=3)
        run_inversion(vm, cls, iters=0, high_iters=0)
        assert vm.metrics()["support"]["revocations_completed"] >= 1
        # finally ran once per *successful* section execution (2 threads),
        # never for the rolled-back attempt
        assert vm.get_static("T", "finallies") == 2

    def test_catch_all_does_not_observe_rollback(self):
        def body(a: Asm):
            a.try_(
                body=lambda: _work(a),
                catches=[("Throwable", lambda: (
                    a.pop(), a.const(1).putstatic("T", "caught"),
                ))],
            )

        def _work(a: Asm):
            i = a.local()
            a.for_range(i, lambda: a.const(1_500), lambda: (
                a.getstatic("T", "counter"), a.const(1), a.add(),
                a.putstatic("T", "counter"),
            ))

        cls, _ = inversion_class(body=body, extra_fields=["caught:int"])
        vm = make_vm("rollback", seed=3)
        run_inversion(vm, cls, iters=0, high_iters=0)
        assert vm.metrics()["support"]["revocations_completed"] >= 1
        assert vm.get_static("T", "caught") == 0

    def test_normal_exceptions_still_work_on_modified_vm(self):
        """The augmented dispatch only special-cases the rollback signal;
        guest exceptions keep their standard semantics."""
        def body(a: Asm):
            a.try_(
                body=lambda: a.const(1).const(0).div().pop(),
                catches=[("ArithmeticException", lambda: (
                    a.pop(),
                    a.getstatic("T", "caught"), a.const(1), a.add(),
                    a.putstatic("T", "caught"),
                ))],
            )

        cls, _ = inversion_class(body=body, extra_fields=["caught:int"])
        vm = make_vm("rollback", seed=3)
        run_inversion(vm, cls, iters=0, high_iters=0)
        assert vm.get_static("T", "caught") == 2  # both threads


class TestNestedSections:
    def _nested_class(self):
        """low: sync(outer) { work; sync(inner) { work } work };
        high contends on OUTER."""
        run = Asm("run", argc=2)  # (iters, delay)
        run.load(1).sleep()
        run.getstatic("T", "outer_lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.load(0), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
            run.getstatic("T", "inner_lock")
            with run.sync():
                j = run.local()
                run.for_range(j, lambda: run.load(0), lambda: (
                    run.getstatic("T", "counter"), run.const(1), run.add(),
                    run.putstatic("T", "counter"),
                ))
        run.ret()
        return build_class(
            "T", ["outer_lock:ref", "inner_lock:ref", "counter:int"],
            [run],
        )

    def test_outer_revocation_unwinds_inner_too(self):
        cls = self._nested_class()
        vm = make_vm("rollback", seed=9)
        vm.load(cls)
        vm.set_static("T", "outer_lock", vm.new_object("T"))
        vm.set_static("T", "inner_lock", vm.new_object("T"))
        vm.spawn("T", "run", args=[1_200, 1], priority=1, name="low")
        vm.spawn("T", "run", args=[80, MID_SECTION], priority=10,
                 name="high")
        vm.run()
        assert vm.metrics()["support"]["revocations_completed"] >= 1
        assert vm.get_static("T", "counter") == 2 * 1_200 + 2 * 80
        # both monitors free at the end
        for field in ("outer_lock", "inner_lock"):
            mon = vm.get_static("T", field).monitor
            assert mon is None or mon.owner is None

    def test_recursive_same_monitor_revocation(self):
        """Nested sync blocks on the SAME monitor: the target is the
        outermost (non-recursive) section and recursion unwinds cleanly."""
        run = Asm("run", argc=2)  # (iters, delay)
        run.load(1).sleep()
        run.getstatic("T", "lock")
        with run.sync():
            run.getstatic("T", "lock")
            with run.sync():
                i = run.local()
                run.for_range(i, lambda: run.load(0), lambda: (
                    run.getstatic("T", "counter"), run.const(1), run.add(),
                    run.putstatic("T", "counter"),
                ))
        run.ret()
        cls = build_class("T", ["lock:ref", "counter:int"], [run])
        vm = make_vm("rollback", seed=9)
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", args=[1_500, 1], priority=1, name="low")
        vm.spawn("T", "run", args=[60, MID_SECTION], priority=10,
                 name="high")
        vm.run()
        assert vm.get_static("T", "counter") == 1_560
        assert vm.metrics()["support"]["revocations_completed"] >= 1


class TestCrossFrameRollback:
    def test_rollback_discards_callee_frames(self):
        """The revoked thread is deep inside a helper call when the
        rollback fires; the helper frames are discarded without running
        any of their handlers."""
        helper = Asm("helper", argc=0)
        i = helper.local()
        helper.try_(
            body=lambda: helper.for_range(
                i, lambda: helper.const(400), lambda: (
                    helper.getstatic("T", "counter"), helper.const(1),
                    helper.add(), helper.putstatic("T", "counter"),
                )),
            finally_=lambda: (
                helper.getstatic("T", "helper_fin"), helper.const(1),
                helper.add(), helper.putstatic("T", "helper_fin"),
            ),
        )
        helper.ret()

        run = Asm("run", argc=1)  # arg: delay
        run.load(0).sleep()
        run.getstatic("T", "lock")
        with run.sync():
            k = run.local()
            run.for_range(k, lambda: run.const(4), lambda:
                          run.invoke("T", "helper", 0))
        run.ret()

        grab = Asm("grab", argc=0)
        grab.const(MID_SECTION).sleep()
        grab.getstatic("T", "lock")
        with grab.sync():
            grab.const(0).pop()
        grab.ret()

        cls = build_class(
            "T", ["lock:ref", "counter:int", "helper_fin:int"],
            [helper, run, grab],
        )
        vm = make_vm("rollback", seed=21)
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", args=[1], priority=1, name="low")
        vm.spawn("T", "grab", priority=10, name="high")
        vm.run()
        assert vm.metrics()["support"]["revocations_completed"] >= 1
        # every *completed* helper call ran its finally exactly once; the
        # interrupted one (whose frame was discarded) did not.
        # after re-execution the helper runs 4 complete times + the
        # completed calls of the aborted attempt, all with counter undone
        # for the aborted ones
        assert vm.get_static("T", "counter") == 4 * 400
        fins = vm.get_static("T", "helper_fin")
        assert fins >= 4  # completed calls from the aborted attempt count
