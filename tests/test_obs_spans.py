"""Span construction: causality, outcomes, and determinism.

The span builder folds the raw trace into typed intervals; these tests
pin the structural invariants the exporters and the CLI rely on:
sections parent to their enclosing span, revocations parent to the
section they preempted (with a back-link), every span closes with an
outcome, and the whole construction is a pure function of the event
stream.
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench.workloads import (
    build_bounded_buffer,
    build_deadlock_pair,
    build_medium_inversion,
    build_philosophers,
)
from repro.core import sections
from repro.obs.spans import SpanBuilder, build_spans
from repro.vm.assembler import Asm
from repro.vm.vmcore import JVM, VMOptions


def _run(build, mode="rollback", **overrides):
    Asm._sync_counter = 0
    sections._section_ids = itertools.count(1)
    opts = dict(mode=mode, trace=True, seed=7, max_cycles=50_000_000)
    opts.update(overrides)
    vm = JVM(VMOptions(**opts))
    build().install(vm)
    try:
        vm.run()
    except Exception:
        pass
    return vm


def _spans(vm):
    return build_spans(vm.tracer.events, vm.clock.now)


def test_every_thread_gets_a_root_span():
    vm = _run(lambda: build_deadlock_pair(hold_cycles=800, work=20))
    spans = _spans(vm)
    roots = [s for s in spans if s.kind == "thread"]
    assert {s.thread for s in roots} == {t.name for t in vm.threads}
    for s in roots:
        assert s.parent is None
        assert s.end is not None and s.end >= s.start


def test_sections_parent_to_enclosing_span():
    vm = _run(lambda: build_philosophers(
        3, rounds=3, think_cycles=300, eat_iters=15
    ))
    spans = _spans(vm)
    by_sid = {s.sid: s for s in spans}
    section_spans = [s for s in spans if s.kind == "section"]
    assert section_spans
    for s in section_spans:
        parent = by_sid[s.parent]
        assert parent.kind in ("thread", "section")
        assert parent.thread == s.thread
        # containment: child interval inside parent interval
        assert parent.start <= s.start
        assert parent.end >= s.end


def test_section_outcomes_are_closed():
    vm = _run(lambda: build_philosophers(
        3, rounds=3, think_cycles=300, eat_iters=15
    ))
    for s in _spans(vm):
        if s.kind == "section":
            assert s.attrs["outcome"] in (
                "commit", "rollback", "abandoned", "leaked"
            )
            assert s.end is not None


def test_revocation_parents_to_preempted_section():
    vm = _run(lambda: build_philosophers(
        3, rounds=3, think_cycles=300, eat_iters=15
    ))
    spans = _spans(vm)
    by_sid = {s.sid: s for s in spans}
    revocations = [s for s in spans if s.kind == "revocation"]
    assert revocations, "workload must exercise revocation"
    for r in revocations:
        section = by_sid[r.parent]
        assert section.kind == "section"
        assert section.attrs["outcome"] == "rollback"
        # the causal back-link
        assert section.attrs["revoked_by"] == r.sid
        assert r.attrs["outcome"] == "rolled-back"
        assert r.attrs["origin"] in ("inversion", "deadlock", "periodic")


def test_blocked_span_outcomes():
    vm = _run(lambda: build_deadlock_pair(hold_cycles=800, work=20))
    outcomes = {
        s.attrs["outcome"] for s in _spans(vm) if s.kind == "blocked"
    }
    # the deadlock pair blocks, one thread is woken for revocation, the
    # other is granted the monitor when the rollback releases it
    assert "revocation-wake" in outcomes or "wakeup" in outcomes
    assert "granted" in outcomes or "acquired" in outcomes


def test_wait_spans_close_with_outcome():
    vm = _run(lambda: build_bounded_buffer(
        capacity=2, items_per_producer=6, producers=2, consumers=2
    ))
    waits = [s for s in _spans(vm) if s.kind == "wait"]
    assert waits, "bounded buffer must exercise Object.wait"
    for s in waits:
        assert s.attrs["outcome"] in (
            "returned", "notified", "timeout", "exit"
        )


def test_deadlock_instant_on_unmodified():
    vm = _run(
        lambda: build_deadlock_pair(hold_cycles=800, work=20),
        mode="unmodified",
    )
    spans = _spans(vm)
    dead = [s for s in spans if s.kind == "deadlock"]
    assert len(dead) == 1
    assert dead[0].start == dead[0].end
    assert dead[0].attrs["cycle"]


def test_online_sink_equals_posthoc_construction():
    Asm._sync_counter = 0
    sections._section_ids = itertools.count(1)
    vm = JVM(VMOptions(mode="rollback", trace=True, seed=7,
                       max_cycles=50_000_000))
    builder = SpanBuilder()
    vm.tracer.add_sink(builder)
    build_medium_inversion(
        medium_threads=2, low_section_iters=300,
        medium_work_iters=500, high_section_iters=60,
    ).install(vm)
    vm.run()
    online = [s.as_dict() for s in builder.finish(vm.clock.now)]
    posthoc = [
        s.as_dict() for s in build_spans(vm.tracer.events, vm.clock.now)
    ]
    assert online == posthoc


def test_spans_are_pure_function_of_events():
    vm = _run(lambda: build_philosophers(
        3, rounds=3, think_cycles=300, eat_iters=15
    ))
    a = [s.as_dict() for s in _spans(vm)]
    b = [s.as_dict() for s in _spans(vm)]
    assert a == b


def test_finish_marks_open_spans():
    builder = SpanBuilder()
    from repro.vm.tracing import TraceEvent

    builder(TraceEvent(time=0, kind="spawn", thread="t1",
                       details={"priority": 5}))
    spans = builder.finish(100)
    assert len(spans) == 1
    assert spans[0].end == 100
    assert spans[0].attrs["open"] is True
