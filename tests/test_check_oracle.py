"""Differential-oracle tests.

Unit tests pin the fingerprint/divergence machinery; the property sweep
(`TestPolicyEquivalenceProperty`) generates random small guest programs
from a seeded parameter space and requires every explored schedule —
well over 200 across the sweep — to be policy-equivalent, the paper's
serializability claim exercised wholesale.
"""

import pytest

from repro.bench.parallel import RunEngine
from repro.check.explorer import CheckItem, explore, run_check_cell
from repro.check.oracle import (
    COUNTEREXAMPLE_FORMAT,
    divergence_problems,
    final_fingerprint,
    fingerprint_digest,
    replay_counterexample,
)
from repro.check.scenarios import (
    CheckScenario,
    build_locked_counter,
    build_racy_counter,
)
from repro.util.rng import DeterministicRng, sweep_seed


class TestFingerprint:
    def test_digest_ignores_allocation_order(self):
        """Two different interleavings of handoff quiesce in the same
        guest-observable state, so their digests agree even though the
        heaps were populated in different orders."""
        quiet = run_check_cell(CheckItem("handoff"))
        preempted = run_check_cell(CheckItem("handoff", prefix=(0, 1)))
        assert quiet["digests"] == preempted["digests"]

    def test_digest_sensitive_to_statics(self):
        from repro.check.explorer import ScheduleController, run_schedule
        from repro.check.scenarios import get_scenario

        scenario = get_scenario("handoff")
        vm, outcome = run_schedule(
            scenario, "rollback", ScheduleController()
        )
        fp = final_fingerprint(vm, outcome)
        digest = fingerprint_digest(fp)
        vm.set_static("Handoff", "counter", 99)
        fp2 = final_fingerprint(vm, outcome)
        assert fingerprint_digest(fp2) != digest
        assert fp2["statics"]["Handoff.counter"] == 99

    def test_clean_run_has_no_violations(self):
        from repro.check.explorer import ScheduleController, run_schedule
        from repro.check.scenarios import get_scenario

        for mode in ("rollback", "inheritance", "unmodified"):
            vm, outcome = run_schedule(
                get_scenario("handoff"), mode, ScheduleController()
            )
            fp = final_fingerprint(vm, outcome)
            assert outcome == "completed"
            assert fp["monitor_violations"] == []
            assert fp["support_violations"] == []
            assert fp["uncaught"] == []


class TestDivergenceProblems:
    MODES = ("rollback", "inheritance", "unmodified")

    def test_all_agree_is_clean(self):
        problems = divergence_problems(
            self.MODES,
            {m: "completed" for m in self.MODES},
            {m: "aaaa" for m in self.MODES},
            [],
        )
        assert problems == []

    def test_digest_split_among_completed_is_reported(self):
        problems = divergence_problems(
            self.MODES,
            {m: "completed" for m in self.MODES},
            {"rollback": "aaaa", "inheritance": "bbbb",
             "unmodified": "bbbb"},
            [],
        )
        assert len(problems) == 1
        assert "final-state divergence" in problems[0]
        assert "rollback=aaaa" in problems[0]

    def test_blocking_policy_deadlock_is_legal(self):
        """A deadlock under a blocking policy while rollback completes is
        the paper's selling point, not a divergence."""
        problems = divergence_problems(
            self.MODES,
            {"rollback": "completed", "inheritance": "deadlock",
             "unmodified": "deadlock"},
            {"rollback": "aaaa", "inheritance": "dead",
             "unmodified": "dead"},
            [],
        )
        assert problems == []

    def test_reference_not_completing_is_reported(self):
        problems = divergence_problems(
            self.MODES,
            {"rollback": "deadlock", "inheritance": "completed",
             "unmodified": "completed"},
            {"rollback": "dead", "inheritance": "aaaa",
             "unmodified": "aaaa"},
            [],
        )
        assert any("did not complete" in p for p in problems)

    def test_expectation_problems_carry_through(self):
        problems = divergence_problems(
            self.MODES,
            {m: "completed" for m in self.MODES},
            {m: "aaaa" for m in self.MODES},
            ["expected Handoff.counter == 8, got 9"],
        )
        assert problems == ["expected Handoff.counter == 8, got 9"]


class TestReplayValidation:
    def test_rejects_foreign_payloads(self):
        with pytest.raises(ValueError, match="not a"):
            replay_counterexample({"format": "something-else"})

    def test_format_constant_is_versioned(self):
        assert COUNTEREXAMPLE_FORMAT.endswith("/1")


# ---------------------------------------------------------- property sweep
def _random_scenario(k: int) -> CheckScenario:
    """One random locked-counter program drawn from a seeded parameter
    space (thread count, priorities, section and iteration counts), named
    so the class name and expectations stay self-describing."""
    rng = DeterministicRng(sweep_seed("check-prop", "locked-counter", k))
    n_threads = rng.randint(2, 3)
    sections = rng.randint(1, 2)
    iters = rng.randint(1, 2)
    spawns = [
        (rng.randint(1, 10), f"t{j}") for j in range(n_threads)
    ]
    cls = f"Prop{k}"
    return CheckScenario(
        name=f"prop-{k}",
        description="randomized locked counter (property sweep)",
        build=lambda: build_locked_counter(
            cls, spawns, sections=sections, iters=iters
        ),
        expected_statics={(cls, "counter"): n_threads * sections * iters},
    )


class TestPolicyEquivalenceProperty:
    N_PROGRAMS = 8

    def _install(self, monkeypatch, extra):
        """Extend the scenario registry for this test (the explorer looks
        scenarios up by name inside each cell)."""
        import importlib

        scenarios_mod = importlib.import_module("repro.check.scenarios")
        base = scenarios_mod._scenario_list

        def patched():
            return base() + list(extra)

        monkeypatch.setattr(scenarios_mod, "_scenario_list", patched)

    def test_random_programs_policy_equivalent(self, monkeypatch):
        """Every explored schedule of every random program must agree
        across all three policies AND hit the program's arithmetic
        expectation; the sweep must cover well over 200 schedules."""
        programs = [
            _random_scenario(k) for k in range(self.N_PROGRAMS)
        ]
        self._install(monkeypatch, programs)
        engine = RunEngine(jobs=1)
        total_schedules = 0
        distinct = set()
        for scenario in programs:
            report = explore(scenario.name, 1, engine=engine)
            assert report.ok, (
                f"{scenario.name}: {report.divergences[0]['problems']}"
            )
            # serializability: one final state no matter the interleaving
            assert report.distinct_states == 1, scenario.name
            total_schedules += report.schedules
            distinct.add((scenario.name, report.schedules))
        assert total_schedules >= 200, total_schedules

    def test_racy_program_still_policy_equivalent_per_schedule(self):
        """Even a racy program (final state depends on the schedule) must
        agree across policies for any FIXED schedule — policies don't
        invent interleavings."""
        report = explore("racy-yield", 1)
        assert report.ok
        assert report.distinct_states > 1   # lost updates really happen

    def test_generator_is_deterministic(self):
        a = _random_scenario(3)
        b = _random_scenario(3)
        assert a.expected_statics == b.expected_statics
        assert a.build().spawns == b.build().spawns


class TestScenarioBuilders:
    def test_locked_counter_total_is_schedule_independent(self):
        workload = build_locked_counter(
            "LC", [(1, "a"), (9, "b")], sections=2, iters=3
        )
        assert [s[3] for s in workload.spawns] == ["a", "b"]
        assert workload.classdef.name == "LC"

    def test_racy_counter_shape(self):
        workload = build_racy_counter(iters=4)
        assert len(workload.spawns) == 2
        assert workload.spawns[0][1] == [4]
