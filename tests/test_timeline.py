"""Tests for the trace-timeline renderer."""

from repro import Asm
from repro.vm.timeline import render_timeline

from conftest import build_class, make_vm


def inversion_vm():
    run = Asm("run", argc=2)  # (iters, delay)
    run.load(1).sleep()
    run.getstatic("T", "lock")
    with run.sync():
        i = run.local()
        run.for_range(i, lambda: run.load(0), lambda: (
            run.getstatic("T", "counter"), run.const(1), run.add(),
            run.putstatic("T", "counter"),
        ))
    run.ret()
    cls = build_class("T", ["lock:ref", "counter:int"], [run])
    vm = make_vm("rollback", seed=3)
    vm.load(cls)
    vm.set_static("T", "lock", vm.new_object("T"))
    vm.spawn("T", "run", args=[2_000, 1], priority=1, name="low")
    vm.spawn("T", "run", args=[60, 6_000], priority=10, name="high")
    vm.run()
    return vm


class TestRenderTimeline:
    def test_rows_per_thread(self):
        vm = inversion_vm()
        out = render_timeline(vm)
        assert "low" in out and "high" in out
        assert "legend:" in out

    def test_rollback_marker_present(self):
        vm = inversion_vm()
        assert vm.metrics()["support"]["revocations_completed"] >= 1
        out = render_timeline(vm)
        low_row = next(line for line in out.splitlines()
                       if line.strip().startswith("low"))
        assert "R" in low_row

    def test_section_and_block_glyphs(self):
        vm = inversion_vm()
        out = render_timeline(vm)
        low_row = next(line for line in out.splitlines()
                       if line.strip().startswith("low"))
        high_row = next(line for line in out.splitlines()
                        if line.strip().startswith("high"))
        assert "#" in low_row    # held the section
        assert "#" in high_row
        assert "-" in low_row or "-" in high_row  # someone blocked

    def test_window_restriction(self):
        vm = inversion_vm()
        out = render_timeline(vm, start=0, end=100, width=20)
        assert "0 .. 100" in out

    def test_untraced_vm_message(self):
        from repro.vm.vmcore import JVM, VMOptions

        vm = JVM(VMOptions())
        vm.run()
        assert "no trace events" in render_timeline(vm)

    def test_width_respected(self):
        vm = inversion_vm()
        out = render_timeline(vm, width=30)
        rows = [line for line in out.splitlines() if line.endswith("|")]
        for row in rows:
            bar = row.split("|")[1]
            assert len(bar) == 30
