"""Tests for the trace-timeline renderer."""

from repro import Asm
from repro.vm.timeline import render_timeline

from conftest import build_class, make_vm


def inversion_vm():
    run = Asm("run", argc=2)  # (iters, delay)
    run.load(1).sleep()
    run.getstatic("T", "lock")
    with run.sync():
        i = run.local()
        run.for_range(i, lambda: run.load(0), lambda: (
            run.getstatic("T", "counter"), run.const(1), run.add(),
            run.putstatic("T", "counter"),
        ))
    run.ret()
    cls = build_class("T", ["lock:ref", "counter:int"], [run])
    vm = make_vm("rollback", seed=3)
    vm.load(cls)
    vm.set_static("T", "lock", vm.new_object("T"))
    vm.spawn("T", "run", args=[2_000, 1], priority=1, name="low")
    vm.spawn("T", "run", args=[60, 6_000], priority=10, name="high")
    vm.run()
    return vm


class TestRenderTimeline:
    def test_rows_per_thread(self):
        vm = inversion_vm()
        out = render_timeline(vm)
        assert "low" in out and "high" in out
        assert "legend:" in out

    def test_rollback_marker_present(self):
        vm = inversion_vm()
        assert vm.metrics()["support"]["revocations_completed"] >= 1
        out = render_timeline(vm)
        low_row = next(line for line in out.splitlines()
                       if line.strip().startswith("low"))
        assert "R" in low_row

    def test_section_and_block_glyphs(self):
        vm = inversion_vm()
        out = render_timeline(vm)
        low_row = next(line for line in out.splitlines()
                       if line.strip().startswith("low"))
        high_row = next(line for line in out.splitlines()
                        if line.strip().startswith("high"))
        assert "#" in low_row    # held the section
        assert "#" in high_row
        assert "-" in low_row or "-" in high_row  # someone blocked

    def test_window_restriction(self):
        vm = inversion_vm()
        out = render_timeline(vm, start=0, end=100, width=20)
        assert "0 .. 100" in out

    def test_untraced_vm_message(self):
        from repro.vm.vmcore import JVM, VMOptions

        vm = JVM(VMOptions())
        vm.run()
        assert "no trace events" in render_timeline(vm)

    def test_width_respected(self):
        vm = inversion_vm()
        out = render_timeline(vm, width=30)
        rows = [line for line in out.splitlines() if line.endswith("|")]
        for row in rows:
            bar = row.split("|")[1]
            assert len(bar) == 30


def _thread_rows(out):
    return [line for line in out.splitlines() if line.endswith("|")]


class TestBudgetedDownsampling:
    """max_width is a budget for the whole rendered row — name gutter,
    rails and cells.  Rows must never exceed it (down to the documented
    MIN_COLUMNS floor), at exactly-budget and budget±1 alike, and
    downsampling must keep the first and last trace events visible."""

    def test_budget_exact_and_off_by_one(self):
        vm = inversion_vm()
        name_width = max(len(t.name) for t in vm.threads)
        floor = name_width + 3 + 10  # gutter + rails + MIN_COLUMNS
        for budget in (floor - 1, floor, floor + 1, 40, 59, 60, 61, 83):
            out = render_timeline(vm, max_width=budget)
            for row in _thread_rows(out):
                assert len(row) <= max(budget, floor), (budget, row)

    def test_budget_sweep_property(self):
        vm = inversion_vm()
        name_width = max(len(t.name) for t in vm.threads)
        floor = name_width + 3 + 10
        for budget in range(floor, 120):
            out = render_timeline(vm, max_width=budget)
            rows = _thread_rows(out)
            assert rows, budget
            for row in rows:
                assert len(row) <= budget, (budget, row)

    def test_first_and_last_events_preserved(self):
        vm = inversion_vm()
        events = vm.tracer.events
        t0 = events[0].time
        t1 = max(vm.clock.now, events[-1].time)
        span = t1 - t0
        for budget in (25, 40, 80):
            out = render_timeline(vm, max_width=budget)
            rows = _thread_rows(out)
            width = len(rows[0].split("|")[1])
            first_col = min(
                max(0, min(width - 1, (e.time - t0) * width // span))
                for e in events if e.thread
            )
            last_col = max(
                max(0, min(width - 1, (e.time - t0) * width // span))
                for e in events if e.thread
            )
            cols = {
                c for row in rows
                for c, ch in enumerate(row.split("|")[1]) if ch != " "
            }
            assert first_col in cols, budget
            assert last_col in cols, budget

    def test_point_markers_land_on_integer_exact_cells(self):
        # Point markers (R/D/G/!) must sit in the cell given by the
        # integer floor mapping (time - t0) * width // span.  A float
        # implementation can land one cell off when time * width is not
        # exactly representable, shifting markers between hosts.
        vm = inversion_vm()
        events = vm.tracer.events
        t0 = events[0].time
        t1 = max(vm.clock.now, events[-1].time)
        span = t1 - t0
        rollbacks = [e for e in events if e.kind == "rollback_done"]
        assert rollbacks
        for budget in (25, 47, 60, 93):
            out = render_timeline(vm, max_width=budget)
            rows = _thread_rows(out)
            width = len(rows[0].split("|")[1])
            row = next(r for r in rows if r.strip().startswith("low"))
            bar = row.split("|")[1]
            for e in rollbacks:
                c = max(0, min(width - 1, (e.time - t0) * width // span))
                assert bar[c] == "R", (budget, c)

    def test_legacy_none_budget_keeps_80_cells(self):
        vm = inversion_vm()
        out = render_timeline(vm, max_width=None)
        for row in _thread_rows(out):
            assert len(row.split("|")[1]) == 80
