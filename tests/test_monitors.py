"""Unit tests for monitors: ownership, recursion, prioritized queues,
direct handoff, wait sets."""

import pytest

from repro.errors import GuestRuntimeError
from repro.vm.classfile import ClassDef
from repro.vm.classfile import MethodDef
from repro.vm.bytecode import Instruction, RETURN
from repro.vm.heap import VMObject
from repro.vm.monitors import Monitor, monitor_of
from repro.vm.threads import VMThread


def make_thread(tid, priority=5, name=None):
    m = MethodDef(name="run", code=[Instruction(RETURN, 0)])
    m.class_name = "T"
    return VMThread(tid, name or f"t{tid}", m, [], priority=priority)


@pytest.fixture
def obj():
    return VMObject(1, ClassDef("C"))


@pytest.fixture
def mon(obj):
    return Monitor(obj)


class TestInflation:
    def test_lazy_inflation(self, obj):
        assert obj.monitor is None
        m = monitor_of(obj)
        assert obj.monitor is m
        assert monitor_of(obj) is m

    def test_release_policy_is_per_call(self, mon):
        """Monitors carry no queue policy; the caller passes it at release
        (the VM forwards its options)."""
        holder, low, high = make_thread(0), make_thread(1, priority=1), \
            make_thread(2, priority=10)
        mon.try_acquire(holder)
        mon.enqueue(low)
        mon.enqueue(high)
        woken = mon.release(holder, prioritized=True, handoff=False)
        assert woken is high          # selected, not yet owner
        assert mon.owner is None      # monitor left free: barging possible
        assert mon.is_queued(high)


class TestAcquisition:
    def test_uncontended(self, mon):
        t = make_thread(1)
        assert mon.try_acquire(t)
        assert mon.owner is t and mon.count == 1
        assert mon in t.held_monitors

    def test_deposited_priority(self, mon):
        t = make_thread(1, priority=7)
        mon.try_acquire(t)
        assert mon.deposited_priority == 7

    def test_recursive(self, mon):
        t = make_thread(1)
        assert mon.try_acquire(t)
        assert mon.try_acquire(t)
        assert mon.count == 2
        assert t.held_monitors.count(mon) == 1

    def test_contended_fails(self, mon):
        a, b = make_thread(1), make_thread(2)
        assert mon.try_acquire(a)
        assert not mon.try_acquire(b)

    def test_double_enqueue_rejected(self, mon):
        a, b = make_thread(1), make_thread(2)
        mon.try_acquire(a)
        mon.enqueue(b)
        with pytest.raises(GuestRuntimeError):
            mon.enqueue(b)


class TestRelease:
    def test_release_to_free(self, mon):
        t = make_thread(1)
        mon.try_acquire(t)
        assert mon.release(t) is None
        assert mon.owner is None
        assert mon not in t.held_monitors
        assert mon.deposited_priority == -1

    def test_recursive_release_keeps_ownership(self, mon):
        t = make_thread(1)
        mon.try_acquire(t)
        mon.try_acquire(t)
        assert mon.release(t) is None
        assert mon.owner is t and mon.count == 1

    def test_release_by_non_owner_raises(self, mon):
        a, b = make_thread(1), make_thread(2)
        mon.try_acquire(a)
        with pytest.raises(GuestRuntimeError) as exc_info:
            mon.release(b)
        assert exc_info.value.guest_class == "IllegalMonitorStateException"

    def test_direct_handoff(self, mon):
        a, b = make_thread(1), make_thread(2)
        mon.try_acquire(a)
        mon.enqueue(b)
        handed = mon.release(a)
        assert handed is b
        assert mon.owner is b and mon.count == 1
        assert mon in b.held_monitors
        assert mon.handoffs == 1


class TestPrioritizedQueue:
    def test_highest_priority_wins(self, mon):
        """Paper §4: a low-priority waiter runs only if no high-priority
        thread is waiting."""
        holder = make_thread(0)
        low = make_thread(1, priority=1)
        high = make_thread(2, priority=10)
        mon.try_acquire(holder)
        mon.enqueue(low)   # low arrived FIRST
        mon.enqueue(high)
        assert mon.release(holder) is high

    def test_fifo_within_priority_level(self, mon):
        holder = make_thread(0)
        first = make_thread(1, priority=5)
        second = make_thread(2, priority=5)
        mon.try_acquire(holder)
        mon.enqueue(first)
        mon.enqueue(second)
        assert mon.release(holder) is first

    def test_unprioritized_is_plain_fifo(self, obj):
        mon = Monitor(obj)
        holder = make_thread(0)
        low = make_thread(1, priority=1)
        high = make_thread(2, priority=10)
        mon.try_acquire(holder)
        mon.enqueue(low)
        mon.enqueue(high)
        assert mon.release(holder, prioritized=False) is low

    def test_effective_priority_checked_at_release_time(self, mon):
        """Inheritance/ceiling boosts applied while queued must count."""
        holder = make_thread(0)
        a = make_thread(1, priority=2)
        b = make_thread(2, priority=3)
        mon.try_acquire(holder)
        mon.enqueue(a)
        mon.enqueue(b)
        a.inherited_priority = 9  # boosted while waiting
        assert mon.release(holder) is a

    def test_highest_queued_priority(self, mon):
        holder = make_thread(0)
        mon.try_acquire(holder)
        assert mon.highest_queued_priority() == -1
        mon.enqueue(make_thread(1, priority=4))
        mon.enqueue(make_thread(2, priority=8))
        assert mon.highest_queued_priority() == 8

    def test_remove_from_queue(self, mon):
        holder, w = make_thread(0), make_thread(1)
        mon.try_acquire(holder)
        mon.enqueue(w)
        mon.remove_from_queue(w)
        assert mon.release(holder) is None


class TestWaitSets:
    def test_wait_release_drops_all_levels(self, mon):
        t = make_thread(1)
        mon.try_acquire(t)
        mon.try_acquire(t)
        mon.try_acquire(t)
        saved, handed = mon.wait_release(t)
        assert saved == 3
        assert handed is None
        assert mon.owner is None

    def test_wait_release_hands_off(self, mon):
        t, w = make_thread(1), make_thread(2)
        mon.try_acquire(t)
        mon.enqueue(w)
        saved, handed = mon.wait_release(t)
        assert saved == 1 and handed is w

    def test_wait_release_requires_ownership(self, mon):
        with pytest.raises(GuestRuntimeError):
            mon.wait_release(make_thread(1))

    def test_notify_fifo(self, mon):
        a, b = make_thread(1), make_thread(2)
        mon.add_waiter(a, 1)
        mon.add_waiter(b, 2)
        thread, saved = mon.notify_one()
        assert thread is a and saved == 1

    def test_notify_empty(self, mon):
        assert mon.notify_one() is None

    def test_notify_all_drains(self, mon):
        mon.add_waiter(make_thread(1), 1)
        mon.add_waiter(make_thread(2), 1)
        assert len(mon.notify_all()) == 2
        assert mon.notify_all() == []

    def test_remove_waiter_returns_saved_count(self, mon):
        t = make_thread(1)
        mon.add_waiter(t, 3)
        assert mon.remove_waiter(t) == 3
        assert mon.remove_waiter(t) is None

    def test_handoff_restores_wait_count(self, mon):
        """A thread that waited with recursion 3 reacquires at count 3."""
        t, w = make_thread(1), make_thread(2)
        mon.try_acquire(w)
        mon.enqueue(t, count_on_acquire=3)
        assert mon.release(w) is t
        assert mon.count == 3
