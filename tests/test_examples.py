"""Every example script must run cleanly end to end (their own asserts
double as checks)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the repo promises at least three examples"
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"
