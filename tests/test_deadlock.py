"""Deadlock detection/resolution tests (paper §1)."""

import pytest

from repro import Asm, DeadlockError

from conftest import build_class, make_vm
from repro.bench.workloads import build_bank, build_deadlock_pair, \
    build_deadlock_ring
from repro.vm.scheduler import find_wait_cycle
from repro.vm.threads import ThreadState


class TestWaitCycleDetection:
    def test_no_cycle_in_running_threads(self):
        assert find_wait_cycle([]) is None

    def test_two_cycle_found(self):
        workload = build_deadlock_pair()
        vm = make_vm("unmodified")
        workload.install(vm)
        with pytest.raises(DeadlockError) as exc_info:
            vm.run()
        assert set(exc_info.value.cycle) == {"t1", "t2"}

    def test_ring_cycle_found(self):
        workload = build_deadlock_ring(5, hold_cycles=3_000)
        vm = make_vm("unmodified")
        workload.install(vm)
        # equal-ish priorities still deadlock on the baseline VM
        with pytest.raises(DeadlockError) as exc_info:
            vm.run()
        assert len(exc_info.value.cycle) >= 2


class TestResolutionByRevocation:
    def test_pair_resolved(self):
        workload = build_deadlock_pair(work=80)
        vm = make_vm("rollback")
        workload.install(vm)
        vm.run()
        assert vm.get_static("DeadlockPair", "counter") == 160
        s = vm.metrics()["support"]
        assert s["deadlocks_resolved"] >= 1
        assert s["revocations_completed"] >= 1

    def test_ring_resolved(self):
        workload = build_deadlock_ring(4, work=60)
        vm = make_vm("rollback")
        workload.install(vm)
        vm.run()
        assert vm.get_static("DeadlockRing", "counter") == 4 * 60
        assert vm.all_terminated()

    def test_resolution_disabled_raises(self):
        workload = build_deadlock_pair()
        vm = make_vm("rollback", resolve_deadlocks=False)
        workload.install(vm)
        with pytest.raises(DeadlockError):
            vm.run()

    def test_victim_is_lowest_priority(self):
        """Symmetric deadlock with unequal priorities: the low-priority
        member is revoked."""
        run = Asm("run", argc=2)  # (first, second)
        run.getstatic("T", "locks").load(0).aload()
        with run.sync():
            run.const(3_000).sleep()
            run.getstatic("T", "locks").load(1).aload()
            with run.sync():
                run.const(0).pop()
        run.ret()
        cls = build_class("T", ["locks:ref"], [run])
        vm = make_vm("rollback")
        vm.load(cls)
        locks = vm.new_array(2)
        locks.put(0, vm.new_object("T"))
        locks.put(1, vm.new_object("T"))
        vm.set_static("T", "locks", locks)
        vm.spawn("T", "run", args=[0, 1], priority=2, name="loser")
        vm.spawn("T", "run", args=[1, 0], priority=9, name="winner")
        vm.run()
        assert vm.thread_named("loser").revocations >= 1
        assert vm.thread_named("winner").revocations == 0

    def test_nonrevocable_victims_fail_resolution(self):
        """When every cycle member's section is pinned (native call), the
        deadlock is unresolvable and the VM reports it."""
        run = Asm("run", argc=2)
        run.getstatic("T", "locks").load(0).aload()
        with run.sync():
            run.const("pinned").native("println", 1)  # -> non-revocable
            run.const(3_000).sleep()
            run.getstatic("T", "locks").load(1).aload()
            with run.sync():
                run.const(0).pop()
        run.ret()
        cls = build_class("T", ["locks:ref"], [run])
        vm = make_vm("rollback")
        vm.load(cls)
        locks = vm.new_array(2)
        locks.put(0, vm.new_object("T"))
        locks.put(1, vm.new_object("T"))
        vm.set_static("T", "locks", locks)
        vm.spawn("T", "run", args=[0, 1], priority=5, name="a")
        vm.spawn("T", "run", args=[1, 0], priority=5, name="b")
        with pytest.raises(DeadlockError):
            vm.run()

    def test_repeated_deadlocks_rotate_victims(self):
        """The anti-livelock rotation prefers the least-recently revoked
        candidate among equals, so no single thread is always the loser."""
        workload = build_deadlock_ring(3, hold_cycles=2_000, work=40)
        vm = make_vm("rollback")
        # make all priorities equal so selection falls to the rotation key
        workload_spawns = [
            (m, a, 5, n) for (m, a, _p, n) in workload.spawns
        ]
        vm.load(workload.classdef)
        workload.setup(vm)
        for method, args, priority, name in workload_spawns:
            vm.spawn("DeadlockRing", method, args=args,
                     priority=priority, name=name)
        vm.run()
        assert vm.all_terminated()


class TestBankWorkload:
    def test_balance_conserved_under_revocations(self):
        """Random unordered two-lock transfers: whatever deadlocks and
        revocations happen, the total balance is conserved."""
        workload = build_bank(accounts=6, transfers=30)
        vm = make_vm("rollback", seed=77)
        workload.install(vm)
        vm.run()
        balances = vm.get_static("Bank", "balances").snapshot()
        assert sum(balances) == 6 * 100
        assert vm.all_terminated()

    def test_bank_on_unmodified_vm_may_deadlock(self):
        """Document the baseline behaviour: with these seeds the unordered
        acquisition does deadlock (if it ever stops doing so, the workload
        lost its teeth — tighten it)."""
        deadlocked = 0
        for seed in range(6):
            workload = build_bank(accounts=4, transfers=40)
            vm = make_vm("unmodified", seed=seed)
            workload.install(vm)
            try:
                vm.run()
            except DeadlockError:
                deadlocked += 1
        assert deadlocked >= 1

    def test_bank_rollback_mode_always_completes(self):
        for seed in range(6):
            workload = build_bank(accounts=4, transfers=40)
            vm = make_vm("rollback", seed=seed)
            workload.install(vm)
            vm.run()
            balances = vm.get_static("Bank", "balances").snapshot()
            assert sum(balances) == 400, f"seed {seed} lost money"


class TestThreadStatesAfterResolution:
    def test_no_thread_left_blocked(self):
        workload = build_deadlock_pair()
        vm = make_vm("rollback")
        workload.install(vm)
        vm.run()
        for t in vm.threads:
            assert t.state is ThreadState.TERMINATED
        # and no monitor is still held
        locks = vm.get_static("DeadlockPair", "locks")
        for k in range(2):
            mon = locks.get(k).monitor
            assert mon is None or mon.owner is None
