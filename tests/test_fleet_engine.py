"""Fleet engine integration tests.

The contract under test: a fleet is just another execution strategy for
the ``RunEngine.map`` seam — reports must be byte-identical to serial
(cold and warm cache), the shared artifact store must verify digests
both ways, and a worker killed mid-campaign must cost wall-clock only,
never a cell.

Thread-backed workers (``serve`` in a daemon thread) cover the protocol
and stats behavior cheaply; subprocess workers cover the real
``FleetEngine.local`` path including worker death by SIGKILL.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time

import pytest

import fleet_tasks
from repro.bench.figures import FigurePanel, run_panel
from repro.bench.parallel import (
    ResultCache,
    RunEngine,
    execute_spec,
    payload_digest,
    spec_key,
)
from repro.bench.report import panel_json, render_panel
from repro.fleet.coordinator import Coordinator, FleetError
from repro.fleet.engine import FleetEngine, _worker_pythonpath
from repro.fleet.protocol import connect
from repro.fleet.worker import serve

PANEL_KW = dict(repetitions=2, write_ratios=(0, 100))

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))


def thread_fleet(
    n: int = 2, *, cache=None, worker_caches=None, **coord_kw
) -> FleetEngine:
    """Coordinator + ``n`` in-process worker threads as a FleetEngine."""
    coordinator = Coordinator(cache=cache, **coord_kw)
    host, port = coordinator.address
    for i in range(n):
        kwargs = {"name": f"t{i + 1}"}
        if worker_caches is not None:
            kwargs["cache"] = worker_caches[i]
        threading.Thread(
            target=serve, args=(host, port), kwargs=kwargs, daemon=True
        ).start()
    coordinator.wait_for_workers(n, timeout=10)
    return FleetEngine(coordinator, jobs=n)


def tiny_panel(engine, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.2")
    return run_panel(FigurePanel(5, "a"), engine=engine, **PANEL_KW)


# ----------------------------------------------------------- thread fleet
class TestThreadFleet:
    def test_map_returns_input_order(self):
        engine = thread_fleet(2)
        try:
            assert engine.map(fleet_tasks.double, list(range(24))) == [
                i * 2 for i in range(24)
            ]
        finally:
            engine.close()

    def test_per_worker_stats_sum_to_aggregate(self):
        engine = thread_fleet(3)
        try:
            engine.map(fleet_tasks.double, list(range(30)))
            stats = engine.last_stats
            assert stats.executed == 30
            assert stats.executed == sum(
                rec["tasks"] for rec in stats.workers.values()
            )
            assert stats.cache_hits == sum(
                rec["cache_hits"] for rec in stats.workers.values()
            )
            # three workers pulling from one queue: all of them worked
            assert len(stats.workers) == 3
            assert all(
                rec["bytes_sent"] and rec["bytes_received"]
                for rec in stats.workers.values()
            )
        finally:
            engine.close()

    def test_bench_panel_byte_identical_and_store_shared(
        self, tmp_path, monkeypatch
    ):
        serial = tiny_panel(RunEngine(jobs=1), monkeypatch)
        cache = ResultCache(tmp_path / "store")
        engine = thread_fleet(2, cache=cache)
        try:
            cold = tiny_panel(engine, monkeypatch)
            assert render_panel(serial) == render_panel(cold)
            assert panel_json(serial) == panel_json(cold)
            assert engine.last_stats.cache_hits == 0
            # warm: served by the coordinator from the shared store
            warm = tiny_panel(engine, monkeypatch)
            assert panel_json(serial) == panel_json(warm)
            assert engine.last_stats.executed == 0
            assert engine.last_stats.workers["coordinator"][
                "cache_hits"
            ] == engine.last_stats.cache_hits > 0
        finally:
            engine.close()
        # the store the workers pushed into serves a *local* engine too
        local = RunEngine(jobs=1, cache=ResultCache(tmp_path / "store"))
        replay = tiny_panel(local, monkeypatch)
        assert panel_json(serial) == panel_json(replay)
        assert local.stats.executed == 0

    def test_check_explore_equal_to_serial(self):
        from repro.check.explorer import explore

        serial = explore("mini-handoff", 1, engine=RunEngine(jobs=1))
        engine = thread_fleet(2)
        try:
            fleet = explore("mini-handoff", 1, engine=engine)
        finally:
            engine.close()
        assert fleet == serial

    def test_server_cells_equal_to_serial(self):
        from repro.server.plane import (
            ServerSpec,
            run_server_cell,
            server_cell_key,
        )

        specs = [
            ServerSpec(preset="chaos-smoke", seed_index=i) for i in (1, 2)
        ]
        serial = RunEngine(jobs=1).map(
            run_server_cell, specs, key_fn=None
        )
        engine = thread_fleet(2)
        try:
            fleet = engine.map(run_server_cell, specs,
                               key_fn=server_cell_key)
        finally:
            engine.close()
        assert json.dumps(fleet, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )

    def test_worker_local_cache_serves_hits(self, tmp_path):
        worker_cache = ResultCache(tmp_path / "wcache")
        engine = thread_fleet(1, worker_caches=[worker_cache])
        try:
            items = list(range(8))
            first = engine.map(
                fleet_tasks.double, items, key_fn=fleet_tasks.task_key
            )
            assert engine.last_stats.executed == 8
            # coordinator has no cache, so the repeat round-trips to the
            # worker — which serves every task from its local store
            second = engine.map(
                fleet_tasks.double, items, key_fn=fleet_tasks.task_key
            )
            assert second == first == [i * 2 for i in items]
            stats = engine.last_stats
            assert stats.executed == 0
            assert stats.cache_hits == 8
            assert stats.workers["t1"]["cache_hits"] == 8
        finally:
            engine.close()

    def test_task_error_fails_after_bounded_retries(self):
        engine = thread_fleet(
            2, max_attempts=2, retry_backoff=0.01
        )
        try:
            with pytest.raises(FleetError, match="negative"):
                engine.map(fleet_tasks.fail_on_negative, [1, -1, 3])
        finally:
            engine.close()

    def test_corrupt_result_payload_is_requeued(self):
        """A worker that lies about its payload digest does not poison
        the campaign: the result is discarded, counted, and the task
        re-dispatched until an honest answer arrives."""
        coordinator = Coordinator(retry_backoff=0.01)
        host, port = coordinator.address
        frame = connect(host, port)
        frame.send({"type": "hello", "worker": "evil", "pid": 0})

        outcome = {}

        def campaign():
            outcome["results"], outcome["stats"] = coordinator.map(
                fleet_tasks.double, [21], timeout=30
            )

        runner = threading.Thread(target=campaign, daemon=True)
        runner.start()
        try:
            frame.send({"type": "ready"})
            task, _payload = frame.recv()
            assert task["type"] == "task"
            bogus = pickle.dumps(999)
            frame.send(
                {
                    "type": "result",
                    "task": task["task"],
                    "key": task.get("key"),
                    "digest": "0" * 64,  # does not match the payload
                    "cached": False,
                    "wall": 0.0,
                },
                bogus,
            )
            frame.send({"type": "ready"})
            retry, payload = frame.recv()
            assert retry["type"] == "task"
            assert retry["task"] == task["task"]
            honest = pickle.dumps(
                fleet_tasks.double(pickle.loads(payload))
            )
            frame.send(
                {
                    "type": "result",
                    "task": retry["task"],
                    "key": retry.get("key"),
                    "digest": payload_digest(honest),
                    "cached": False,
                    "wall": 0.0,
                },
                honest,
            )
            runner.join(15)
            assert not runner.is_alive()
            assert outcome["results"] == [42]
            assert outcome["stats"].digest_failures == 1
        finally:
            frame.close()
            coordinator.shutdown()


# ------------------------------------------------------- subprocess fleet
def _subprocess_env() -> dict[str, str]:
    """Worker PYTHONPATH that can import both repro and fleet_tasks."""
    return {
        "PYTHONPATH": _worker_pythonpath() + os.pathsep + TESTS_DIR,
    }


class TestSubprocessFleet:
    def test_local_fleet_matches_serial_panel(self, tmp_path, monkeypatch):
        serial = tiny_panel(RunEngine(jobs=1), monkeypatch)
        engine = FleetEngine.local(
            2, cache=ResultCache(tmp_path / "store")
        )
        try:
            cold = tiny_panel(engine, monkeypatch)
            warm = tiny_panel(engine, monkeypatch)
        finally:
            engine.close()
        assert render_panel(serial) == render_panel(cold)
        assert panel_json(serial) == panel_json(cold)
        assert panel_json(serial) == panel_json(warm)

    def test_worker_killed_mid_campaign_loses_nothing(self):
        """SIGKILL a worker while it holds leases: the coordinator
        reassigns them and the campaign result is identical to serial —
        no lost cells, no duplicates."""
        engine = FleetEngine.local(
            2, worker_env=_subprocess_env(), heartbeat_timeout=6.0
        )
        items = [(i, 0.6) for i in range(6)]
        box: dict = {}

        def campaign():
            box["results"] = engine.map(fleet_tasks.slow_double, items)

        runner = threading.Thread(target=campaign, daemon=True)
        try:
            runner.start()
            # wait until worker w1 actually leases a task, then kill it
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if "w1" in engine.coordinator.leases().values():
                    break
                time.sleep(0.02)
            else:
                pytest.fail("w1 never leased a task")
            engine.procs[0].kill()
            runner.join(60)
            assert not runner.is_alive()
            assert box["results"] == [i * 2 for i in range(6)]
            stats = engine.last_stats
            assert stats.reassigned >= 1
            assert stats.executed == len(items)
            # every surviving result was executed by the live worker or
            # re-executed after reassignment; the sums must still close
            assert stats.executed == sum(
                rec["tasks"] for rec in stats.workers.values()
            )
        finally:
            engine.close()
