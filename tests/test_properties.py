"""Property-based tests (hypothesis) on the core invariants.

The heavyweight properties run whole guest programs per example, so their
example counts are deliberately small; the pure data-structure properties
run with the default budget.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Asm, ClassDef, FieldDef
from repro.core.jmm import JmmTracker
from repro.core.undolog import UndoLog
from repro.core.transform import insert_instructions
from repro.util.rng import DeterministicRng, derive_seed
from repro.vm import bytecode as bc
from repro.vm.bytecode import Instruction
from repro.vm.classfile import MethodDef
from repro.vm.heap import Heap
from repro.vm.interpreter import _idiv, _imod
from repro.vm.monitors import Monitor
from repro.vm.threads import VMThread

from conftest import build_class, make_vm


# --------------------------------------------------------------------- rng
class TestRngProperties:
    @given(st.integers(min_value=0), st.integers(-1000, 1000),
           st.integers(0, 1000))
    def test_randint_always_in_range(self, seed, lo, span):
        rng = DeterministicRng(seed)
        hi = lo + span
        for _ in range(5):
            assert lo <= rng.randint(lo, hi) <= hi

    @given(st.integers(min_value=0), st.lists(st.integers(), min_size=1))
    def test_shuffle_is_permutation(self, seed, xs):
        rng = DeterministicRng(seed)
        ys = list(xs)
        rng.shuffle(ys)
        assert sorted(ys) == sorted(xs)

    @given(st.integers(min_value=0),
           st.lists(st.text(max_size=5), max_size=4))
    def test_derive_seed_deterministic(self, base, path):
        assert derive_seed(base, *path) == derive_seed(base, *path)
        assert derive_seed(base, *path) != 0


# ------------------------------------------------------ java arithmetic
class TestJavaArithmeticProperties:
    @given(st.integers(-10**9, 10**9),
           st.integers(-10**9, 10**9).filter(lambda b: b != 0))
    def test_division_identity(self, a, b):
        """Java: a == (a / b) * b + (a % b), quotient truncates to zero."""
        q, r = _idiv(a, b), _imod(a, b)
        assert q * b + r == a
        assert abs(r) < abs(b)
        # truncation toward zero: quotient magnitude never rounds up
        assert abs(q) == abs(a) // abs(b)

    @given(st.integers(-10**6, 10**6),
           st.integers(1, 10**6))
    def test_remainder_sign_follows_dividend(self, a, b):
        r = _imod(a, b)
        assert r == 0 or (r > 0) == (a > 0)


# ----------------------------------------------------------------- undo log
def _location_ops():
    return st.lists(
        st.tuples(
            st.sampled_from(["field", "array", "static"]),
            st.integers(0, 3),      # which container / index
            st.integers(-50, 50),   # value to write
        ),
        min_size=1,
        max_size=40,
    )


class TestUndoLogProperties:
    @given(_location_ops(), st.data())
    def test_rollback_restores_exact_snapshot(self, ops, data):
        heap = Heap()
        cls = ClassDef("C", fields=[
            FieldDef(f"f{i}") for i in range(4)
        ] + [FieldDef(f"s{i}", is_static=True) for i in range(4)])
        heap.register_class(cls)
        objs = [heap.allocate(cls) for _ in range(4)]
        arr = heap.allocate_array(4)
        log = UndoLog(heap)

        def snapshot():
            return (
                [dict(o.fields) for o in objs],
                arr.snapshot(),
                dict(heap.statics),
            )

        mark_at = data.draw(st.integers(0, len(ops)))
        mark = None
        for k, (kind, idx, value) in enumerate(ops):
            if k == mark_at:
                mark = (log.mark(), snapshot())
            if kind == "field":
                log.append(objs[idx], f"f{idx}",
                           objs[idx].put(f"f{idx}", value))
            elif kind == "array":
                log.append(arr, idx, arr.put(idx, value))
            else:
                key = ("C", f"s{idx}")
                log.append(key, f"s{idx}", heap.put_static(key, value))
        if mark is None:
            mark = (log.mark(), snapshot())
        pos, snap = mark
        log.rollback_to(pos)
        assert snapshot() == snap

    @given(_location_ops())
    def test_full_rollback_restores_defaults(self, ops):
        heap = Heap()
        cls = ClassDef("C", fields=[FieldDef("f")])
        heap.register_class(cls)
        obj = heap.allocate(cls)
        arr = heap.allocate_array(4)
        log = UndoLog(heap)
        for kind, idx, value in ops:
            if kind == "array":
                log.append(arr, idx, arr.put(idx, value))
            else:
                log.append(obj, "f", obj.put("f", value))
        log.rollback_to(0)
        assert obj.get("f") == 0
        assert arr.snapshot() == [0, 0, 0, 0]


# ---------------------------------------------------------------- jmm model
class TestJmmTrackerModel:
    @given(st.lists(
        st.tuples(
            st.sampled_from(["write", "undo", "commit", "read"]),
            st.integers(0, 2),   # thread id
            st.integers(0, 3),   # location id
        ),
        max_size=60,
    ))
    def test_against_reference_model(self, ops):
        """The tracker must agree with a brute-force model: per location,
        per thread, a stack of section tuples."""
        tracker = JmmTracker()
        threads = {
            tid: VMThread(
                tid, f"t{tid}",
                MethodDef(name="r", code=[Instruction(bc.RETURN, 0)]),
                [],
            )
            for tid in range(3)
        }
        model: dict[tuple, dict[int, list]] = {}
        section_counter = [0]

        for op, tid, loc_id in ops:
            loc = ("f", loc_id, "x")
            thread = threads[tid]
            if op == "write":
                section_counter[0] += 1
                sections = (f"s{section_counter[0]}",)
                tracker.on_write(thread, loc, sections)
                model.setdefault(loc, {}).setdefault(tid, []).append(
                    sections
                )
            elif op == "undo":
                tracker.on_undo(thread, loc)
                stack = model.get(loc, {}).get(tid)
                if stack:
                    stack.pop()
                    if not stack:
                        del model[loc][tid]
                        if not model[loc]:
                            del model[loc]
            elif op == "commit":
                tracker.on_commit(thread, [loc])
                if loc in model and tid in model[loc]:
                    del model[loc][tid]
                    if not model[loc]:
                        del model[loc]
            else:  # read
                expected = ()
                for other_tid, stack in model.get(loc, {}).items():
                    if other_tid != tid and stack:
                        expected += stack[-1]
                assert tracker.on_read(thread, loc) == expected


# --------------------------------------------------------- monitor queues
class TestMonitorQueueProperties:
    @given(st.lists(st.integers(1, 10), min_size=1, max_size=8))
    def test_handoff_order_priority_then_fifo(self, priorities):
        """Whatever the queue contents, release hands to the highest
        priority, FIFO among equals."""
        from repro.vm.classfile import ClassDef as CD
        from repro.vm.heap import VMObject

        mon = Monitor(VMObject(1, CD("C")))
        holder = VMThread(
            99, "h", MethodDef(name="r", code=[Instruction(bc.RETURN, 0)]),
            [],
        )
        mon.try_acquire(holder)
        waiters = []
        for i, p in enumerate(priorities):
            t = VMThread(
                i, f"w{i}",
                MethodDef(name="r", code=[Instruction(bc.RETURN, 0)]),
                [], priority=p,
            )
            mon.enqueue(t)
            waiters.append(t)
        # reference order: stable sort by -priority
        expected = [
            t.tid for t in sorted(
                waiters, key=lambda t: -t.priority
            )
        ]
        actual = []
        current = holder
        while True:
            nxt = mon.release(current)
            if nxt is None:
                break
            actual.append(nxt.tid)
            current = nxt
        assert actual == expected


# ------------------------------------------------------ editor relocation
class TestRelocationProperties:
    @given(st.lists(st.integers(0, 30), min_size=0, max_size=6),
           st.integers(2, 12))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_nop_insertion_preserves_semantics(self, insert_points, n):
        """A loop summing 0..n-1 computes the same result after NOPs are
        inserted at arbitrary points (relocation correctness)."""
        def build():
            a = Asm("run", argc=0)
            i = a.local()
            a.for_range(i, lambda: a.const(n), lambda: (
                a.getstatic("T", "out"), a.load(i), a.add(),
                a.putstatic("T", "out"),
            ))
            a.ret()
            return build_class("T", ["out:int"], [a])

        def result(cls):
            vm = make_vm()
            vm.load(cls)
            vm.spawn("T", "run", name="t")
            vm.run()
            return vm.get_static("T", "out")

        expected = result(build())
        cls = build()
        method = cls.method("run")
        for point in insert_points:
            # never insert after the terminating RETURN: a trailing NOP is
            # (correctly) rejected by the verifier as falling off the end
            at = point % len(method.code)
            insert_instructions(method, at, [Instruction(bc.NOP)])
        method.verify()
        assert result(cls) == expected


# ----------------------------------------------- end-to-end transparency
@st.composite
def bench_params(draw):
    return dict(
        threads=draw(st.integers(2, 4)),
        iters=draw(st.integers(50, 400)),
        seed=draw(st.integers(0, 2**32)),
        priorities=draw(st.lists(st.integers(1, 10), min_size=4,
                                 max_size=4)),
    )


class TestRevocationTransparency:
    @given(bench_params())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_counter_exact_under_any_schedule(self, params):
        """THE transparency property: whatever revocations the schedule
        produces, a monitor-protected counter ends exactly at the sum of
        all increments, and the undo accounting balances."""
        run = Asm("run", argc=1)
        run.pause(800)
        run.getstatic("T", "lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.load(0), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        run.ret()
        cls = build_class("T", ["lock:ref", "counter:int"], [run])
        vm = make_vm("rollback", seed=params["seed"])
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        for k in range(params["threads"]):
            vm.spawn(
                "T", "run", args=[params["iters"]],
                priority=params["priorities"][k], name=f"t{k}",
            )
        vm.run()
        assert (
            vm.get_static("T", "counter")
            == params["threads"] * params["iters"]
        )
        s = vm.metrics()["support"]
        assert s["undo_entries_restored"] <= s["undo_entries_logged"]
        assert s["sections_committed"] >= params["threads"]

    @given(st.integers(0, 2**32))
    @settings(max_examples=10, deadline=None)
    def test_deterministic_replay(self, seed):
        from repro.bench.harness import run_microbench
        from repro.bench.microbench import MicrobenchConfig

        config = MicrobenchConfig(
            high_threads=1, low_threads=2, iters_high=40, iters_low=120,
            sections=2, write_pct=40, seed=seed,
        )
        a = run_microbench(config, "rollback")
        b = run_microbench(config, "rollback")
        assert a.total_cycles == b.total_cycles
        assert a.high_elapsed == b.high_elapsed
        assert a.rollbacks == b.rollbacks
        assert a.metrics["support"] == b.metrics["support"]
