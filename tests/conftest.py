"""Shared test helpers.

The dominant pattern: build a tiny guest class with static fields and one
or more methods, spawn threads, run the VM, and assert on statics, traces
and metrics.  ``make_vm``/``run_single`` wrap that wiring.
"""

from __future__ import annotations

from typing import Callable, Iterable

import pytest

from repro import Asm, ClassDef, FieldDef, JVM, VMOptions


def make_vm(mode: str = "unmodified", **options) -> JVM:
    options.setdefault("trace", True)
    options.setdefault("max_cycles", 50_000_000)
    return JVM(VMOptions(mode=mode, **options))


def static_fields(*specs: str) -> list[FieldDef]:
    """Parse ``"name:kind[:volatile]"`` field specs (static fields)."""
    fields = []
    for spec in specs:
        parts = spec.split(":")
        name = parts[0]
        kind = parts[1] if len(parts) > 1 else "int"
        volatile = len(parts) > 2 and parts[2] == "volatile"
        fields.append(
            FieldDef(name, kind, volatile=volatile, is_static=True)
        )
    return fields


def build_class(
    name: str,
    fields: Iterable[str] = (),
    methods: Iterable[Asm] = (),
) -> ClassDef:
    cls = ClassDef(name, fields=static_fields(*fields))
    for asm in methods:
        cls.add_method(asm.build())
    return cls


def run_single(
    emit: Callable[[Asm], None],
    *,
    mode: str = "unmodified",
    fields: Iterable[str] = (),
    args: list | tuple = (),
    argc: int = 0,
    priority: int = 5,
    **vm_options,
) -> JVM:
    """Build one method from ``emit``, run it in one thread, return the VM.

    ``emit`` receives the :class:`Asm` and must NOT emit the final
    ``ret()`` (added automatically).
    """
    asm = Asm("main", argc=argc)
    emit(asm)
    asm.ret()
    cls = build_class("T", fields, [asm])
    vm = make_vm(mode, **vm_options)
    vm.load(cls)
    vm.spawn("T", "main", args=list(args), priority=priority, name="main")
    vm.run()
    return vm


@pytest.fixture
def vm() -> JVM:
    return make_vm()


@pytest.fixture
def rollback_vm() -> JVM:
    return make_vm("rollback")
